package core

import (
	"fmt"
	"io"
	"sort"
	"time"

	"clio/internal/blockfmt"
	"clio/internal/entrymap"
)

// Entry is one log entry as returned by a cursor.
type Entry struct {
	// LogID is the log file the entry was written to (its most specific
	// sublog).
	LogID uint16
	// Timestamp is the entry's effective server timestamp: its own when the
	// full header form was used, otherwise inherited from the nearest
	// preceding timestamp in the block (at worst the block's mandatory
	// first-entry timestamp, §2.1).
	Timestamp int64
	// Timestamped reports whether the entry carried its own timestamp.
	Timestamped bool
	// Forced reports whether the entry was written synchronously.
	Forced bool
	// Data is the entry's client data.
	Data []byte
	// Block and Index locate the entry's first fragment (global data block
	// and record index within it).
	Block int
	Index int
	// ExtraIDs lists additional member log files for multi-membership
	// entries (§2.1); nil for ordinary entries.
	ExtraIDs []uint16
	// Shard is the shard the entry was read from when the service is one
	// partition of a sharded store; always 0 for a standalone service.
	Shard int
}

// MemberOf reports whether the entry belongs to the given (shard-local)
// log file, considering multi-membership (§2.1).
func (e *Entry) MemberOf(id uint16) bool {
	if e.LogID == id {
		return true
	}
	for _, ex := range e.ExtraIDs {
		if ex == id {
			return true
		}
	}
	return false
}

// Cursor iterates over the entries of a log file — in either direction, and
// seekable by time (§2.1: "access can be provided to the sequence of entries
// in the file either subsequent to, or prior to, any previous point in
// time").
//
// The cursor's position is a gap between entries: Next returns the entry
// after the gap and advances; Prev returns the entry before the gap and
// retreats. A cursor remains valid as the log grows.
//
// Cursors never take the service's writer lock: sealed blocks are immutable,
// and the staged tail is read from the published snapshot, so any number of
// cursors may run concurrently with appends and with each other. A single
// Cursor must still not be shared by concurrent goroutines.
type Cursor struct {
	s   *Service
	ids map[uint16]bool // nil means every entry (the volume sequence log)
	// linear disables entrymap-guided block skipping: set when the id set
	// includes a log file the entrymap does not track (the entrymap log
	// itself — footnote 6 — cannot index itself).
	linear bool

	// idSorted is the cursor's id set, sorted once at open (for locator
	// fan-out); nil when ids is nil.
	idSorted []uint16

	block int // current block (gap position)
	rec   int // next record index to consider within block

	// redir, when non-nil, is the in-progress redirection of this cursor
	// through a compacted volume's relocated copies: the volume's original
	// blocks (possibly demoted to the cold tier) are skipped and its entries
	// are served from the hot copies instead, in original order. Only
	// selective cursors whose whole id set was relocated out of the volume
	// redirect; everything else reads the original blocks. See compact.go.
	redir *redirState

	// Per-cursor decode memo: one block's decoded form is reused across the
	// Next/Prev steps that stay within it, so an entry read touches each
	// block once (the unit Table 1 counts). The staged tail block is never
	// memoized — it grows.
	memoBlock int
	memoDec   *decodedBlock
}

// redirState tracks a cursor's walk over one compacted volume's copy ranges.
// c.block stays parked inside the volume while the walk runs; on exhaustion
// the cursor jumps past the volume (forward) or before it (backward).
type redirState struct {
	v    *relocVol
	back bool // iterating v.Ranges in reverse (Prev)
	ri   int  // current index into v.Ranges
	rb   int  // current physical block within the range; -1 = range not entered
	rr   int  // next record to consider in rb (forward) / one past (backward); -1 = unset
}

// enterRedirect reports whether a selective cursor positioned on the given
// block should serve a compacted volume through its relocated copies, and
// installs the walk state if so. Cursors over "/" (ids == nil) and linear
// cursors always read the original blocks: they are the physical views.
func (c *Cursor) enterRedirect(block int, back bool) bool {
	if c.ids == nil || c.linear || c.redir != nil {
		return false
	}
	view := c.s.compView()
	if view == nil {
		return false
	}
	v := view.volAt(block)
	if v == nil || !v.covers(c.idSorted) {
		return false
	}
	rd := &redirState{v: v, back: back, rb: -1, rr: -1}
	if back {
		rd.ri = len(v.Ranges) - 1
	}
	c.redir = rd
	return true
}

// OpenCursor returns a cursor over the log file at the given path,
// positioned at the start. Reading a log file includes its sublogs'
// entries: an entry logged in a sublog also belongs to the parent (§2.1).
// Opening "/" reads the volume sequence log — every entry on the sequence,
// including the service's own entrymap and catalog entries.
func (s *Service) OpenCursor(path string) (*Cursor, error) {
	if s.closedFlag.Load() {
		return nil, ErrClosed
	}
	id, err := s.cat.Resolve(path)
	if err != nil {
		return nil, err
	}
	return s.cursorFor(id)
}

// OpenCursorID is OpenCursor by log-file id.
func (s *Service) OpenCursorID(id uint16) (*Cursor, error) {
	if s.closedFlag.Load() {
		return nil, ErrClosed
	}
	return s.cursorFor(id)
}

func (s *Service) cursorFor(id uint16) (*Cursor, error) {
	c := &Cursor{s: s, memoBlock: -1}
	if id != entrymap.VolumeSeqID {
		ids, err := s.cat.Descendants(id)
		if err != nil {
			return nil, err
		}
		c.ids = make(map[uint16]bool, len(ids))
		for _, d := range ids {
			c.ids[d] = true
			if d == entrymap.EntrymapID {
				c.linear = true
			}
		}
		c.idSorted = append(c.idSorted, ids...)
		sort.Slice(c.idSorted, func(i, j int) bool { return c.idSorted[i] < c.idSorted[j] })
	}
	return c, nil
}

func (c *Cursor) match(id uint16) bool {
	return c.ids == nil || c.ids[id]
}

// matchRecord reports whether the record belongs to the cursor's set,
// considering multi-membership entries (§2.1).
func (c *Cursor) matchRecord(r *blockfmt.RecordView) bool {
	if c.match(r.LogID) {
		return true
	}
	for _, ex := range r.ExtraIDs {
		if c.match(ex) {
			return true
		}
	}
	return false
}

// idList returns the cursor's id set, sorted (for locator fan-out).
func (c *Cursor) idList() []uint16 { return c.idSorted }

// decodeCached decodes a block, reusing the cursor's memo when the same
// block is examined repeatedly. The staged tail block bypasses the memo.
func (c *Cursor) decodeCached(block int) (*decodedBlock, error) {
	tail := c.s.snap().tailGlobal
	if block == c.memoBlock && c.memoDec != nil && block != tail {
		return c.memoDec, nil
	}
	db, err := c.s.decodeBlock(block)
	if err == nil && block != tail {
		c.memoBlock, c.memoDec = block, db
	} else {
		c.memoBlock, c.memoDec = -1, nil
	}
	return db, err
}

// SeekStart positions the cursor before the first entry.
func (c *Cursor) SeekStart() {
	c.block, c.rec = 0, 0
	c.redir = nil
}

// SeekEnd positions the cursor after the last entry. The end is a gap, not
// a wall: when a partial tail block is staged, the cursor parks inside it
// after its current records, so entries appended later — to that same
// still-growing block or beyond — are returned by subsequent Next calls.
// (Parking past the tail block would skip every entry the block gains
// before it seals, which is exactly the boundary a live subscription
// resumes from.)
func (c *Cursor) SeekEnd() {
	c.redir = nil
	sn := c.s.snap()
	if sn.tailGlobal >= 0 {
		if db, err := c.decodeCached(sn.tailGlobal); err == nil {
			c.block, c.rec = sn.tailGlobal, len(db.p.Records)
			return
		}
	}
	c.block, c.rec = sn.end(), 0
}

// Next returns the first matching entry after the cursor position and
// advances past it. It returns io.EOF at the end of the log. The service is
// charged one IPC round trip per call under the cost model.
func (c *Cursor) Next() (*Entry, error) {
	if m := c.s.met(); m != nil {
		defer m.readLat.ObserveSince(time.Now())
	}
	c.s.opt.Clock.ChargeIPC(c.s.opt.RemoteIPC)
	c.s.opt.Clock.ChargeServerFixed()
	return c.next()
}

func (c *Cursor) next() (*Entry, error) {
	s := c.s
	if s.closedFlag.Load() {
		return nil, ErrClosed
	}
	for {
		sn := s.snap()
		end := sn.sealedEnd
		if sn.tailGlobal >= 0 {
			end = sn.tailGlobal + 1
		}
		if c.redir != nil {
			e, err := c.redirNext()
			if err != nil {
				return nil, err
			}
			if e != nil {
				return e, nil
			}
			// Copies exhausted: resume the sweep just past the volume.
			c.block, c.rec = c.redir.v.end(), 0
			c.redir = nil
			continue
		}
		if c.block >= end {
			return nil, io.EOF
		}
		if c.enterRedirect(c.block, false) {
			continue
		}
		db, err := c.decodeCached(c.block)
		if err != nil {
			// Damaged or invalidated block: its entries are lost (§2.3.2);
			// skip to the next candidate block.
			if err := c.advanceBlock(end, sn.tailGlobal); err != nil {
				return nil, err
			}
			continue
		}
		parsed, effs := db.p, db.effs
		for c.rec < len(parsed.Records) {
			i := c.rec
			r := parsed.Records[i]
			c.rec++
			if r.Continued || !c.matchRecord(&r) {
				continue
			}
			if c.ids != nil && r.AttrFlags&blockfmt.AttrRelocated != 0 {
				// Relocated copies are served only through redirection (above);
				// the sweep always skips them, so an entry whose original
				// volume the cursor reads directly is never delivered twice.
				continue
			}
			data, aerr := s.assemble(c.block, i, parsed)
			if aerr != nil {
				continue // torn chain: skip the lost entry
			}
			return &Entry{
				LogID:       r.LogID,
				Timestamp:   effs[i],
				Timestamped: r.Form != blockfmt.FormMinimal,
				Forced:      r.AttrFlags&blockfmt.AttrForced != 0,
				Data:        data,
				Block:       c.block,
				Index:       i,
				ExtraIDs:    r.ExtraIDs,
			}, nil
		}
		if c.block == sn.tailGlobal {
			// The staged tail block can still grow: stay parked on it with
			// c.rec at the scanned count, so entries appended later to this
			// same block are seen by the next call.
			return nil, io.EOF
		}
		if err := c.advanceBlock(end, sn.tailGlobal); err != nil {
			return nil, err
		}
	}
}

// redirNext returns the next matching entry from the redirected volume's
// copy ranges, or (nil, nil) when the ranges are exhausted.
func (c *Cursor) redirNext() (*Entry, error) {
	rd := c.redir
	for rd.ri < len(rd.v.Ranges) {
		r := &rd.v.Ranges[rd.ri]
		if rd.rb < r.StartBlock {
			rd.rb, rd.rr = r.StartBlock, r.StartRec
		}
		db, err := c.decodeCached(rd.rb)
		if err != nil {
			// A copy block should never be unreadable (copies are forced
			// before commit); treat damage like the sweep does and move on.
			rd.advance(r)
			continue
		}
		last := len(db.p.Records) - 1
		if rd.rb == r.EndBlock && r.EndRec < last {
			last = r.EndRec
		}
		for rd.rr <= last {
			i := rd.rr
			rd.rr++
			rec := db.p.Records[i]
			if rec.Continued || !c.matchRecord(&rec) {
				continue
			}
			data, aerr := c.s.assemble(rd.rb, i, db.p)
			if aerr != nil {
				continue
			}
			return &Entry{
				LogID:       rec.LogID,
				Timestamp:   db.effs[i],
				Timestamped: rec.Form != blockfmt.FormMinimal,
				Forced:      rec.AttrFlags&blockfmt.AttrForced != 0,
				Data:        data,
				Block:       rd.rb,
				Index:       i,
				ExtraIDs:    rec.ExtraIDs,
			}, nil
		}
		rd.advance(r)
	}
	return nil, nil
}

// advance steps a forward redirect walk to the next block of the current
// range, or to the next range.
func (rd *redirState) advance(r *copyRange) {
	if rd.rb >= r.EndBlock {
		rd.ri++
		rd.rb, rd.rr = -1, -1
	} else {
		rd.rb++
		rd.rr = 0
	}
}

// advanceBlock moves the cursor to the next block that may contain a
// matching entry, using the entrymap tree when the cursor is selective.
// When nothing lies ahead, the cursor parks on the staged tail block (it
// can still grow) rather than past it.
func (c *Cursor) advanceBlock(end, tail int) error {
	if c.ids == nil || c.linear {
		c.block++
		c.rec = 0
		return nil
	}
	next := -1
	for _, id := range c.idList() {
		b, err := c.s.locFindNext(id, c.block+1)
		if err != nil {
			return err
		}
		if b >= 0 && (next == -1 || b < next) {
			next = b
		}
	}
	if next == -1 {
		if tail > c.block {
			c.block, c.rec = tail, 0
		} else {
			c.block, c.rec = end, 0
		}
		return nil
	}
	c.block, c.rec = next, 0
	return nil
}

// Prev returns the first matching entry before the cursor position and
// retreats before it. It returns io.EOF at the beginning of the log.
func (c *Cursor) Prev() (*Entry, error) {
	if m := c.s.met(); m != nil {
		defer m.readLat.ObserveSince(time.Now())
	}
	c.s.opt.Clock.ChargeIPC(c.s.opt.RemoteIPC)
	c.s.opt.Clock.ChargeServerFixed()
	return c.prev()
}

func (c *Cursor) prev() (*Entry, error) {
	s := c.s
	if s.closedFlag.Load() {
		return nil, ErrClosed
	}
	end := s.endShared()
	if c.block > end {
		c.block, c.rec = end, 0
	}
	for {
		if c.redir != nil {
			e, err := c.redirPrev()
			if err != nil {
				return nil, err
			}
			if e != nil {
				return e, nil
			}
			// Copies exhausted: resume the sweep just before the volume.
			v := c.redir.v
			c.redir = nil
			c.block, c.rec = v.Start, 0
			if err := c.retreatBlock(); err != nil {
				return nil, err
			}
			continue
		}
		if c.block < 0 {
			return nil, io.EOF
		}
		if c.block < end && c.enterRedirect(c.block, true) {
			continue
		}
		var db *decodedBlock
		var err error
		if c.block < end {
			db, err = c.decodeCached(c.block)
		}
		if c.block == end || err != nil {
			// Past-the-end gap position or unreadable block: step back.
			if err := c.retreatBlock(); err != nil {
				return nil, err
			}
			continue
		}
		parsed, effs := db.p, db.effs
		for c.rec > 0 {
			i := c.rec - 1
			c.rec--
			r := parsed.Records[i]
			if r.Continued || !c.matchRecord(&r) {
				continue
			}
			if c.ids != nil && r.AttrFlags&blockfmt.AttrRelocated != 0 {
				continue // copies are served only through redirection
			}
			data, aerr := s.assemble(c.block, i, parsed)
			if aerr != nil {
				continue
			}
			return &Entry{
				LogID:       r.LogID,
				Timestamp:   effs[i],
				Timestamped: r.Form != blockfmt.FormMinimal,
				Forced:      r.AttrFlags&blockfmt.AttrForced != 0,
				Data:        data,
				Block:       c.block,
				Index:       i,
				ExtraIDs:    r.ExtraIDs,
			}, nil
		}
		if err := c.retreatBlock(); err != nil {
			return nil, err
		}
	}
}

// redirPrev is redirNext in reverse: the last not-yet-returned matching copy
// of the redirected volume, or (nil, nil) when exhausted.
func (c *Cursor) redirPrev() (*Entry, error) {
	rd := c.redir
	for rd.ri >= 0 {
		r := &rd.v.Ranges[rd.ri]
		if rd.rb < 0 || rd.rb > r.EndBlock {
			rd.rb, rd.rr = r.EndBlock, -1
		}
		db, err := c.decodeCached(rd.rb)
		if err != nil {
			rd.retreat(r)
			continue
		}
		if rd.rr < 0 {
			rd.rr = len(db.p.Records)
			if rd.rb == r.EndBlock && r.EndRec+1 < rd.rr {
				rd.rr = r.EndRec + 1
			}
		}
		first := 0
		if rd.rb == r.StartBlock {
			first = r.StartRec
		}
		for rd.rr > first {
			i := rd.rr - 1
			rd.rr--
			rec := db.p.Records[i]
			if rec.Continued || !c.matchRecord(&rec) {
				continue
			}
			data, aerr := c.s.assemble(rd.rb, i, db.p)
			if aerr != nil {
				continue
			}
			return &Entry{
				LogID:       rec.LogID,
				Timestamp:   db.effs[i],
				Timestamped: rec.Form != blockfmt.FormMinimal,
				Forced:      rec.AttrFlags&blockfmt.AttrForced != 0,
				Data:        data,
				Block:       rd.rb,
				Index:       i,
				ExtraIDs:    rec.ExtraIDs,
			}, nil
		}
		rd.retreat(r)
	}
	return nil, nil
}

// retreat steps a backward redirect walk to the previous block of the
// current range, or to the previous range.
func (rd *redirState) retreat(r *copyRange) {
	if rd.rb <= r.StartBlock {
		rd.ri--
		rd.rb, rd.rr = -1, -1
	} else {
		rd.rb--
		rd.rr = -1
	}
}

// retreatBlock moves the cursor to the previous candidate block and
// positions after its last record.
func (c *Cursor) retreatBlock() error {
	var prev int
	if c.ids == nil || c.linear {
		prev = c.block - 1
	} else {
		prev = -1
		for _, id := range c.idList() {
			b, err := c.s.locFindPrev(id, c.block)
			if err != nil {
				return err
			}
			if b > prev {
				prev = b
			}
		}
	}
	if prev < 0 {
		c.block, c.rec = -1, 0
		return nil
	}
	c.block = prev
	// When the previous block belongs to a compacted volume the cursor will
	// redirect through, skip the decode: it could hit the cold tier, and the
	// record position is irrelevant once the redirect walk takes over.
	if c.ids != nil && !c.linear {
		if view := c.s.compView(); view != nil {
			if v := view.volAt(prev); v != nil && v.covers(c.idSorted) {
				c.rec = 0
				return nil
			}
		}
	}
	if db, err := c.decodeCached(prev); err == nil {
		c.rec = len(db.p.Records)
	} else {
		c.rec = 0
	}
	return nil
}

// SeekTime positions the cursor so that the following Next returns the
// first matching entry whose effective timestamp is >= ts (and Prev returns
// the last matching entry before that point). The block is located with the
// entrymap-landmark timestamp search of §2.1.
func (c *Cursor) SeekTime(ts int64) error {
	c.s.opt.Clock.ChargeIPC(c.s.opt.RemoteIPC)
	c.s.opt.Clock.ChargeServerFixed()
	b, err := c.s.locFindByTime(ts - 1)
	if err != nil {
		return err
	}
	if b < 0 {
		c.block, c.rec = 0, 0
		return nil
	}
	// Scan forward from the located block for the first entry at/after ts,
	// leaving the gap just before it.
	c.block, c.rec = b, 0
	c.redir = nil
	for {
		pos := c.savePos()
		e, err := c.next()
		if err == io.EOF {
			return nil // gap at end: everything is before ts
		}
		if err != nil {
			return err
		}
		if e.Timestamp >= ts {
			c.restorePos(pos)
			return nil
		}
	}
}

// cursorPos captures a cursor's full position — gap plus any in-progress
// redirect walk — so a scan can rewind exactly one step.
type cursorPos struct {
	block, rec int
	redir      *redirState
}

func (c *Cursor) savePos() cursorPos {
	p := cursorPos{block: c.block, rec: c.rec}
	if c.redir != nil {
		rd := *c.redir
		p.redir = &rd
	}
	return p
}

func (c *Cursor) restorePos(p cursorPos) {
	c.block, c.rec, c.redir = p.block, p.rec, p.redir
}

// Position returns the cursor's gap position (global block, record index)
// for diagnostics and tests.
func (c *Cursor) Position() (block, rec int) { return c.block, c.rec }

// SeekPos restores a cursor to a previously observed gap position, so a
// client can persist (block, rec) and resume iteration later — e.g. a
// monitoring process that periodically drains new entries (§3's "audit and
// monitoring processes read hundreds of records ... periodically"). Passing
// the Block/Index of an Entry positions the gap *before* that entry;
// resume after it by passing Index+1. A position saved before a compaction
// pass may fall inside a since-compacted volume; iteration stays correct but
// restarts that volume's entries from its boundary (at-least-once delivery).
func (c *Cursor) SeekPos(block, rec int) error {
	if c.s.closedFlag.Load() {
		return ErrClosed
	}
	if block < 0 || rec < 0 {
		return fmt.Errorf("clio: invalid cursor position (%d, %d)", block, rec)
	}
	c.block, c.rec = block, rec
	c.redir = nil
	return nil
}

// effectiveTimestamps computes, for each record in a block, the timestamp in
// force when it was written: its own for full-header records, otherwise the
// nearest preceding timestamp (at worst the block's mandatory first-entry
// footer timestamp).
func effectiveTimestamps(p *blockfmt.Parsed) []int64 {
	out := make([]int64, len(p.Records))
	cur := p.FirstTimestamp
	for i, r := range p.Records {
		if r.Form != blockfmt.FormMinimal && r.Timestamp != 0 {
			cur = r.Timestamp
		}
		out[i] = cur
	}
	return out
}

// LocateUnique finds an entry by the client-generated unique identifier of
// §2.1: a client that writes asynchronously tags entries with its own
// sequence number (inside the data) and remembers its own timestamp; the
// server timestamp of the entry then lies within the clock skew of the
// client's. The search seeks to clientTS−maxSkew and scans matching
// entries until clientTS+maxSkew, returning the first entry `match`
// accepts. As the paper notes, efficiency depends on clock synchronization
// quality, and correctness on the client's sequence number not wrapping
// within the skew window.
func (c *Cursor) LocateUnique(clientTS, maxSkew int64, match func(*Entry) bool) (*Entry, error) {
	if err := c.SeekTime(clientTS - maxSkew); err != nil {
		return nil, err
	}
	for {
		e, err := c.Next()
		if err == io.EOF {
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		if e.Timestamp > clientTS+maxSkew {
			return nil, io.EOF
		}
		if match(e) {
			return e, nil
		}
	}
}

// ReadAt returns the single entry at the given (block, index) position, as
// previously reported in an Entry. It allows a client to retain a compact
// reference to an entry and fetch it later. Like cursors, it runs without
// the writer lock.
func (s *Service) ReadAt(block, index int) (*Entry, error) {
	e := new(Entry)
	if err := s.ReadAtInto(block, index, e); err != nil {
		return nil, err
	}
	return e, nil
}

// ReadAtInto is ReadAt into a caller-provided Entry, so a warm read of a
// sealed, unfragmented entry performs no allocation at all: the block's
// decode is reused from the cache entry it is attached to, and e.Data is a
// subslice of the cache-owned block image. The data must therefore be
// treated as read-only and copied if retained past the block's cache
// residency.
func (s *Service) ReadAtInto(block, index int, e *Entry) error {
	if m := s.met(); m != nil {
		defer m.readLat.ObserveSince(time.Now())
	}
	if s.closedFlag.Load() {
		return ErrClosed
	}
	db, err := s.decodeBlock(block)
	if err != nil {
		return fmt.Errorf("%w: block %d unreadable: %v", ErrLost, block, err)
	}
	if index < 0 || index >= len(db.p.Records) {
		return fmt.Errorf("clio: no record %d in block %d", index, block)
	}
	r := &db.p.Records[index]
	if r.Continued {
		return fmt.Errorf("clio: record %d of block %d is a continuation fragment", index, block)
	}
	data, err := s.assemble(block, index, db.p)
	if err != nil {
		return err
	}
	*e = Entry{
		LogID:       r.LogID,
		Timestamp:   db.effs[index],
		Timestamped: r.Form != blockfmt.FormMinimal,
		Forced:      r.AttrFlags&blockfmt.AttrForced != 0,
		Data:        data,
		Block:       block,
		Index:       index,
		ExtraIDs:    r.ExtraIDs,
	}
	return nil
}
