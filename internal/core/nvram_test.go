package core

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMemNVRAMRoundTrip(t *testing.T) {
	nv := NewMemNVRAM()
	if g, img, err := nv.Load(); err != nil || img != nil || g != 0 {
		t.Fatalf("empty load: %d %v %v", g, img, err)
	}
	if err := nv.Store(7, []byte("block image")); err != nil {
		t.Fatal(err)
	}
	g, img, err := nv.Load()
	if err != nil || g != 7 || string(img) != "block image" {
		t.Fatalf("load: %d %q %v", g, img, err)
	}
	// Load returns a copy.
	img[0] = 'X'
	if _, img2, _ := nv.Load(); string(img2) != "block image" {
		t.Error("Load aliases internal buffer")
	}
	if err := nv.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, img, _ := nv.Load(); img != nil {
		t.Error("Clear did not clear")
	}
}

func TestFileNVRAMRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nv")
	nv := NewFileNVRAM(path)
	if g, img, err := nv.Load(); err != nil || img != nil || g != 0 {
		t.Fatalf("missing file load: %d %v %v", g, img, err)
	}
	if err := nv.Store(42, []byte("staged tail block")); err != nil {
		t.Fatal(err)
	}
	// A fresh handle (new process) sees the staged image.
	nv2 := NewFileNVRAM(path)
	g, img, err := nv2.Load()
	if err != nil || g != 42 || string(img) != "staged tail block" {
		t.Fatalf("reload: %d %q %v", g, img, err)
	}
	// Replacement.
	if err := nv2.Store(43, []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if g, img, _ := nv2.Load(); g != 43 || string(img) != "newer" {
		t.Errorf("after replace: %d %q", g, img)
	}
	if err := nv2.Clear(); err != nil {
		t.Fatal(err)
	}
	if _, img, _ := nv2.Load(); img != nil {
		t.Error("Clear left an image")
	}
	if err := nv2.Clear(); err != nil {
		t.Error("double Clear errored")
	}
}

func TestFileNVRAMTornStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nv")
	nv := NewFileNVRAM(path)
	if err := nv.Store(1, []byte("good image")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file (simulated torn write): checksum fails → treated as
	// empty, never as garbage.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, img, err := nv.Load(); err != nil || img != nil {
		t.Errorf("torn file: img=%v err=%v, want empty", img, err)
	}
	// Truncated file likewise.
	if err := os.WriteFile(path, raw[:4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, img, err := nv.Load(); err != nil || img != nil {
		t.Errorf("truncated file: img=%v err=%v, want empty", img, err)
	}
}
