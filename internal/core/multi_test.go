package core

import (
	"fmt"
	"io"
	"testing"

	"clio/internal/wodev"
)

func TestAppendMultiMembership(t *testing.T) {
	s, _ := newTestService(t, Options{BlockSize: 256, Degree: 4})
	defer s.Close()
	a := mustCreate(t, s, "/a")
	b := mustCreate(t, s, "/b")
	c := mustCreate(t, s, "/c")

	// An entry belonging to both /a and /b (§2.1).
	if _, err := s.AppendMulti([]uint16{a, b}, []byte("shared"), AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, s, a, "only-a", AppendOptions{})
	mustAppend(t, s, c, "only-c", AppendOptions{})

	if got := datas(readAll(t, s, "/a")); fmt.Sprint(got) != "[shared only-a]" {
		t.Errorf("/a: %v", got)
	}
	if got := datas(readAll(t, s, "/b")); fmt.Sprint(got) != "[shared]" {
		t.Errorf("/b: %v", got)
	}
	if got := datas(readAll(t, s, "/c")); fmt.Sprint(got) != "[only-c]" {
		t.Errorf("/c: %v", got)
	}
	// The entry reports its memberships.
	entries := readAll(t, s, "/b")
	if len(entries) != 1 || entries[0].LogID != a || len(entries[0].ExtraIDs) != 1 || entries[0].ExtraIDs[0] != b {
		t.Errorf("membership metadata: %+v", entries[0])
	}
	if !entries[0].Timestamped {
		t.Error("multi entries must carry timestamps")
	}
}

func TestAppendMultiValidation(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	a := mustCreate(t, s, "/a")
	if _, err := s.AppendMulti(nil, []byte("x"), AppendOptions{}); err == nil {
		t.Error("empty id list accepted")
	}
	if _, err := s.AppendMulti([]uint16{a, a}, []byte("x"), AppendOptions{}); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := s.AppendMulti([]uint16{a, 999}, []byte("x"), AppendOptions{}); err == nil {
		t.Error("unknown member accepted")
	}
	too := make([]uint16, 20)
	for i := range too {
		too[i] = a
	}
	if _, err := s.AppendMulti(too, []byte("x"), AppendOptions{}); err == nil {
		t.Error("oversized member list accepted")
	}
}

func TestMultiMembershipDistantLocate(t *testing.T) {
	// The entrymap must track secondary memberships so a sublog-style
	// locate finds multi entries that are far back.
	s, _ := newTestService(t, Options{BlockSize: 256, Degree: 4})
	defer s.Close()
	a := mustCreate(t, s, "/a")
	b := mustCreate(t, s, "/b")
	filler := mustCreate(t, s, "/filler")
	if _, err := s.AppendMulti([]uint16{a, b}, []byte("early-shared"), AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		mustAppend(t, s, filler, "ffffffffffffffffffffffff", AppendOptions{Forced: true})
	}
	// Locate /b's only entry from the end: goes through the entrymap tree.
	cur, err := s.OpenCursor("/b")
	if err != nil {
		t.Fatal(err)
	}
	cur.SeekEnd()
	e, err := cur.Prev()
	if err != nil || string(e.Data) != "early-shared" {
		t.Fatalf("distant multi locate: %v", err)
	}
	if _, err := cur.Prev(); err != io.EOF {
		t.Fatalf("extra entries: %v", err)
	}
}

func TestMultiMembershipSurvivesCrash(t *testing.T) {
	nv := NewMemNVRAM()
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, NVRAM: nv}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	a := mustCreate(t, s, "/a")
	b := mustCreate(t, s, "/b")
	if _, err := s.AppendMulti([]uint16{a, b}, []byte("durable-shared"), AppendOptions{Forced: true}); err != nil {
		t.Fatal(err)
	}
	s2 := crashAndReopen(t, s, dev, opt)
	defer s2.Close()
	for _, path := range []string{"/a", "/b"} {
		if got := datas(readAll(t, s2, path)); fmt.Sprint(got) != "[durable-shared]" {
			t.Errorf("%s after crash: %v", path, got)
		}
	}
	// And keeps working for post-recovery appends in the same tail block.
	if _, err := s2.AppendMulti([]uint16{a, b}, []byte("again"), AppendOptions{Forced: true}); err != nil {
		t.Fatal(err)
	}
	if got := datas(readAll(t, s2, "/b")); fmt.Sprint(got) != "[durable-shared again]" {
		t.Errorf("/b after second append: %v", got)
	}
}
