// Package histfs is the history-based file service sketched in §4.1 of the
// paper: a conventional-looking file service whose *only* permanent storage
// is the log service. Every update to a file's contents or properties is
// appended to the file's history log; the current contents are merely a
// cached summary that can always be rebuilt by replay — "a system's true,
// permanent state is based upon its execution history, with the 'current
// state' being merely a cached summary of the effect of this history" (§1).
//
// Consequences the paper promises, which this package delivers:
//
//   - any earlier version of a file can be extracted (ReadAsOf);
//   - deletion removes a file from the namespace but never destroys
//     history — archiving is built in;
//   - recovery needs no separate mechanism: dropping the cache and
//     replaying the logs reproduces the current state exactly.
package histfs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"clio/internal/logapi"
	"clio/internal/wire"
)

// Errors.
var (
	// ErrNotExist indicates the file is absent (or deleted) at the
	// requested time.
	ErrNotExist = errors.New("histfs: file does not exist")
	// ErrExists indicates a Create of a live file.
	ErrExists = errors.New("histfs: file already exists")
	// ErrBadName indicates an unusable file name.
	ErrBadName = errors.New("histfs: invalid file name")
	// ErrBadRecord indicates an undecodable history record.
	ErrBadRecord = errors.New("histfs: malformed history record")
)

// Update kinds in a file history.
const (
	opCreate   = 1
	opWrite    = 2 // random-access write at an offset
	opTruncate = 3
	opDelete   = 4
	opSetMode  = 5
	// opRead records a read access (§4.1: the file history may include
	// "information about read access to files"). It never changes state.
	opRead = 6
)

// FS is a history-based file system rooted at a log-file directory. It
// works against any logapi.Service — an in-process service, a sharded
// store, or a network client.
type FS struct {
	mu   sync.Mutex
	svc  logapi.Service
	root string
	// cache holds materialized current versions, keyed by file name. It is
	// a pure cache: Evict/recovery rebuilds entries by replay.
	cache map[string]*fileState
	// logs caches name → log-file id.
	logs map[string]logapi.ID
	// logReads, when set, appends a read-access record on every Read
	// (§4.1). Off by default.
	logReads bool
}

type fileState struct {
	data    []byte
	mode    uint16
	exists  bool
	replayT int64 // timestamp of the last replayed record
}

// Info describes a file's current state.
type Info struct {
	Name string
	Size int
	Mode uint16
	// Versions counts the history records for the file.
	Versions int
}

// New returns a history-based file system storing its histories under the
// given root log directory (created if absent, e.g. "/histfs").
func New(ctx context.Context, svc logapi.Service, root string) (*FS, error) {
	if !strings.HasPrefix(root, "/") {
		return nil, fmt.Errorf("%w: root %q", ErrBadName, root)
	}
	if _, err := svc.Resolve(ctx, root); err != nil {
		if _, err := svc.CreateLog(ctx, root, 0o755, "histfs"); err != nil {
			return nil, err
		}
	}
	return &FS{
		svc:   svc,
		root:  root,
		cache: make(map[string]*fileState),
		logs:  make(map[string]logapi.ID),
	}, nil
}

// SetLogReads toggles read-access logging: every Read appends an opRead
// record to the file's history (it does not affect replayed state).
func (fs *FS) SetLogReads(on bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.logReads = on
}

// escapeName maps a file name (which may contain slashes) to a single
// log-file name component.
func escapeName(name string) string {
	r := strings.NewReplacer("%", "%25", "/", "%2F")
	return r.Replace(name)
}

func validName(name string) bool {
	return name != "" && len(name) < 200 && !strings.ContainsRune(name, 0)
}

// logFor returns (creating if asked) the history log id for a file.
func (fs *FS) logFor(ctx context.Context, name string, create bool) (logapi.ID, error) {
	if id, ok := fs.logs[name]; ok {
		return id, nil
	}
	path := fs.root + "/" + escapeName(name)
	id, err := fs.svc.Resolve(ctx, path)
	if err == nil {
		fs.logs[name] = id
		return id, nil
	}
	if !create {
		return 0, ErrNotExist
	}
	id, err = fs.svc.CreateLog(ctx, path, 0o644, "histfs")
	if err != nil {
		return 0, err
	}
	fs.logs[name] = id
	return id, nil
}

// record encodes one history record.
func record(op byte, offset uint64, mode uint16, data []byte) []byte {
	out := []byte{op}
	out = wire.PutUvarint(out, offset)
	out = wire.PutUint16(out, mode)
	out = wire.PutUvarint(out, uint64(len(data)))
	return append(out, data...)
}

type update struct {
	op     byte
	offset uint64
	mode   uint16
	data   []byte
}

func decodeRecord(b []byte) (*update, error) {
	if len(b) < 1 {
		return nil, ErrBadRecord
	}
	u := &update{op: b[0]}
	rest := b[1:]
	off, n, err := wire.Uvarint(rest)
	if err != nil {
		return nil, ErrBadRecord
	}
	u.offset = off
	rest = rest[n:]
	mode, err := wire.Uint16(rest)
	if err != nil {
		return nil, ErrBadRecord
	}
	u.mode = mode
	rest = rest[2:]
	l, n, err := wire.Uvarint(rest)
	if err != nil {
		return nil, ErrBadRecord
	}
	rest = rest[n:]
	if uint64(len(rest)) < l {
		return nil, ErrBadRecord
	}
	u.data = rest[:l]
	return u, nil
}

// apply folds one update into a state.
func (st *fileState) apply(u *update, ts int64) {
	switch u.op {
	case opCreate:
		st.exists = true
		st.data = st.data[:0]
		st.mode = u.mode
	case opWrite:
		if !st.exists {
			return
		}
		end := int(u.offset) + len(u.data)
		for len(st.data) < end {
			st.data = append(st.data, 0)
		}
		copy(st.data[u.offset:end], u.data)
	case opTruncate:
		if !st.exists {
			return
		}
		size := int(u.offset)
		for len(st.data) < size {
			st.data = append(st.data, 0)
		}
		st.data = st.data[:size]
	case opDelete:
		st.exists = false
		st.data = nil
	case opSetMode:
		if st.exists {
			st.mode = u.mode
		}
	case opRead:
		// Access records carry audit information only.
	}
	st.replayT = ts
}

// appendUpdate logs an update and folds it into the cached state.
func (fs *FS) appendUpdate(ctx context.Context, name string, id logapi.ID, u []byte, force bool) error {
	ts, err := fs.svc.Append(ctx, id, u, logapi.AppendOptions{Timestamped: true, Forced: force})
	if err != nil {
		return err
	}
	if st, ok := fs.cache[name]; ok {
		dec, err := decodeRecord(u)
		if err != nil {
			return err
		}
		st.apply(dec, ts)
	}
	return nil
}

// state materializes the current state of a file by cache or replay.
func (fs *FS) state(ctx context.Context, name string) (*fileState, error) {
	if st, ok := fs.cache[name]; ok {
		return st, nil
	}
	st, _, err := fs.replay(ctx, name, 1<<62)
	if err != nil {
		return nil, err
	}
	fs.cache[name] = st
	return st, nil
}

// replay rebuilds a file state from its history up to and including asOf.
func (fs *FS) replay(ctx context.Context, name string, asOf int64) (*fileState, int, error) {
	if _, err := fs.logFor(ctx, name, false); err != nil {
		return nil, 0, err
	}
	cur, err := fs.svc.OpenCursor(ctx, fs.root+"/"+escapeName(name))
	if err != nil {
		return nil, 0, err
	}
	defer cur.Close()
	st := &fileState{}
	n := 0
	for {
		e, err := cur.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, err
		}
		if e.Timestamp > asOf {
			break
		}
		u, derr := decodeRecord(e.Data)
		if derr != nil {
			continue // damaged record: that update is lost
		}
		st.apply(u, e.Timestamp)
		n++
	}
	return st, n, nil
}

// Create makes a new empty file.
func (fs *FS) Create(ctx context.Context, name string, mode uint16) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !validName(name) {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	id, err := fs.logFor(ctx, name, true)
	if err != nil {
		return err
	}
	st, err := fs.state(ctx, name)
	if err != nil {
		return err
	}
	if st.exists {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	return fs.appendUpdate(ctx, name, id, record(opCreate, 0, mode, nil), true)
}

// WriteAt writes data at an offset, extending the file with zeros if needed.
func (fs *FS) WriteAt(ctx context.Context, name string, offset int, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mutate(ctx, name, record(opWrite, uint64(offset), 0, data))
}

// Append appends data at the current end of the file.
func (fs *FS) Append(ctx context.Context, name string, data []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st, err := fs.liveState(ctx, name)
	if err != nil {
		return err
	}
	off := len(st.data)
	return fs.mutate(ctx, name, record(opWrite, uint64(off), 0, data))
}

// Truncate sets the file size.
func (fs *FS) Truncate(ctx context.Context, name string, size int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mutate(ctx, name, record(opTruncate, uint64(size), 0, nil))
}

// SetMode changes the file mode.
func (fs *FS) SetMode(ctx context.Context, name string, mode uint16) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mutate(ctx, name, record(opSetMode, 0, mode, nil))
}

// Delete removes the file from the namespace. Its history — and therefore
// every version it ever had — remains readable via ReadAsOf.
func (fs *FS) Delete(ctx context.Context, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mutate(ctx, name, record(opDelete, 0, 0, nil))
}

func (fs *FS) liveState(ctx context.Context, name string) (*fileState, error) {
	if !validName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	st, err := fs.state(ctx, name)
	if err != nil {
		return nil, err
	}
	if !st.exists {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	return st, nil
}

func (fs *FS) mutate(ctx context.Context, name string, rec []byte) error {
	if _, err := fs.liveState(ctx, name); err != nil {
		return err
	}
	id, err := fs.logFor(ctx, name, false)
	if err != nil {
		return err
	}
	return fs.appendUpdate(ctx, name, id, rec, false)
}

// Read returns the file's current contents (a copy). With read logging
// enabled, the access itself is appended to the history.
func (fs *FS) Read(ctx context.Context, name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st, err := fs.liveState(ctx, name)
	if err != nil {
		return nil, err
	}
	if fs.logReads {
		id, lerr := fs.logFor(ctx, name, false)
		if lerr == nil {
			if aerr := fs.appendUpdate(ctx, name, id, record(opRead, 0, 0, nil), false); aerr != nil {
				return nil, aerr
			}
		}
	}
	out := make([]byte, len(st.data))
	copy(out, st.data)
	return out, nil
}

// ReadAccesses counts the read-access records in a file's history.
func (fs *FS) ReadAccesses(ctx context.Context, name string) (int, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.logFor(ctx, name, false); err != nil {
		return 0, err
	}
	cur, err := fs.svc.OpenCursor(ctx, fs.root+"/"+escapeName(name))
	if err != nil {
		return 0, err
	}
	defer cur.Close()
	n := 0
	for {
		e, err := cur.Next(ctx)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return 0, err
		}
		if len(e.Data) > 0 && e.Data[0] == opRead {
			n++
		}
	}
}

// ReadAsOf returns the file's contents as of the given timestamp — "the
// file server can extract, from the file history, either the current
// version of a file, or an earlier version" (§4.1). It works for deleted
// files too.
func (fs *FS) ReadAsOf(ctx context.Context, name string, asOf int64) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if !validName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	st, _, err := fs.replay(ctx, name, asOf)
	if err != nil {
		return nil, err
	}
	if !st.exists {
		return nil, fmt.Errorf("%w: %q at %d", ErrNotExist, name, asOf)
	}
	out := make([]byte, len(st.data))
	copy(out, st.data)
	return out, nil
}

// Stat returns the file's current info.
func (fs *FS) Stat(ctx context.Context, name string) (Info, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	st, err := fs.liveState(ctx, name)
	if err != nil {
		return Info{}, err
	}
	_, n, err := fs.replay(ctx, name, 1<<62)
	if err != nil {
		return Info{}, err
	}
	return Info{Name: name, Size: len(st.data), Mode: st.mode, Versions: n}, nil
}

// List returns the live file names, sorted.
func (fs *FS) List(ctx context.Context) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names, err := fs.svc.List(ctx, fs.root)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, esc := range names {
		name := unescapeName(esc)
		st, err := fs.state(ctx, name)
		if err != nil {
			continue
		}
		if st.exists {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

func unescapeName(esc string) string {
	r := strings.NewReplacer("%2F", "/", "%25", "%")
	return r.Replace(esc)
}

// EvictCache drops all cached file states, forcing replays — used by tests
// to prove the cache is pure (the history alone reconstructs every file).
func (fs *FS) EvictCache() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.cache = make(map[string]*fileState)
}
