package experiments

import (
	"io"

	"clio/internal/analytic"
	"clio/internal/core"
	"clio/internal/entrymap"
	"clio/internal/workload"
)

// SpaceRow summarizes the §3.5 space-overhead experiment on the
// login/logout workload.
type SpaceRow struct {
	Entries int
	// Measured parameters of the running system.
	C float64 // fraction of a block per average entry (paper ≈ 1/15)
	A float64 // avg log files referenced per entrymap entry (paper ≈ 8)
	// Header overhead.
	HeaderBytesPerEntry float64 // paper: 4 (minimal header)
	// Entrymap overhead.
	EntrymapBytesPerEntry float64 // paper: < 0.16 bytes
	TheoryBound           float64 // §3.5: c·(h + a(N/8+c'))/(N−1)
	// EntrymapPctOfEntry is the entrymap overhead as a percentage of the
	// average entry (paper: < 0.2%).
	EntrymapPctOfEntry float64
}

// RunSpace reproduces §3.5: run the login/logout workload (the V-System
// user-access file system), then measure the actual header and entrymap
// bytes on the volume and compare with the analytic bound.
func RunSpace(entries int) (*SpaceRow, error) {
	if entries <= 0 {
		entries = 30_000
	}
	blockSize := 1024
	n := 16
	svc, _, err := newService(blockSize, n, entries/4+1024, nil, core.NewMemNVRAM())
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	tr := workload.NewLoginTrace(7, 8)
	ids := make(map[string]uint16)
	for _, path := range tr.Logs() {
		if _, err := svc.CreateLog(path, 0, ""); err != nil {
			return nil, err
		}
		ids[path], _ = svc.Resolve(path)
	}
	var clientBytes int64
	for i := 0; i < entries; i++ {
		op := tr.Next()
		if _, err := svc.Append(ids[op.Log], op.Data, core.AppendOptions{}); err != nil {
			return nil, err
		}
		clientBytes += int64(len(op.Data))
	}
	st := svc.Stats()

	// Measure a and the average entrymap entry size by reading the entrymap
	// log file back.
	cur, err := svc.OpenCursorID(entrymap.EntrymapID)
	if err != nil {
		return nil, err
	}
	var emEntries, emMaps int
	var emBytes int64
	for {
		e, err := cur.Next()
		if err != nil {
			break
		}
		dec, derr := entrymap.Decode(e.Data)
		if derr != nil {
			continue
		}
		emEntries++
		emMaps += len(dec.Maps)
		emBytes += int64(len(e.Data) + 4) // payload + minimal header
	}
	row := &SpaceRow{Entries: entries}
	avgEntry := float64(clientBytes)/float64(entries) + 4 // client + header
	row.C = avgEntry / float64(blockSize)
	if emEntries > 0 {
		row.A = float64(emMaps) / float64(emEntries)
	}
	row.HeaderBytesPerEntry = float64(st.HeaderBytes) / float64(entries)
	row.EntrymapBytesPerEntry = float64(emBytes) / float64(entries)
	row.TheoryBound = analytic.SpaceOverheadBound(4, n, row.A, row.C, 2)
	row.EntrymapPctOfEntry = 100 * row.EntrymapBytesPerEntry / avgEntry
	return row, nil
}

// PrintSpace renders the §3.5 numbers.
func PrintSpace(w io.Writer, r *SpaceRow) {
	fprintf(w, "§3.5 space overhead (login/logout workload, 8 users, N=16, 1 KiB blocks)\n")
	fprintf(w, "%-44s %12s %12s\n", "quantity", "paper", "measured")
	fprintf(w, "%-44s %12s %12.4f\n", "c (block fraction per entry)", "~0.067", r.C)
	fprintf(w, "%-44s %12s %12.2f\n", "a (log files per entrymap entry)", "~8", r.A)
	fprintf(w, "%-44s %12s %12.2f\n", "header bytes per entry", "4", r.HeaderBytesPerEntry)
	fprintf(w, "%-44s %12s %12.4f\n", "entrymap bytes per entry", "<0.16", r.EntrymapBytesPerEntry)
	fprintf(w, "%-44s %12s %12.4f\n", "  analytic bound c·ē/(N−1)", "0.16", r.TheoryBound)
	fprintf(w, "%-44s %12s %12.4f\n", "entrymap overhead % of entry", "<0.2", r.EntrymapPctOfEntry)
}
