package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"clio/internal/faults"
	"clio/internal/server"
	"clio/internal/wire"
	"clio/internal/wodev"
)

// sessionChunk bounds how many sessions ride one ReplSessions frame during
// catch-up, keeping frames well under the protocol limit.
const sessionChunk = 64

// errFellBehind marks a subscriber dropped for a full stream queue. It is
// the one stream failure that says nothing about the peer's health — the
// follower is reachable and applying, just slower than the emit rate — so
// the sender reconnects immediately (no backoff) and leaves p.alive set
// while the catch-up ships the missed suffix. Clearing it would make a
// slow follower flap the pre-gate's live-replica count and refuse writes
// cluster-wide even though quorum acks are still arriving.
var errFellBehind = errors.New("cluster: fell behind the stream; restarting with catch-up")

// peer is the leader's view of one follower: its cumulative ack position
// (the quorum input) and liveness (the pre-gate input).
type peer struct {
	addr          string
	acked         atomic.Uint64
	alive         atomic.Bool
	catchupBlocks atomic.Int64
	resets        atomic.Int64

	mu       sync.Mutex
	conn     net.Conn
	stopOnce sync.Once
	stopCh   chan struct{}
}

func newPeer(addr string) *peer { return &peer{addr: addr, stopCh: make(chan struct{})} }

func (p *peer) stop() {
	p.stopOnce.Do(func() { close(p.stopCh) })
	p.mu.Lock()
	c := p.conn
	p.conn = nil
	p.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// setConn registers the live connection so stop can sever it; false means
// the peer was already stopped.
func (p *peer) setConn(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.stopCh:
		return false
	default:
	}
	p.conn = c
	return true
}

// runSender owns one follower's replication stream for the node's whole
// leadership: dial, hand-shake, catch up, stream, and on any failure back
// off and start over. The backoff is full-jitter so a cluster-wide blip
// does not resynchronize every sender's retries.
func (n *Node) runSender(p *peer) {
	defer n.wg.Done()
	pol := faults.RetryPolicy{
		MaxAttempts: 1 << 30, // the loop itself decides when to stop
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    500 * time.Millisecond,
		Multiplier:  2,
		FullJitter:  true,
		Seed:        addrSeed(p.addr),
	}
	attempt := 0
	for {
		select {
		case <-p.stopCh:
			return
		default:
		}
		err := n.streamTo(p)
		if errors.Is(err, errFellBehind) {
			// Only slow, not down: keep the peer counted live and go
			// straight back into a catch-up session. Progress is
			// guaranteed — each round ships the device suffix accumulated
			// since — and a real failure (dial, handshake, conn) on the
			// way back clears alive below.
			n.logf("cluster: replica %s: %v", p.addr, err)
			attempt = 0
			continue
		}
		p.alive.Store(false)
		select {
		case <-p.stopCh:
			return
		default:
		}
		if err == nil {
			return // stopped cleanly mid-stream
		}
		attempt++
		n.logf("cluster: replica %s: %v", p.addr, err)
		select {
		case <-p.stopCh:
			return
		case <-time.After(pol.Backoff(attempt)):
		}
	}
}

// streamTo runs one replication session: handshake (which reports the
// follower's per-device extents), catch-up of the missing suffix plus
// NVRAM tails and the session table, then live frames until something
// breaks.
func (n *Node) streamTo(p *peer) error {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.DialTimeout)
	conn, err := n.dialPeer(ctx, p.addr)
	cancel()
	if err != nil {
		return err
	}
	if !p.setConn(conn) {
		conn.Close()
		return nil
	}
	defer conn.Close()

	n.mu.Lock()
	if n.role != wire.RoleLeader || n.srv == nil {
		n.mu.Unlock()
		return errors.New("no longer leader")
	}
	term, epoch, srv := n.term, n.epoch, n.srv
	devs := n.devs
	n.mu.Unlock()

	hello := &wire.ReplHello{
		Term:       term,
		Epoch:      epoch,
		LeaderAddr: n.cfg.NodeID,
		Shards:     uint32(len(devs)),
		BlockSize:  uint32(devs[0][0].BlockSize()),
	}
	if err := server.WriteFrame(conn, wire.OpReplHello, 0, 0, hello.Encode(nil)); err != nil {
		return err
	}
	status, _, _, payload, err := server.ReadFrame(conn)
	if err != nil {
		return err
	}
	if status != server.StatusOK {
		return fmt.Errorf("handshake refused: %s", respError(payload))
	}
	hr, err := wire.DecodeReplHelloResp(payload)
	if err != nil {
		return err
	}
	if !hr.Accept {
		if hr.Term > term {
			// A higher term exists: someone was promoted past us. Stop
			// being leader; the sender dies with the demotion.
			go n.stepDown(hr.Term, "")
			return fmt.Errorf("follower at term %d > ours %d; stepping down", hr.Term, term)
		}
		return fmt.Errorf("follower refused stream: %s", hr.Reason)
	}

	// The ack reader runs for the rest of the session so catch-up writes
	// never deadlock against the follower's buffered per-frame responses.
	errCh := make(chan error, 1)
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		for {
			st, seq, _, pl, err := server.ReadFrame(conn)
			if err != nil {
				errCh <- err
				return
			}
			if st != server.StatusOK {
				errCh <- fmt.Errorf("follower error: %s", respError(pl))
				return
			}
			if seq == 0 {
				continue
			}
			for {
				cur := p.acked.Load()
				if seq <= cur || p.acked.CompareAndSwap(cur, seq) {
					break
				}
			}
			n.noteAck()
		}
	}()
	defer func() {
		conn.Close()
		<-ackDone
	}()

	// Subscribe BEFORE snapshotting device extents: anything written after
	// the snapshot is covered twice (suffix copy + stream frame) and the
	// follower's apply is idempotent; subscribing after would leave a gap.
	sub, base := n.stream.subscribe()
	defer n.stream.unsubscribe(sub)

	if err := n.catchUp(conn, p, srv, hr.Devs, base); err != nil {
		return fmt.Errorf("catch-up: %w", err)
	}

	// alive is cleared by runSender, not here: a fell-behind restart keeps
	// it set across the reconnect's catch-up.
	p.alive.Store(true)

	for {
		select {
		case f, ok := <-sub.ch:
			if !ok {
				return errFellBehind
			}
			if err := server.WriteFrame(conn, f.op, f.pos, 0, f.payload); err != nil {
				return err
			}
		case err := <-errCh:
			return err
		case <-p.stopCh:
			return nil
		}
	}
}

// catchUp ships everything the follower is missing below the subscription
// base: per-device block suffixes (the checkpoint-bounded "newest state,
// not full history" path — a follower that was briefly down receives only
// what it missed), the current NVRAM tail images, and the session
// duplicate-suppression table. It ends with a ReplBase frame whose ack
// (seq=base) tells the quorum counter the follower is caught up.
func (n *Node) catchUp(conn net.Conn, p *peer, srv *server.Server, theirDevs []wire.ReplDevState, base uint64) error {
	their := make(map[[2]uint32]wire.ReplDevState, len(theirDevs))
	for _, d := range theirDevs {
		their[[2]uint32{d.Shard, d.Dev}] = d
	}
	n.mu.Lock()
	devs := n.devs
	n.mu.Unlock()
	for si, shardDevs := range devs {
		for di, dev := range shardDevs {
			st := their[[2]uint32{uint32(si), uint32(di)}]
			fw := int(st.Written)
			lw := dev.Written()
			diverged := fw > lw
			if !diverged && fw > 0 && st.LastCRC != blockCRC(dev, fw-1) {
				diverged = true
			}
			if diverged {
				// The follower's blocks are not a prefix of ours (it was a
				// leader whose unreplicated writes survived a crash).
				// Write-once media cannot be rewound in place: order a
				// device reset and restream from block zero.
				p.resets.Add(1)
				n.logf("cluster: replica %s shard %d dev %d diverged (%d blocks vs our %d); resetting",
					p.addr, si, di, fw, lw)
				rst := (&wire.ReplReset{Shard: uint32(si), Dev: uint32(di)}).Encode(nil)
				if err := server.WriteFrame(conn, wire.OpReplReset, 0, 0, rst); err != nil {
					return err
				}
				fw = 0
			}
			buf := make([]byte, dev.BlockSize())
			for idx := fw; idx < lw; idx++ {
				err := dev.ReadBlock(idx, buf)
				switch {
				case errors.Is(err, wodev.ErrInvalidated):
					inv := (&wire.ReplInvalidate{Shard: uint32(si), Dev: uint32(di), Index: uint64(idx)}).Encode(nil)
					if err := server.WriteFrame(conn, wire.OpReplInvalidate, 0, 0, inv); err != nil {
						return err
					}
				case err != nil:
					return fmt.Errorf("shard %d dev %d block %d: %w", si, di, idx, err)
				default:
					w := (&wire.ReplWrite{Shard: uint32(si), Dev: uint32(di), Index: uint64(idx), Data: buf}).Encode(nil)
					if err := server.WriteFrame(conn, wire.OpReplWrite, 0, 0, w); err != nil {
						return err
					}
				}
				p.catchupBlocks.Add(1)
			}
		}
	}
	for si, nv := range n.cfg.NVRAMs {
		g, img, err := nv.Load()
		if err != nil {
			return fmt.Errorf("shard %d nvram: %w", si, err)
		}
		var op byte
		var pl []byte
		if len(img) > 0 {
			op = wire.OpReplTail
			pl = (&wire.ReplTail{Shard: uint32(si), Global: uint64(g), Image: img}).Encode(nil)
		} else {
			op = wire.OpReplTailClear
			pl = (&wire.ReplTailClear{Shard: uint32(si)}).Encode(nil)
		}
		if err := server.WriteFrame(conn, op, 0, 0, pl); err != nil {
			return err
		}
	}
	states := srv.ExportSessions()
	for len(states) > 0 {
		k := min(len(states), sessionChunk)
		rs := &wire.ReplSessions{Sessions: make([]wire.ReplSession, 0, k)}
		for _, s := range states[:k] {
			ws := wire.ReplSession{ID: s.ID, MaxSeq: s.MaxSeq}
			for _, r := range s.Resps {
				ws.Resps = append(ws.Resps, wire.ReplResp{Seq: r.Seq, Status: r.Status, Resp: r.Resp})
			}
			rs.Sessions = append(rs.Sessions, ws)
		}
		states = states[k:]
		if err := server.WriteFrame(conn, wire.OpReplSessions, 0, 0, rs.Encode(nil)); err != nil {
			return err
		}
	}
	return server.WriteFrame(conn, wire.OpReplBase, base, 0, (&wire.ReplBase{Pos: base}).Encode(nil))
}

// addrSeed derives a per-peer jitter seed (FNV-1a) so sender backoffs
// spread without needing a randomness source.
func addrSeed(addr string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(addr); i++ {
		h ^= uint64(addr[i])
		h *= 1099511628211
	}
	return int64(h)
}
