package stream

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"clio/internal/core"
	"clio/internal/obs"
	"clio/internal/wodev"
)

func newSvc(t *testing.T) *core.Service {
	t.Helper()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 16})
	svc, err := core.New(dev, core.Options{BlockSize: 512, Degree: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

func mustCreate(t *testing.T, svc *core.Service, path string) uint16 {
	t.Helper()
	id, err := svc.CreateLog(path, 0o644, "t")
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func mustAppend(t *testing.T, svc *core.Service, id uint16, data string) {
	t.Helper()
	if _, err := svc.Append(id, []byte(data), core.AppendOptions{Forced: true, Timestamped: true}); err != nil {
		t.Fatal(err)
	}
}

func recvOne(t *testing.T, sub *Sub) *core.Entry {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	e, err := sub.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	return e
}

// TestSubscribeReceivesLiveAppends is the core tentpole contract: a
// subscription opened at the current end blocks without polling and receives
// entries as group commit publishes them.
func TestSubscribeReceivesLiveAppends(t *testing.T) {
	svc := newSvc(t)
	id := mustCreate(t, svc, "/feed")
	mustAppend(t, svc, id, "old")

	sub, err := Open("/feed", Options{}, Leg{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// Nothing is pending: Recv blocks until an append.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	if _, err := sub.Recv(ctx); err != context.DeadlineExceeded {
		cancel()
		t.Fatalf("Recv before publish: %v", err)
	}
	cancel()

	for i := 0; i < 5; i++ {
		mustAppend(t, svc, id, fmt.Sprintf("live-%d", i))
	}
	for i := 0; i < 5; i++ {
		e := recvOne(t, sub)
		if want := fmt.Sprintf("live-%d", i); string(e.Data) != want {
			t.Fatalf("entry %d: %q, want %q", i, e.Data, want)
		}
	}
}

func TestFromStartDeliversHistoryThenLive(t *testing.T) {
	svc := newSvc(t)
	id := mustCreate(t, svc, "/feed")
	mustAppend(t, svc, id, "h0")
	mustAppend(t, svc, id, "h1")

	sub, err := Open("/feed", Options{FromStart: true}, Leg{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if e := recvOne(t, sub); string(e.Data) != "h0" {
		t.Fatalf("history 0: %q", e.Data)
	}
	if e := recvOne(t, sub); string(e.Data) != "h1" {
		t.Fatalf("history 1: %q", e.Data)
	}
	mustAppend(t, svc, id, "l0")
	if e := recvOne(t, sub); string(e.Data) != "l0" {
		t.Fatalf("live after history: %q", e.Data)
	}
}

func TestResumeFromPosition(t *testing.T) {
	svc := newSvc(t)
	id := mustCreate(t, svc, "/feed")
	for i := 0; i < 6; i++ {
		mustAppend(t, svc, id, fmt.Sprintf("e%d", i))
	}
	sub, err := Open("/feed", Options{FromStart: true}, Leg{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	e := recvOne(t, sub)
	e = recvOne(t, sub) // stop after e1
	sub.Close()

	resumed, err := Open("/feed", Options{
		From: []Pos{{Shard: 0, Block: e.Block, Rec: e.Index + 1}},
	}, Leg{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	for i := 2; i < 6; i++ {
		got := recvOne(t, resumed)
		if want := fmt.Sprintf("e%d", i); string(got.Data) != want {
			t.Fatalf("resumed entry: %q, want %q", got.Data, want)
		}
	}
}

// TestSlowConsumerCatchUpNoGapsNoDuplicates overflows a tiny subscriber
// buffer under concurrent forced appends, lets the consumer drain at its own
// pace, and verifies every entry arrives exactly once, in order — the
// overflow → catch-up → resume path.
func TestSlowConsumerCatchUpNoGapsNoDuplicates(t *testing.T) {
	const total = 400
	svc := newSvc(t)
	id := mustCreate(t, svc, "/firehose")

	sub, err := Open("/firehose", Options{Buffer: 4}, Leg{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			if _, err := svc.Append(id, []byte(fmt.Sprintf("%06d", i)),
				core.AppendOptions{Forced: true}); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()

	for i := 0; i < total; i++ {
		if i%50 == 0 {
			time.Sleep(2 * time.Millisecond) // fall behind periodically
		}
		e := recvOne(t, sub)
		if want := fmt.Sprintf("%06d", i); string(e.Data) != want {
			t.Fatalf("entry %d: %q (gap or duplicate)", i, e.Data)
		}
	}
	wg.Wait()

	st := sub.Stats()
	if st.Delivered != total {
		t.Errorf("delivered %d, want %d", st.Delivered, total)
	}
	if st.CatchUps == 0 {
		t.Error("buffer of 4 under a 400-entry firehose never overflowed; catch-up path untested")
	}
	// Back at the live edge after draining everything.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := sub.Recv(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Recv after drain: %v", err)
	}
}

// TestWakeToDeliverLatency checks the no-polling claim quantitatively: the
// time from group-commit publish to the entry landing in the subscriber
// buffer must be far below any polling interval (the pre-streaming tail
// command polled at 500ms).
func TestWakeToDeliverLatency(t *testing.T) {
	svc := newSvc(t)
	id := mustCreate(t, svc, "/lat")
	met := RegisterMetrics(obs.NewRegistry())
	sub, err := Open("/lat", Options{Metrics: met}, Leg{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const rounds = 50
	for i := 0; i < rounds; i++ {
		mustAppend(t, svc, id, "tick")
		recvOne(t, sub)
		// Let the pump park again so the next append is a genuine wake.
		time.Sleep(200 * time.Microsecond)
	}
	mean := met.WakeToDeliverMean()
	if mean == 0 {
		t.Fatal("no wake-to-deliver samples recorded")
	}
	if mean > 50*time.Millisecond {
		t.Errorf("mean wake-to-deliver %v; expected well under any polling interval", mean)
	}
	t.Logf("wake-to-deliver mean over %d wakes: %v", met.wakeToDeliver.Count(), mean)
}

func TestRecvAfterCloseAndServiceClose(t *testing.T) {
	svc := newSvc(t)
	mustCreate(t, svc, "/x")
	sub, err := Open("/x", Options{}, Leg{Svc: svc})
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := sub.Recv(ctx); err != ErrClosed {
		t.Fatalf("Recv after Close: %v", err)
	}

	// A subscription over a service that closes underneath ends rather than
	// hanging.
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	svc2, err := core.New(dev, core.Options{BlockSize: 512, Degree: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc2.CreateLog("/y", 0, ""); err != nil {
		t.Fatal(err)
	}
	sub2, err := Open("/y", Options{}, Leg{Svc: svc2})
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, err := sub2.Recv(ctx)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the pump park
	svc2.Close()
	if err := <-done; err == nil || err == context.DeadlineExceeded {
		t.Fatalf("Recv over closed service: %v", err)
	}
}
