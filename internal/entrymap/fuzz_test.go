package entrymap

import "testing"

// FuzzDecode hardens the entrymap entry decoder: no panics, and accepted
// entries round-trip.
func FuzzDecode(f *testing.F) {
	e := &Entry{Level: 2, Boundary: 512, N: 16, Maps: []IDMap{{ID: 4, Bits: make([]byte, 2)}}}
	f.Add(e.Encode(nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Decode(e.Encode(nil))
		if err != nil {
			t.Fatalf("accepted entry does not round-trip: %v", err)
		}
		if re.Level != e.Level || re.Boundary != e.Boundary || len(re.Maps) != len(e.Maps) {
			t.Fatal("round-trip mismatch")
		}
	})
}
