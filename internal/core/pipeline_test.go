package core

// Failure tests for the pipelined seal path (pipeline.go). The pipeline
// overlaps the device write for batch N with NVRAM staging for batch N+1,
// so the dangerous crash windows are (a) the sealer dying mid device write
// while later batches are already staged and acked, and (b) dying after
// the device write but before the staged image's DropSealed. Both must
// recover every acknowledged entry exactly once from staging NVRAM.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"clio/internal/faults"
	"clio/internal/wodev"
)

// TestCrashMidPipelineRecovery crashes the background sealer's device write
// (the core.seal.write fault point) while concurrent forced appends keep
// staging successor batches into NVRAM — the pipeline's overlap window. The
// acked entries then live in three places at once: sealed device blocks,
// staged seal images awaiting their device write, and the staged tail.
// Reopening over the same NVRAM must recover all of them exactly once.
//
// The crash lands while earlier seals are in flight, so at least one staged
// image must be replayed; the test retries the storm until a run proves the
// overlap (two or more staged seals pending at the crash).
func TestCrashMidPipelineRecovery(t *testing.T) {
	overlapSeen := false
	for attempt := 0; attempt < 6 && !overlapSeen; attempt++ {
		staged := crashMidPipelineOnce(t)
		if staged >= 2 {
			overlapSeen = true
		}
		t.Logf("attempt %d: %d staged seals replayed", attempt, staged)
	}
	if !overlapSeen {
		t.Error("no run crashed with >=2 staged seals in flight; pipeline overlap never exercised")
	}
}

// crashMidPipelineOnce runs one storm-crash-recover cycle and returns how
// many staged seal images recovery replayed. Acked-entry loss fails the
// test immediately.
func crashMidPipelineOnce(t *testing.T) int {
	t.Helper()
	const goroutines = 8
	// Slow device writes keep the sealer busy so the pipe fills; small
	// blocks make seals frequent.
	dev := latentMem(256, 300*time.Microsecond)
	nv := NewMemNVRAM()
	reg := faults.NewRegistry()
	svc, err := New(dev, Options{BlockSize: 256, Degree: 16, CacheBlocks: -1,
		Now: lockedNow(), NVRAM: nv, Faults: reg})
	if err != nil {
		t.Fatal(err)
	}
	id, err := svc.CreateLog("/pipe", 0, "")
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	acked := make(map[string]int64)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				payload := fmt.Sprintf("g%02d-i%04d-pipeline-filler", g, i)
				ts, err := svc.Append(id, []byte(payload), AppendOptions{Forced: true})
				if err == nil || IsDegraded(err) {
					mu.Lock()
					acked[payload] = ts
					mu.Unlock()
					continue
				}
				// After the sealer crash the service is closed; appenders see
				// ErrClosed or the absorbed crash error. Either way the append
				// was not acked and makes no durability claim.
				return
			}
		}(g)
	}

	// Let the pipe saturate, then crash the next head device write.
	time.Sleep(15 * time.Millisecond)
	reg.EnableCrash(FaultSealWrite, 1)
	wg.Wait()
	if reg.Fired(FaultSealWrite) != 1 {
		t.Fatalf("crash point fired %d times, want 1", reg.Fired(FaultSealWrite))
	}
	if len(acked) == 0 {
		t.Fatal("no appends were acknowledged before the crash")
	}

	// Reopen over the same device AND the same NVRAM: staged seals and the
	// staged tail are what recovery has to replay.
	svc2, err := Open([]wodev.Device{dev}, Options{BlockSize: 256, Degree: 16,
		CacheBlocks: -1, Now: lockedNow(), NVRAM: nv})
	if err != nil {
		t.Fatalf("reopen after pipeline crash: %v", err)
	}
	defer svc2.Close()
	got := readAllEntries(t, svc2, "/pipe")
	for payload, ts := range acked {
		n, ok := got[payload]
		if !ok {
			t.Errorf("acked entry %q (ts %d) lost across pipeline crash", payload, ts)
		} else if n != 1 {
			t.Errorf("entry %q recovered %d times, want exactly once", payload, n)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	return svc2.LastRecovery().StagedSeals
}

// TestStagedSealAlreadyOnDeviceIdempotentReplay simulates a crash in the
// narrowest pipeline window: after a seal's device write completed but
// before its staged image was dropped from NVRAM (completeHeadLocked runs
// DropSealed last, so this window is real). Recovery then finds a staged
// image whose block is already on the write-once device and must recognize
// it instead of appending a duplicate block.
func TestStagedSealAlreadyOnDeviceIdempotentReplay(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	nv := NewMemNVRAM()
	svc, err := New(dev, Options{BlockSize: 256, Degree: 16, CacheBlocks: -1,
		Now: lockedNow(), NVRAM: nv})
	if err != nil {
		t.Fatal(err)
	}
	id, err := svc.CreateLog("/stale", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := svc.Append(id, []byte(fmt.Sprintf("entry-%02d-padding-padding", i)),
			AppendOptions{Forced: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.SealTail(); err != nil {
		t.Fatal(err)
	}
	end := svc.End() // tail sealed and pipeline drained: all blocks on device
	if end < 2 {
		t.Fatalf("only %d sealed blocks; payloads too small to seal", end)
	}
	last := end - 1
	img, err := svc.readBlock(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash" after the device write, before DropSealed: the staged image
	// for the last sealed block is still in NVRAM at reopen.
	if err := nv.StoreSealed(last, img); err != nil {
		t.Fatal(err)
	}
	svc2, err := Open([]wodev.Device{dev}, Options{BlockSize: 256, Degree: 16,
		CacheBlocks: -1, Now: lockedNow(), NVRAM: nv})
	if err != nil {
		t.Fatalf("reopen with stale staged seal: %v", err)
	}
	defer svc2.Close()
	if got := svc2.LastRecovery().StagedSeals; got != 1 {
		t.Errorf("StagedSeals = %d, want 1 (the stale image, recognized)", got)
	}
	if svc2.End() != end {
		t.Errorf("end after replay = %d, want %d (stale image must not re-append)", svc2.End(), end)
	}
	got := readAllEntries(t, svc2, "/stale")
	for i := 0; i < 12; i++ {
		payload := fmt.Sprintf("entry-%02d-padding-padding", i)
		if got[payload] != 1 {
			t.Errorf("entry %q present %d times, want exactly once", payload, got[payload])
		}
	}
	// And the staged slot must be gone: a second reopen replays nothing.
	if gs, _, err := nv.LoadSealed(); err != nil || len(gs) != 0 {
		t.Errorf("staged seals after replay = %v (err %v), want none", gs, err)
	}
}

// TestPipelineStatsAndReset pins the new adaptivity observability: the
// in-flight gauges (InflightSeals, StagedBytes) reflect live pipeline
// state, the cumulative counters (PipelinedSeals, AdaptiveWaits, batch
// histogram) accumulate, and ResetCounters zeroes the cumulative fields
// without disturbing the gauges' live meaning.
func TestPipelineStatsAndReset(t *testing.T) {
	// 5ms device writes: after two quick seals the sealer is still writing
	// the first block, so the second is deterministically in flight.
	dev := latentMem(256, 5*time.Millisecond)
	nv := NewMemNVRAM()
	svc, err := New(dev, Options{BlockSize: 256, Degree: 16, CacheBlocks: -1,
		Now: lockedNow(), NVRAM: nv})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	id, err := svc.CreateLog("/stats", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100) // ~2 entries per 256-byte block
	for i := 0; i < 6; i++ {
		if _, err := svc.Append(id, payload, AppendOptions{Forced: true}); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.InflightSeals < 1 {
		t.Errorf("InflightSeals = %d, want >= 1 while the sealer is mid-write", st.InflightSeals)
	}
	if st.StagedBytes < 256 {
		t.Errorf("StagedBytes = %d, want >= one block image", st.StagedBytes)
	}

	if err := svc.SealTail(); err != nil {
		t.Fatal(err)
	}
	st = svc.Stats()
	if st.InflightSeals != 0 || st.StagedBytes != 0 {
		t.Errorf("after drain: InflightSeals=%d StagedBytes=%d, want 0/0", st.InflightSeals, st.StagedBytes)
	}
	if st.PipelinedSeals == 0 {
		t.Error("PipelinedSeals = 0 after pipelined seals completed")
	}
	if st.ForcedWrites != 6 {
		t.Errorf("ForcedWrites = %d, want 6", st.ForcedWrites)
	}
	var batches int64
	for _, v := range svc.BatchSizeHistogram() {
		batches += v
	}
	if batches == 0 {
		t.Error("batch-size histogram empty after forced commits")
	}

	svc.ResetCounters()
	st = svc.Stats()
	if st.PipelinedSeals != 0 || st.AdaptiveWaits != 0 || st.GroupCommits != 0 ||
		st.BatchedForces != 0 || st.ForcedWrites != 0 || st.BlocksSealed != 0 {
		t.Errorf("cumulative stats survived ResetCounters: %+v", st)
	}
	if st.InflightSeals != 0 || st.StagedBytes != 0 {
		t.Errorf("gauges wrong after reset with drained pipe: InflightSeals=%d StagedBytes=%d",
			st.InflightSeals, st.StagedBytes)
	}
	for i, v := range svc.BatchSizeHistogram() {
		if v != 0 {
			t.Errorf("batch histogram bucket %d = %d after ResetCounters", i, v)
		}
	}
}
