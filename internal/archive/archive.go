// Package archive implements incremental backup of a volume sequence —
// operationalizing the paper's §1 observation that conventional "backup
// procedures involve copying whole files, which is particularly inefficient
// ... for large log files, since only the tail end of the file will have
// changed since the last backup." A log volume is append-only, so a backup
// only ever copies the blocks written since the previous run; everything
// earlier is immutable and already archived.
//
// The archive directory holds one file per volume (its raw block image,
// growing monotonically) plus a manifest recording how many blocks of each
// volume have been captured. Restore materializes write-once devices (or
// volume files) from the archive.
package archive

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"clio/internal/volume"
	"clio/internal/wodev"
)

// ErrNotArchive indicates a directory without a manifest.
var ErrNotArchive = errors.New("archive: not an archive directory")

const manifestName = "MANIFEST"

// Result reports one backup run.
type Result struct {
	// VolumesSeen is the number of volumes examined.
	VolumesSeen int
	// BlocksCopied is the number of blocks copied this run — the increment.
	BlocksCopied int
	// BlocksSkipped is the number of already-archived blocks not re-read.
	BlocksSkipped int
}

// volState records one volume's archived extent and geometry.
type volState struct {
	blocks   int // blocks archived
	capacity int // device capacity, needed to restore global offsets
}

// manifest maps volume index → archived state.
type manifest map[uint32]volState

func loadManifest(dir string) (manifest, error) {
	m := manifest{}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return m, nil
	}
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var idx uint32
		var blocks, capacity int
		if _, err := fmt.Sscanf(line, "%d %d %d", &idx, &blocks, &capacity); err != nil {
			return nil, fmt.Errorf("archive: bad manifest line %q", line)
		}
		m[idx] = volState{blocks: blocks, capacity: capacity}
	}
	return m, nil
}

func (m manifest) save(dir string) error {
	var sb strings.Builder
	idxs := make([]int, 0, len(m))
	for idx := range m {
		idxs = append(idxs, int(idx))
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		st := m[uint32(idx)]
		fmt.Fprintf(&sb, "%d %d %d\n", idx, st.blocks, st.capacity)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, []byte(sb.String()), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, manifestName))
}

func volFile(dir string, idx uint32) string {
	return filepath.Join(dir, "arch-"+strconv.FormatUint(uint64(idx), 10)+".vol")
}

// Backup copies every block not yet archived from the mounted volumes into
// dir (created if needed). Devices may be any subset of the sequence;
// volumes already fully archived cost one manifest lookup and no device
// reads.
func Backup(devs []wodev.Device, dir string) (*Result, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	man, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for _, dev := range devs {
		hdr, err := volume.ReadHeader(dev)
		if err != nil {
			return nil, err
		}
		res.VolumesSeen++
		written, err := wodev.FindEnd(dev)
		if err != nil {
			return nil, err
		}
		have := man[hdr.Index].blocks
		res.BlocksSkipped += have
		if written <= have {
			continue
		}
		f, err := os.OpenFile(volFile(dir, hdr.Index), os.O_WRONLY|os.O_CREATE, 0o644)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, dev.BlockSize())
		ones := make([]byte, dev.BlockSize())
		for i := range ones {
			ones[i] = 0xFF
		}
		for b := have; b < written; b++ {
			rerr := dev.ReadBlock(b, buf)
			src := buf
			switch {
			case rerr == nil:
			case errors.Is(rerr, wodev.ErrInvalidated):
				src = ones
			default:
				f.Close()
				return nil, fmt.Errorf("archive: volume %d block %d: %w", hdr.Index, b, rerr)
			}
			if _, err := f.WriteAt(src, int64(b)*int64(dev.BlockSize())); err != nil {
				f.Close()
				return nil, err
			}
			res.BlocksCopied++
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		man[hdr.Index] = volState{blocks: written, capacity: dev.Capacity()}
	}
	if err := man.save(dir); err != nil {
		return nil, err
	}
	return res, nil
}

// Restore materializes in-memory write-once devices from the archive, in
// volume-index order, ready to pass to core.Open. Each device is restored
// with its original capacity — the successor volumes' global offsets depend
// on it.
func Restore(dir string) ([]wodev.Device, error) {
	man, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	if len(man) == 0 {
		return nil, ErrNotArchive
	}
	idxs := make([]int, 0, len(man))
	for idx := range man {
		idxs = append(idxs, int(idx))
	}
	sort.Ints(idxs)
	var out []wodev.Device
	for _, idx := range idxs {
		data, err := os.ReadFile(volFile(dir, uint32(idx)))
		if err != nil {
			return nil, err
		}
		st := man[uint32(idx)]
		blocks := st.blocks
		if blocks == 0 {
			continue
		}
		blockSize := len(data) / blocks
		if blockSize == 0 || len(data)%blocks != 0 {
			return nil, fmt.Errorf("archive: volume %d image inconsistent (%d bytes, %d blocks)", idx, len(data), blocks)
		}
		dev := wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: st.capacity})
		for b := 0; b < blocks; b++ {
			img := data[b*blockSize : (b+1)*blockSize]
			if allOnes(img) {
				if err := dev.Invalidate(b); err != nil {
					return nil, err
				}
				continue
			}
			if _, err := dev.AppendBlock(img); err != nil {
				return nil, fmt.Errorf("archive: restore volume %d block %d: %w", idx, b, err)
			}
		}
		out = append(out, dev)
	}
	return out, nil
}

func allOnes(b []byte) bool {
	for _, c := range b {
		if c != 0xFF {
			return false
		}
	}
	return true
}
