// Package logapi defines the uniform client interface to a log service —
// the paper's point that log files are "accessed and managed using the same
// I/O and utility routines that are used to access and manage conventional
// files" (§2), regardless of whether the service is in-process or across
// the network.
//
// The history-based applications (internal/histfs, internal/mailstore,
// internal/atomicfs) are written against Store, so the same application
// code runs over a local core.Service or a network client.Client — the
// paper's deployment, where "application programs and subsystems use log
// services" through IPC.
package logapi

import (
	"context"

	"clio/internal/client"
	"clio/internal/core"
)

// AppendOptions mirrors the service-side append options.
type AppendOptions struct {
	// Timestamped selects the full header form.
	Timestamped bool
	// Forced makes the write synchronous (durable on return).
	Forced bool
}

// Entry is one log entry.
type Entry struct {
	LogID       uint16
	Timestamp   int64
	Timestamped bool
	Forced      bool
	Data        []byte
	Block       int
	Index       int
	// ExtraIDs lists additional member log files (§2.1).
	ExtraIDs []uint16
}

// MemberOf reports whether the entry belongs to the given log file,
// considering multi-membership.
func (e *Entry) MemberOf(id uint16) bool {
	if e.LogID == id {
		return true
	}
	for _, ex := range e.ExtraIDs {
		if ex == id {
			return true
		}
	}
	return false
}

// Cursor iterates a log file.
type Cursor interface {
	// Next returns the next entry, or io.EOF at the end.
	Next() (*Entry, error)
	// Prev returns the previous entry, or io.EOF at the beginning.
	Prev() (*Entry, error)
	// SeekStart positions before the first entry.
	SeekStart() error
	// SeekEnd positions after the last entry.
	SeekEnd() error
	// SeekTime positions so Next returns the first entry at/after ts.
	SeekTime(ts int64) error
	// Close releases the cursor.
	Close() error
}

// Store is the log-service surface the applications need.
type Store interface {
	// CreateLog creates a log file at an absolute path (a sublog of its
	// parent).
	CreateLog(path string, perms uint16, owner string) (uint16, error)
	// Resolve maps a path to a log-file id.
	Resolve(path string) (uint16, error)
	// List returns the sublog names beneath a path.
	List(path string) ([]string, error)
	// Append writes one entry and returns its server timestamp.
	Append(id uint16, data []byte, opts AppendOptions) (int64, error)
	// OpenCursor opens a cursor at the start of the log file at path.
	OpenCursor(path string) (Cursor, error)
}

// MultiStore is implemented by stores that support multi-membership
// appends (§2.1): one entry belonging to several log files. Both adapters
// in this package implement it.
type MultiStore interface {
	Store
	// AppendMulti writes one entry into every listed log file; ids[0] is
	// the primary member.
	AppendMulti(ids []uint16, data []byte, opts AppendOptions) (int64, error)
}

// FromService adapts an in-process core.Service.
func FromService(svc *core.Service) Store { return serviceStore{svc} }

type serviceStore struct{ svc *core.Service }

func (s serviceStore) CreateLog(path string, perms uint16, owner string) (uint16, error) {
	return s.svc.CreateLog(path, perms, owner)
}

func (s serviceStore) Resolve(path string) (uint16, error) { return s.svc.Resolve(path) }

func (s serviceStore) List(path string) ([]string, error) { return s.svc.List(path) }

func (s serviceStore) Append(id uint16, data []byte, opts AppendOptions) (int64, error) {
	return s.svc.Append(id, data, core.AppendOptions{
		Timestamped: opts.Timestamped, Forced: opts.Forced,
	})
}

func (s serviceStore) AppendMulti(ids []uint16, data []byte, opts AppendOptions) (int64, error) {
	return s.svc.AppendMulti(ids, data, core.AppendOptions{
		Timestamped: opts.Timestamped, Forced: opts.Forced,
	})
}

func (s serviceStore) OpenCursor(path string) (Cursor, error) {
	cur, err := s.svc.OpenCursor(path)
	if err != nil {
		return nil, err
	}
	return serviceCursor{cur}, nil
}

type serviceCursor struct{ cur *core.Cursor }

func (c serviceCursor) Next() (*Entry, error) { return convCore(c.cur.Next()) }
func (c serviceCursor) Prev() (*Entry, error) { return convCore(c.cur.Prev()) }
func (c serviceCursor) SeekStart() error      { c.cur.SeekStart(); return nil }
func (c serviceCursor) SeekEnd() error        { c.cur.SeekEnd(); return nil }
func (c serviceCursor) SeekTime(ts int64) error {
	return c.cur.SeekTime(ts)
}
func (c serviceCursor) Close() error { return nil }

func convCore(e *core.Entry, err error) (*Entry, error) {
	if err != nil {
		return nil, err
	}
	return &Entry{
		LogID:       e.LogID,
		Timestamp:   e.Timestamp,
		Timestamped: e.Timestamped,
		Forced:      e.Forced,
		Data:        e.Data,
		Block:       e.Block,
		Index:       e.Index,
		ExtraIDs:    e.ExtraIDs,
	}, nil
}

// FromClient adapts a network client.Client. The Store interface carries
// no contexts, so the adapter uses context.Background(); callers needing
// deadlines set client.Options.CallTimeout or use the Client directly.
func FromClient(cl *client.Client) Store { return clientStore{cl} }

// Compile-time checks: both adapters support multi-membership.
var (
	_ MultiStore = serviceStore{}
	_ MultiStore = clientStore{}
)

type clientStore struct{ cl *client.Client }

func (s clientStore) CreateLog(path string, perms uint16, owner string) (uint16, error) {
	return s.cl.CreateLog(context.Background(), path, perms, owner)
}

func (s clientStore) Resolve(path string) (uint16, error) {
	return s.cl.Resolve(context.Background(), path)
}

func (s clientStore) List(path string) ([]string, error) {
	return s.cl.List(context.Background(), path)
}

func (s clientStore) Append(id uint16, data []byte, opts AppendOptions) (int64, error) {
	return s.cl.Append(context.Background(), id, data, client.AppendOptions{
		Timestamped: opts.Timestamped, Forced: opts.Forced,
	})
}

func (s clientStore) AppendMulti(ids []uint16, data []byte, opts AppendOptions) (int64, error) {
	return s.cl.AppendMulti(context.Background(), ids, data, client.AppendOptions{
		Timestamped: opts.Timestamped, Forced: opts.Forced,
	})
}

func (s clientStore) OpenCursor(path string) (Cursor, error) {
	cur, err := s.cl.OpenCursor(context.Background(), path)
	if err != nil {
		return nil, err
	}
	return clientCursor{cur}, nil
}

type clientCursor struct{ cur *client.Cursor }

func (c clientCursor) Next() (*Entry, error) { return convClient(c.cur.Next(context.Background())) }
func (c clientCursor) Prev() (*Entry, error) { return convClient(c.cur.Prev(context.Background())) }
func (c clientCursor) SeekStart() error      { return c.cur.SeekStart(context.Background()) }
func (c clientCursor) SeekEnd() error        { return c.cur.SeekEnd(context.Background()) }
func (c clientCursor) SeekTime(ts int64) error {
	return c.cur.SeekTime(context.Background(), ts)
}
func (c clientCursor) Close() error { return c.cur.Close() }

func convClient(e *client.Entry, err error) (*Entry, error) {
	if err != nil {
		return nil, err
	}
	return &Entry{
		LogID:       e.LogID,
		Timestamp:   e.Timestamp,
		Timestamped: e.Timestamped,
		Forced:      e.Forced,
		Data:        e.Data,
		Block:       e.Block,
		Index:       e.Index,
		ExtraIDs:    e.ExtraIDs,
	}, nil
}
