package scrub

import (
	"fmt"
	"testing"

	"clio/internal/core"
	"clio/internal/wodev"
)

func buildMirrored(t *testing.T, entries int) (*wodev.Mirror, *wodev.MemDevice, *wodev.MemDevice) {
	t.Helper()
	a := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 13})
	b := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 13})
	m, err := wodev.NewMirror(a, b)
	if err != nil {
		t.Fatal(err)
	}
	now := int64(0)
	svc, err := core.New(m, core.Options{BlockSize: 256, Degree: 4,
		Now: func() int64 { now += 1000; return now }})
	if err != nil {
		t.Fatal(err)
	}
	id, err := svc.CreateLog("/m", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < entries; i++ {
		if _, err := svc.Append(id, []byte(fmt.Sprintf("entry-%04d", i)), core.AppendOptions{Forced: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	return m, a, b
}

func TestScrubRepairPrefersIntactReplica(t *testing.T) {
	m, a, _ := buildMirrored(t, 120)
	// Silently corrupt a sealed block on the PRIMARY only. The replica's
	// copy is intact, so a validated read masks the damage: scrub must
	// report a clean store and repair must NOT invalidate the block (which
	// would destroy the good copy too).
	bad := a.Written() - 2
	if err := a.Damage(bad, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	rep, err := Volumes([]wodev.Device{m}, Options{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		for _, p := range rep.Problems {
			t.Errorf("mirrored scrub problem: %s", p)
		}
	}
	if rep.Repaired != 0 {
		t.Fatalf("Repaired = %d: repair invalidated a block the replica still serves", rep.Repaired)
	}
	if rep.Damaged != 0 || rep.Readable != rep.Blocks {
		t.Fatalf("damaged=%d readable=%d blocks=%d, want all readable via replica",
			rep.Damaged, rep.Readable, rep.Blocks)
	}
	if m.Failovers() == 0 {
		t.Fatal("scrub never failed over to the replica; test is vacuous")
	}
}

func TestScrubRepairsWhenAllReplicasDamaged(t *testing.T) {
	m, a, b := buildMirrored(t, 120)
	bad := a.Written() - 2
	if err := a.Damage(bad, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	if err := b.Damage(bad, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	rep, err := Volumes([]wodev.Device{m}, Options{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Damaged != 1 || rep.Repaired != 1 {
		t.Fatalf("damaged=%d repaired=%d, want 1/1", rep.Damaged, rep.Repaired)
	}
	// A second scrub sees the block invalidated on the medium, not damaged.
	rep2, err := Volumes([]wodev.Device{m}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Invalidated != 1 || rep2.Damaged != 0 {
		t.Fatalf("after repair: invalidated=%d damaged=%d, want 1/0", rep2.Invalidated, rep2.Damaged)
	}
}
