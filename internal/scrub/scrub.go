// Package scrub verifies the on-media invariants of a Clio volume sequence
// — an fsck for log stores. It walks every readable block and checks:
//
//  1. every block parses (magic, CRC, self-declared index) or is accounted
//     for as invalidated/damaged;
//  2. block first-entry timestamps are non-decreasing in write order
//     (DESIGN.md invariant 6);
//  3. the entrymap is redundant: every written entrymap entry's bitmaps
//     agree exactly with a linear scan of the blocks it covers (invariant
//     2 — "the information in an entrymap log file is redundant");
//  4. fragment chains are well-formed: every Continues record has its
//     continuation as the first same-id continued record of the next
//     readable block, and no orphan continuations exist;
//  5. the catalog replays cleanly and every entry's log-file id is known
//     to the catalog;
//  6. damaged blocks can optionally be invalidated on the medium (§2.3.2's
//     repair action), so future readers skip them cheaply.
//
// Scrubbing reads through the service's public surface plus a raw
// block-level view, and never writes unless Repair is set.
package scrub

import (
	"errors"
	"fmt"
	"sort"

	"clio/internal/blockfmt"
	"clio/internal/catalog"
	"clio/internal/entrymap"
	"clio/internal/obs"
	"clio/internal/volume"
	"clio/internal/wire"
	"clio/internal/wodev"
)

// Options controls a scrub.
type Options struct {
	// Repair invalidates damaged blocks on the medium (§2.3.2). Without
	// it, scrub is read-only.
	Repair bool
	// Registry, when non-nil, receives live scrub progress counters
	// (clio_scrub_blocks_scanned_total, clio_scrub_problems_total,
	// clio_scrub_repairs_total) so a long scrub can be watched from the
	// admin endpoint while it runs.
	Registry *obs.Registry
}

// Problem is one detected inconsistency.
type Problem struct {
	// Block is the global data-block index, or -1 for volume-level issues.
	Block int
	// Kind is a stable short code (bad-block, ts-order, entrymap-mismatch,
	// torn-chain, orphan-fragment, unknown-id, catalog).
	Kind string
	// Detail is a human-readable explanation.
	Detail string
}

// String renders the problem for reports.
func (p Problem) String() string {
	if p.Block < 0 {
		return fmt.Sprintf("%s: %s", p.Kind, p.Detail)
	}
	return fmt.Sprintf("block %d: %s: %s", p.Block, p.Kind, p.Detail)
}

// Report is a scrub's outcome.
type Report struct {
	// Blocks is the number of data blocks in the written portion.
	Blocks int
	// Readable counts blocks that parsed.
	Readable int
	// Invalidated counts blocks already invalidated on the medium.
	Invalidated int
	// Damaged counts unreadable (garbage) blocks.
	Damaged int
	// Repaired counts damaged blocks invalidated by this scrub.
	Repaired int
	// Entries counts parsed records (fragments).
	Entries int
	// EntrymapEntries counts verified entrymap entries.
	EntrymapEntries int
	// CatalogRecords counts replayed catalog records.
	CatalogRecords int
	// Usage reports per-log-file space accounting (entries and client data
	// bytes), keyed by path — the admin view of §3.5's space analysis.
	Usage []LogUsage
	// OpenTailChains lists log-file ids whose final fragment chain runs off
	// the written end of the medium. This is informational, not a problem:
	// with an NVRAM tail (§2.3.1) the continuation is staged in rewriteable
	// storage and completes when the tail block seals; only if the NVRAM is
	// also lost does the chain become torn (and readers then skip it).
	OpenTailChains []uint16
	// Problems lists everything found.
	Problems []Problem

	// onProblem, when set, observes each problem as it is recorded — the
	// live-progress feed for Options.Registry.
	onProblem func()
}

// LogUsage is one log file's space accounting.
type LogUsage struct {
	ID      uint16
	Path    string
	Entries int   // chain starts (whole entries)
	Bytes   int64 // client data bytes (including fragments)
}

// Clean reports whether no problems were found.
func (r *Report) Clean() bool { return len(r.Problems) == 0 }

func (r *Report) add(block int, kind, format string, args ...any) {
	r.Problems = append(r.Problems, Problem{
		Block:  block,
		Kind:   kind,
		Detail: fmt.Sprintf(format, args...),
	})
	if r.onProblem != nil {
		r.onProblem()
	}
}

// Volumes scrubs a volume sequence given its mounted devices (any order).
func Volumes(devs []wodev.Device, opt Options) (*Report, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("scrub: no devices")
	}
	var vols []*volume.Volume
	for i, dev := range devs {
		v, err := volume.Mount(dev, i)
		if err != nil {
			return nil, fmt.Errorf("scrub: device %d: %w", i, err)
		}
		vols = append(vols, v)
	}
	set := volume.NewSet(vols[0].Hdr.Seq)
	for _, v := range vols {
		if err := set.Add(v); err != nil {
			return nil, err
		}
	}
	end, err := set.GlobalEnd()
	if err != nil {
		return nil, err
	}
	s := &scrubber{set: set, opt: opt, report: &Report{Blocks: end}}
	if reg := opt.Registry; reg != nil {
		s.scanned = reg.Counter("clio_scrub_blocks_scanned_total",
			"Blocks examined by the scrub's readability pass.")
		s.repaired = reg.Counter("clio_scrub_repairs_total",
			"Damaged blocks invalidated by the scrub.")
		s.report.onProblem = reg.Counter("clio_scrub_problems_total",
			"Inconsistencies recorded by the scrub.").Inc
	}
	if err := s.run(end); err != nil {
		return nil, err
	}
	return s.report, nil
}

type scrubber struct {
	set    *volume.Set
	opt    Options
	report *Report

	// scanned and repaired feed Options.Registry; nil-safe no-ops otherwise.
	scanned  *obs.Counter
	repaired *obs.Counter

	// parsed caches decoded blocks; nil entries are unreadable.
	parsed map[int]*blockfmt.Parsed
}

// readBlock reads one device block, preferring a validated (mirror-aware)
// read when the device offers one: on a mirrored pair an intact replica
// then masks a damaged primary, and repair must NOT invalidate the block —
// doing so would destroy the good copy too.
func readBlock(v *volume.Volume, local int, buf []byte) error {
	if m, ok := v.Dev.(interface {
		ReadValidated(int, []byte, func([]byte) bool) error
	}); ok {
		return m.ReadValidated(v.DeviceBlock(local), buf, blockfmt.Validate)
	}
	return v.Dev.ReadBlock(v.DeviceBlock(local), buf)
}

func (s *scrubber) block(g int) *blockfmt.Parsed {
	if p, ok := s.parsed[g]; ok {
		return p
	}
	v, local, err := s.set.Locate(g)
	if err != nil {
		s.parsed[g] = nil
		return nil
	}
	buf := make([]byte, v.Dev.BlockSize())
	if err := readBlock(v, local, buf); err != nil {
		s.parsed[g] = nil
		return nil
	}
	p, err := blockfmt.Parse(buf)
	if err != nil {
		s.parsed[g] = nil
		return nil
	}
	s.parsed[g] = p
	return p
}

func (s *scrubber) run(end int) error {
	s.parsed = make(map[int]*blockfmt.Parsed, end)
	r := s.report

	// Pass 1: readability, timestamps, record accounting, catalog replay.
	cat := catalog.NewTable()
	var lastTS int64
	var emEntries []struct {
		block int
		e     *entrymap.Entry
	}
	for g := 0; g < end; g++ {
		s.scanned.Inc()
		v, local, err := s.set.Locate(g)
		if err != nil {
			r.add(g, "offline", "volume not mounted: %v", err)
			continue
		}
		buf := make([]byte, v.Dev.BlockSize())
		rerr := readBlock(v, local, buf)
		if errors.Is(rerr, wodev.ErrInvalidated) {
			r.Invalidated++
			continue
		}
		if rerr != nil {
			r.Damaged++
			r.add(g, "bad-block", "unreadable: %v", rerr)
			s.maybeRepair(g)
			continue
		}
		p, perr := blockfmt.Parse(buf)
		if perr != nil {
			r.Damaged++
			r.add(g, "bad-block", "parse: %v", perr)
			s.maybeRepair(g)
			continue
		}
		s.parsed[g] = p
		r.Readable++
		r.Entries += len(p.Records)
		if int(p.BlockIndex) != g {
			r.add(g, "bad-block", "footer says block %d", p.BlockIndex)
		}
		if len(p.Records) > 0 {
			if p.FirstTimestamp < lastTS {
				r.add(g, "ts-order", "first timestamp %d before predecessor's %d",
					p.FirstTimestamp, lastTS)
			}
			if p.FirstTimestamp > 0 {
				lastTS = p.FirstTimestamp
			}
		}
		for i, rec := range p.Records {
			if rec.LogID != entrymap.EntrymapID || rec.Continued {
				continue
			}
			data, ok := s.assemble(g, i, p)
			if !ok {
				continue // chain problems reported by pass 3
			}
			e, derr := entrymap.Decode(data)
			if derr != nil {
				r.add(g, "entrymap-mismatch", "undecodable entrymap entry: %v", derr)
				continue
			}
			emEntries = append(emEntries, struct {
				block int
				e     *entrymap.Entry
			}{g, e})
		}
		for i, rec := range p.Records {
			if rec.LogID != entrymap.CatalogID || rec.Continued {
				continue
			}
			data, ok := s.assemble(g, i, p)
			if !ok {
				continue
			}
			crec, derr := catalog.DecodeRecord(data)
			if derr != nil {
				r.add(g, "catalog", "undecodable catalog record: %v", derr)
				continue
			}
			if err := cat.Apply(crec); err != nil {
				r.add(g, "catalog", "replay: %v", err)
				continue
			}
			r.CatalogRecords++
		}
	}

	// Pass 2: every entry's id is known to the catalog, and the entrymap
	// entries' bitmaps match a linear scan.
	known := make(map[uint16]bool)
	for _, id := range cat.IDs() {
		known[id] = true
	}
	occurrences := make(map[uint16][]int) // tracked id -> blocks containing it
	for g := 0; g < end; g++ {
		p := s.parsed[g]
		if p == nil {
			continue
		}
		seen := map[uint16]bool{}
		note := func(id uint16) {
			if !known[id] {
				r.add(g, "unknown-id", "entry for id %d absent from catalog", id)
				known[id] = true // report once
			}
			if id == entrymap.VolumeSeqID || id == entrymap.EntrymapID || seen[id] {
				return
			}
			seen[id] = true
			occurrences[id] = append(occurrences[id], g)
		}
		for _, rec := range p.Records {
			note(rec.LogID)
			for _, ex := range rec.ExtraIDs {
				note(ex)
			}
		}
	}
	for _, em := range emEntries {
		s.checkEntrymap(em.block, em.e, occurrences, end)
		r.EntrymapEntries++
	}

	// Pass 3: fragment chains.
	s.checkChains(end)

	// Pass 4: per-log-file usage accounting.
	usage := map[uint16]*LogUsage{}
	for g := 0; g < end; g++ {
		p := s.parsed[g]
		if p == nil {
			continue
		}
		for _, rec := range p.Records {
			for _, id := range append([]uint16{rec.LogID}, rec.ExtraIDs...) {
				u, ok := usage[id]
				if !ok {
					u = &LogUsage{ID: id}
					usage[id] = u
				}
				u.Bytes += int64(len(rec.Data))
				if !rec.Continued {
					u.Entries++
				}
			}
		}
	}
	ids := make([]int, 0, len(usage))
	for id := range usage {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		u := usage[uint16(id)]
		if path, err := cat.PathOf(uint16(id)); err == nil {
			u.Path = path
		} else {
			u.Path = fmt.Sprintf("#%d", id)
		}
		r.Usage = append(r.Usage, *u)
	}
	return nil
}

// assemble follows a fragment chain, returning ok=false when torn.
func (s *scrubber) assemble(g, idx int, p *blockfmt.Parsed) ([]byte, bool) {
	rec := p.Records[idx]
	if !rec.Continues {
		return rec.Data, true
	}
	out := append([]byte(nil), rec.Data...)
	id := rec.LogID
	for b := g + 1; ; b++ {
		np := s.block(b)
		if np == nil {
			return nil, false
		}
		found := false
		for _, nr := range np.Records {
			if nr.LogID != id || !nr.Continued {
				continue
			}
			out = append(out, nr.Data...)
			found = true
			if !nr.Continues {
				return out, true
			}
			break
		}
		if !found {
			return nil, false
		}
	}
}

// checkEntrymap verifies one entrymap entry against ground truth. Entries
// covering spans with damaged blocks are only checked for the readable
// blocks (a damaged block's contributions are unknowable).
func (s *scrubber) checkEntrymap(atBlock int, e *entrymap.Entry, occ map[uint16][]int, end int) {
	span := 1
	for i := 0; i < e.Level; i++ {
		span *= e.N
	}
	lo := e.Boundary - span
	if lo < 0 {
		s.report.add(atBlock, "entrymap-mismatch", "level-%d entry at boundary %d covers negative span", e.Level, e.Boundary)
		return
	}
	child := span / e.N
	damagedInSpan := false
	for b := lo; b < e.Boundary && b < end; b++ {
		if s.block(b) == nil {
			damagedInSpan = true
			break
		}
	}
	// Ground truth bitmaps per id.
	truth := make(map[uint16]wire.Bitmap)
	for id, blocks := range occ {
		i := sort.SearchInts(blocks, lo)
		for ; i < len(blocks) && blocks[i] < e.Boundary; i++ {
			bm, ok := truth[id]
			if !ok {
				bm = wire.NewBitmap(e.N)
				truth[id] = bm
			}
			bm.Set((blocks[i] - lo) / child)
		}
	}
	// Every declared bitmap must be a superset of the readable truth and,
	// with no damage in the span, exactly equal.
	declared := map[uint16]bool{}
	for _, m := range e.Maps {
		declared[m.ID] = true
		want := truth[m.ID]
		for g := 0; g < e.N; g++ {
			wantBit := want != nil && want.Get(g)
			gotBit := m.Bits.Get(g)
			if wantBit && !gotBit {
				s.report.add(atBlock, "entrymap-mismatch",
					"level-%d@%d: id %d group %d has entries but bit clear", e.Level, e.Boundary, m.ID, g)
			}
			if gotBit && !wantBit && !damagedInSpan {
				s.report.add(atBlock, "entrymap-mismatch",
					"level-%d@%d: id %d group %d bit set but no entries", e.Level, e.Boundary, m.ID, g)
			}
		}
	}
	if !damagedInSpan {
		for id, bm := range truth {
			if !bm.Empty() && !declared[id] {
				s.report.add(atBlock, "entrymap-mismatch",
					"level-%d@%d: id %d present in span but missing from entry", e.Level, e.Boundary, id)
			}
		}
	}
}

// checkChains verifies fragment-chain structure block by block.
func (s *scrubber) checkChains(end int) {
	// A continuation is legal at the start of block b only if some record
	// in a previous readable block continues into it.
	expect := map[uint16]bool{} // ids with an open chain entering the next block
	for g := 0; g < end; g++ {
		p := s.parsed[g]
		if p == nil {
			// Unreadable block: any open chains die here; continuations
			// after it are necessarily orphans but not re-reported.
			expect = map[uint16]bool{}
			continue
		}
		seenCont := map[uint16]bool{}
		for _, rec := range p.Records {
			if rec.Continued {
				if !expect[rec.LogID] || seenCont[rec.LogID] {
					s.report.add(g, "orphan-fragment",
						"continuation for id %d with no open chain", rec.LogID)
				}
				seenCont[rec.LogID] = true
				if !rec.Continues {
					delete(expect, rec.LogID)
				}
				continue
			}
		}
		// Chains that expected a continuation here but found none are torn.
		for id := range expect {
			if !seenCont[id] {
				s.report.add(g, "torn-chain", "id %d chain has no continuation", id)
				delete(expect, id)
			}
		}
		// Open new chains.
		for _, rec := range p.Records {
			if rec.Continues {
				expect[rec.LogID] = true
			}
		}
	}
	for id := range expect {
		s.report.OpenTailChains = append(s.report.OpenTailChains, id)
	}
}

// maybeRepair invalidates a damaged block when Repair is set.
func (s *scrubber) maybeRepair(g int) {
	if !s.opt.Repair {
		return
	}
	v, local, err := s.set.Locate(g)
	if err != nil {
		return
	}
	if err := v.Dev.Invalidate(v.DeviceBlock(local)); err == nil {
		s.report.Repaired++
		s.repaired.Inc()
	}
}
