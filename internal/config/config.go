// Package config is the layered daemon configuration for cliod: a flat
// key=value config file (clio.conf), CLIO_* environment variables, and
// command-line flags merged in that order — flags win over environment, which
// wins over the file, which wins over the built-in defaults.
//
// The paper's log service is a shared departmental server; running it that
// way needs more than flags. A Config carries everything the daemon can be
// told — store geometry, listen addresses, group-commit and compaction knobs,
// cluster membership, drain behavior, and the tenant table with per-tenant
// quotas — and Validate rejects nonsense (negative quotas, a compaction
// live-fraction outside (0,1], cluster flags without peers) before the
// daemon touches the store.
//
// Every value is set through Set(key, value), the single point all three
// layers funnel through, so the file, the environment and the flags cannot
// drift in how they parse a knob. Set records which keys were touched;
// Validate uses that to tell "quorum left at its default" from "quorum
// explicitly set" when checking cluster coherence.
package config

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Tenant is one tenant's declaration: a top-level namespace prefix (log
// files under /<name>), the shared secret its sessions authenticate with,
// and its quotas. A zero quota means unlimited.
type Tenant struct {
	// Name is the tenant's namespace: the top-level path segment its log
	// files live under. It must be a valid path segment (no "/", not
	// empty, no leading dot — dotted roots are reserved system sublogs).
	Name string
	// Token is the shared secret presented in the session handshake.
	Token string
	// MaxLogs bounds how many log files may exist under the tenant's
	// namespace (existing logs are counted at first bind).
	MaxLogs int64
	// MaxBytes bounds the entry bytes the tenant may append over the
	// daemon's lifetime (storage is write-once: appended bytes are the
	// tenant's storage footprint growth).
	MaxBytes int64
	// MaxSessions bounds the tenant's concurrently authenticated
	// connections.
	MaxSessions int64
}

// Config is the merged daemon configuration. Field defaults match the
// long-standing cliod flag defaults; Default() is the canonical source.
type Config struct {
	Store              string
	Listen             string
	Create             bool
	Shards             int
	VolumeBlocks       int
	BlockSize          int
	Sync               bool
	CheckpointInterval int
	Admin              string
	SlowTrace          time.Duration
	Peers              string
	Advertise          string
	Role               string
	Quorum             int
	ForceWindow        time.Duration
	CompactInterval    time.Duration
	CompactMaxLive     float64
	CompactMinHot      int
	// DrainTimeout bounds the graceful SIGTERM drain: how long in-flight
	// requests and group commits may run before connections are forced
	// closed.
	DrainTimeout time.Duration

	// Tenants is the tenant table, keyed by name. Empty means open
	// (single-tenant, unauthenticated) mode.
	Tenants map[string]*Tenant

	// set records which keys Set has touched, across all layers.
	set map[string]bool
}

// DefaultDrainTimeout bounds the graceful drain when none is configured.
const DefaultDrainTimeout = 30 * time.Second

// Default returns the built-in configuration, equal to cliod's historical
// flag defaults.
func Default() *Config {
	return &Config{
		Listen:       ":7846",
		VolumeBlocks: 1 << 20,
		BlockSize:    1024,
		SlowTrace:    100 * time.Millisecond,
		Role:         "leader",
		Quorum:       2,
		DrainTimeout: DefaultDrainTimeout,
		Tenants:      map[string]*Tenant{},
		set:          map[string]bool{},
	}
}

// IsSet reports whether any layer explicitly set key.
func (c *Config) IsSet(key string) bool { return c.set[key] }

// Keys every layer may set, in the spelling of the cliod flags.
var boolKeys = map[string]bool{"create": true, "sync": true}

// Set parses and applies one key. It is the single merge point for the
// file, environment and flag layers.
func (c *Config) Set(key, value string) error {
	fail := func(err error) error {
		return fmt.Errorf("config: %s = %q: %w", key, value, err)
	}
	if name, field, ok := tenantKey(key); ok {
		if err := c.setTenant(name, field, value); err != nil {
			return fail(err)
		}
		c.set[key] = true
		return nil
	}
	var err error
	switch key {
	case "store":
		c.Store = value
	case "listen":
		c.Listen = value
	case "create":
		c.Create, err = parseBool(value)
	case "shards":
		c.Shards, err = strconv.Atoi(value)
	case "volume-blocks":
		c.VolumeBlocks, err = strconv.Atoi(value)
	case "block-size":
		c.BlockSize, err = strconv.Atoi(value)
	case "sync":
		c.Sync, err = parseBool(value)
	case "checkpoint-interval":
		c.CheckpointInterval, err = strconv.Atoi(value)
	case "admin":
		c.Admin = value
	case "slow-trace":
		c.SlowTrace, err = time.ParseDuration(value)
	case "peers":
		c.Peers = value
	case "advertise":
		c.Advertise = value
	case "role":
		c.Role = value
	case "quorum":
		c.Quorum, err = strconv.Atoi(value)
	case "force-window":
		c.ForceWindow, err = time.ParseDuration(value)
	case "compact-interval":
		c.CompactInterval, err = time.ParseDuration(value)
	case "compact-max-live":
		c.CompactMaxLive, err = strconv.ParseFloat(value, 64)
	case "compact-min-hot":
		c.CompactMinHot, err = strconv.Atoi(value)
	case "drain-timeout":
		c.DrainTimeout, err = time.ParseDuration(value)
	default:
		return fmt.Errorf("config: unknown key %q", key)
	}
	if err != nil {
		return fail(err)
	}
	c.set[key] = true
	return nil
}

// parseBool accepts the flag-package spellings.
func parseBool(v string) (bool, error) {
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("not a boolean")
	}
	return b, nil
}

// tenantKey splits "tenant.<name>.<field>" into its parts.
func tenantKey(key string) (name, field string, ok bool) {
	rest, found := strings.CutPrefix(key, "tenant.")
	if !found {
		return "", "", false
	}
	i := strings.LastIndexByte(rest, '.')
	if i <= 0 || i == len(rest)-1 {
		return "", "", false
	}
	return rest[:i], rest[i+1:], true
}

func (c *Config) setTenant(name, field, value string) error {
	if c.Tenants == nil {
		c.Tenants = map[string]*Tenant{}
	}
	t := c.Tenants[name]
	if t == nil {
		t = &Tenant{Name: name}
		c.Tenants[name] = t
	}
	var err error
	switch field {
	case "token":
		t.Token = value
	case "max-logs":
		t.MaxLogs, err = strconv.ParseInt(value, 10, 64)
	case "max-bytes":
		t.MaxBytes, err = strconv.ParseInt(value, 10, 64)
	case "max-sessions":
		t.MaxSessions, err = strconv.ParseInt(value, 10, 64)
	default:
		return fmt.Errorf("unknown tenant field %q", field)
	}
	return err
}

// LoadFile merges a flat key=value file into the config. Blank lines and
// #-comments are ignored; keys are the flag spellings plus
// tenant.<name>.{token,max-logs,max-bytes,max-sessions}.
func (c *Config) LoadFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, value, found := strings.Cut(line, "=")
		if !found {
			return fmt.Errorf("config: %s:%d: not a key=value line: %q", path, i+1, line)
		}
		if err := c.Set(strings.TrimSpace(key), strings.TrimSpace(value)); err != nil {
			return fmt.Errorf("%s:%d: %w", path, i+1, err)
		}
	}
	return nil
}

// EnvPrefix is the environment layer's variable prefix.
const EnvPrefix = "CLIO_"

// envKeys are the keys the environment layer may set: every scalar knob
// (tenant declarations are file- or flag-layer only — secrets in process
// environments leak through /proc and `ps e`).
var envKeys = []string{
	"store", "listen", "create", "shards", "volume-blocks", "block-size",
	"sync", "checkpoint-interval", "admin", "slow-trace", "peers",
	"advertise", "role", "quorum", "force-window", "compact-interval",
	"compact-max-live", "compact-min-hot", "drain-timeout",
}

// EnvVar maps a config key to its environment variable name
// ("volume-blocks" → "CLIO_VOLUME_BLOCKS").
func EnvVar(key string) string {
	return EnvPrefix + strings.ToUpper(strings.ReplaceAll(key, "-", "_"))
}

// ApplyEnv merges CLIO_* environment variables via lookup (os.LookupEnv in
// the daemon; tests inject a map).
func (c *Config) ApplyEnv(lookup func(string) (string, bool)) error {
	for _, key := range envKeys {
		if v, ok := lookup(EnvVar(key)); ok {
			if err := c.Set(key, v); err != nil {
				return err
			}
		}
	}
	return nil
}

// TenantList returns the tenant table as a slice sorted by name, the shape
// the server's SetTenants consumes.
func (c *Config) TenantList() []Tenant {
	out := make([]Tenant, 0, len(c.Tenants))
	for _, t := range c.Tenants {
		out = append(out, *t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Validate rejects configurations that must not reach the store. It returns
// the first problem found.
func (c *Config) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("config: "+format, args...)
	}
	if c.Store == "" {
		return bad("store is required (flag -store, key store, or %s)", EnvVar("store"))
	}
	if c.Shards < 0 {
		return bad("shards %d is negative", c.Shards)
	}
	if c.VolumeBlocks <= 0 {
		return bad("volume-blocks %d must be positive", c.VolumeBlocks)
	}
	if c.BlockSize <= 0 {
		return bad("block-size %d must be positive", c.BlockSize)
	}
	if c.CheckpointInterval < 0 {
		return bad("checkpoint-interval %d is negative", c.CheckpointInterval)
	}
	if c.SlowTrace < 0 {
		return bad("slow-trace %s is negative", c.SlowTrace)
	}
	if c.CompactInterval < 0 {
		return bad("compact-interval %s is negative", c.CompactInterval)
	}
	if c.CompactMaxLive < 0 || c.CompactMaxLive > 1 {
		return bad("compact-max-live %g outside (0,1] (0 = default)", c.CompactMaxLive)
	}
	if c.CompactMinHot < 0 {
		return bad("compact-min-hot %d is negative", c.CompactMinHot)
	}
	if c.DrainTimeout < 0 {
		return bad("drain-timeout %s is negative", c.DrainTimeout)
	}
	if c.Role != "leader" && c.Role != "follower" {
		return bad("role must be leader or follower, not %q", c.Role)
	}
	if c.Peers == "" {
		// Cluster knobs are meaningless without peers; accepting them
		// silently would hide a typo'd -peers from the operator.
		for _, key := range []string{"advertise", "role", "quorum"} {
			if c.IsSet(key) {
				return bad("%s set without peers (cluster mode needs -peers)", key)
			}
		}
	} else {
		if c.Quorum < 1 {
			return bad("quorum %d must be at least 1", c.Quorum)
		}
		if c.CompactInterval > 0 {
			return bad("compact-interval is not supported in cluster mode: the compactor deletes volume files a replica must mirror exactly")
		}
	}
	names := make([]string, 0, len(c.Tenants))
	for name := range c.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := c.Tenants[name]
		switch {
		case name == "" || strings.ContainsAny(name, "/ \t"):
			return bad("tenant name %q is not a path segment", name)
		case strings.HasPrefix(name, "."):
			return bad("tenant name %q collides with reserved system sublogs", name)
		case t.Token == "":
			return bad("tenant %s has no token", name)
		case t.MaxLogs < 0 || t.MaxBytes < 0 || t.MaxSessions < 0:
			return bad("tenant %s has a negative quota (logs %d, bytes %d, sessions %d)",
				name, t.MaxLogs, t.MaxBytes, t.MaxSessions)
		}
	}
	return nil
}

// Reloadable reports whether key may change across a SIGHUP reload without a
// restart. Tenant keys (quotas, tokens, membership) and the knobs the
// daemon consults continuously are reloadable; store geometry, addresses
// and cluster membership are not.
func Reloadable(key string) bool {
	if _, _, ok := tenantKey(key); ok {
		return true
	}
	switch key {
	case "compact-interval", "compact-max-live", "compact-min-hot",
		"slow-trace", "drain-timeout":
		return true
	}
	return false
}

// Diff lists the scalar keys whose values differ between c and other, in
// stable order. Tenant table changes are reported as the single pseudo-key
// "tenants".
func (c *Config) Diff(other *Config) []string {
	var out []string
	add := func(key string, differs bool) {
		if differs {
			out = append(out, key)
		}
	}
	add("store", c.Store != other.Store)
	add("listen", c.Listen != other.Listen)
	add("create", c.Create != other.Create)
	add("shards", c.Shards != other.Shards)
	add("volume-blocks", c.VolumeBlocks != other.VolumeBlocks)
	add("block-size", c.BlockSize != other.BlockSize)
	add("sync", c.Sync != other.Sync)
	add("checkpoint-interval", c.CheckpointInterval != other.CheckpointInterval)
	add("admin", c.Admin != other.Admin)
	add("slow-trace", c.SlowTrace != other.SlowTrace)
	add("peers", c.Peers != other.Peers)
	add("advertise", c.Advertise != other.Advertise)
	add("role", c.Role != other.Role)
	add("quorum", c.Quorum != other.Quorum)
	add("force-window", c.ForceWindow != other.ForceWindow)
	add("compact-interval", c.CompactInterval != other.CompactInterval)
	add("compact-max-live", c.CompactMaxLive != other.CompactMaxLive)
	add("compact-min-hot", c.CompactMinHot != other.CompactMinHot)
	add("drain-timeout", c.DrainTimeout != other.DrainTimeout)
	add("tenants", !tenantsEqual(c.Tenants, other.Tenants))
	return out
}

func tenantsEqual(a, b map[string]*Tenant) bool {
	if len(a) != len(b) {
		return false
	}
	for name, ta := range a {
		tb := b[name]
		if tb == nil || *ta != *tb {
			return false
		}
	}
	return true
}
