// Package catalog implements the catalog log file of §2.2: the log of
// log-file-specific attributes. Per-entry headers carry only a 12-bit local
// log-file id; everything that is an attribute of a log file as a whole —
// its name, access permissions, creation time, its place in the sublog
// hierarchy — is recorded separately in the catalog log file, and every
// change to those attributes is itself logged there.
//
// Access permissions and ownership are recorded and replayed faithfully
// (every change is logged, §2.2) but, as in the paper, enforcement is the
// surrounding system's concern — this package stores attributes, it does
// not authenticate callers.
//
// Replaying the catalog log yields the in-memory Table (the paper's
// "catalog ... of log file specific information (i.e. file descriptors)
// maintained by the server, and derived from the catalog log file"). The
// sublog relationship doubles as the naming hierarchy: "/mail/smith" names
// both a log file and a directory of sublogs (§2.1).
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"clio/internal/wire"
)

// Reserved ids, mirroring internal/entrymap's constants (kept in sync by a
// test) without importing it.
const (
	VolumeSeqID   = 0
	EntrymapID    = 1
	CatalogID     = 2
	BadBlockID    = 3
	FirstClientID = 4
	// CheckpointID holds recovery checkpoint records; it sits at the top
	// of the id space so the client range stays contiguous from
	// FirstClientID.
	CheckpointID = wire.MaxLogID
	// CompactID holds compaction commit records, just below CheckpointID.
	CompactID = wire.MaxLogID - 1
)

// MaxLogID is the top of the 12-bit id space.
const MaxLogID = wire.MaxLogID

// Errors.
var (
	// ErrNotFound indicates an unknown log file id or path.
	ErrNotFound = errors.New("catalog: log file not found")
	// ErrExists indicates a name collision under the same parent.
	ErrExists = errors.New("catalog: log file already exists")
	// ErrBadName indicates an invalid log file name component.
	ErrBadName = errors.New("catalog: invalid name")
	// ErrIDsExhausted indicates the 12-bit id space is exhausted.
	ErrIDsExhausted = errors.New("catalog: log-file id space exhausted")
	// ErrBadRecord indicates an undecodable catalog record.
	ErrBadRecord = errors.New("catalog: malformed record")
	// ErrRetired indicates an operation on a retired log file.
	ErrRetired = errors.New("catalog: log file retired")
	// ErrReserved indicates an operation on a reserved system log file.
	ErrReserved = errors.New("catalog: reserved log file")
)

// Record kinds.
const (
	kindCreate  = 1
	kindSetPerm = 2
	kindRetire  = 3
	kindSetOwn  = 4
)

// Record is one catalog log entry: a create or an attribute change.
type Record struct {
	Kind    uint8
	ID      uint16
	Parent  uint16 // kindCreate
	Perms   uint16 // kindCreate, kindSetPerm
	Created int64  // kindCreate (Unix nanoseconds)
	Name    string // kindCreate
	Owner   string // kindCreate, kindSetOwn
}

// Encode appends the record's wire form to dst.
func (r *Record) Encode(dst []byte) []byte {
	dst = append(dst, r.Kind)
	dst = wire.PutUvarint(dst, uint64(r.ID))
	switch r.Kind {
	case kindCreate:
		dst = wire.PutUvarint(dst, uint64(r.Parent))
		dst = wire.PutUvarint(dst, uint64(r.Perms))
		dst = wire.PutUint64(dst, uint64(r.Created))
		dst = wire.PutUvarint(dst, uint64(len(r.Name)))
		dst = append(dst, r.Name...)
		dst = wire.PutUvarint(dst, uint64(len(r.Owner)))
		dst = append(dst, r.Owner...)
	case kindSetPerm:
		dst = wire.PutUvarint(dst, uint64(r.Perms))
	case kindRetire:
		// id only
	case kindSetOwn:
		dst = wire.PutUvarint(dst, uint64(len(r.Owner)))
		dst = append(dst, r.Owner...)
	}
	return dst
}

// DecodeRecord parses one catalog record.
func DecodeRecord(data []byte) (*Record, error) {
	if len(data) < 2 {
		return nil, ErrBadRecord
	}
	r := &Record{Kind: data[0]}
	rest := data[1:]
	id, n, err := wire.Uvarint(rest)
	if err != nil || id > MaxLogID {
		return nil, ErrBadRecord
	}
	r.ID = uint16(id)
	rest = rest[n:]
	readStr := func() (string, error) {
		l, n, err := wire.Uvarint(rest)
		if err != nil || l > 4096 {
			return "", ErrBadRecord
		}
		rest = rest[n:]
		if uint64(len(rest)) < l {
			return "", ErrBadRecord
		}
		s := string(rest[:l])
		rest = rest[l:]
		return s, nil
	}
	switch r.Kind {
	case kindCreate:
		p, n, err := wire.Uvarint(rest)
		if err != nil || p > MaxLogID {
			return nil, ErrBadRecord
		}
		r.Parent = uint16(p)
		rest = rest[n:]
		perms, n, err := wire.Uvarint(rest)
		if err != nil || perms > 0xFFFF {
			return nil, ErrBadRecord
		}
		r.Perms = uint16(perms)
		rest = rest[n:]
		created, err := wire.Uint64(rest)
		if err != nil {
			return nil, ErrBadRecord
		}
		r.Created = int64(created)
		rest = rest[8:]
		if r.Name, err = readStr(); err != nil {
			return nil, err
		}
		if r.Owner, err = readStr(); err != nil {
			return nil, err
		}
	case kindSetPerm:
		perms, _, err := wire.Uvarint(rest)
		if err != nil || perms > 0xFFFF {
			return nil, ErrBadRecord
		}
		r.Perms = uint16(perms)
	case kindRetire:
	case kindSetOwn:
		var err error
		if r.Owner, err = readStr(); err != nil {
			return nil, err
		}
	default:
		return nil, ErrBadRecord
	}
	return r, nil
}

// Descriptor is the in-memory state of one log file.
type Descriptor struct {
	ID      uint16
	Parent  uint16
	Name    string // final path component; "/" for the volume sequence log
	Perms   uint16
	Created int64
	Owner   string
	Retired bool
	// System marks the reserved service log files.
	System bool
}

// Table is the server's catalog: id → descriptor plus the name tree. It is
// safe for concurrent use: lookups (Resolve, Get, List, ...) run from the
// server's lock-free read path, so the table synchronizes internally with a
// reader/writer lock. Mutations are additionally serialized by the owning
// service, which must durably log the returned records in order.
type Table struct {
	mu       sync.RWMutex
	byID     map[uint16]*Descriptor
	children map[uint16]map[string]uint16
	nextID   uint16
}

// NewTable returns a catalog pre-populated with the reserved system log
// files: "/" (the volume sequence log), "/.entrymap", "/.catalog",
// "/.badblocks", "/.checkpoint" and "/.compact".
func NewTable() *Table {
	t := &Table{
		byID:     make(map[uint16]*Descriptor),
		children: make(map[uint16]map[string]uint16),
		nextID:   FirstClientID,
	}
	sys := []struct {
		id   uint16
		name string
	}{
		{VolumeSeqID, "/"},
		{EntrymapID, ".entrymap"},
		{CatalogID, ".catalog"},
		{BadBlockID, ".badblocks"},
		{CheckpointID, ".checkpoint"},
		{CompactID, ".compact"},
	}
	for _, s := range sys {
		d := &Descriptor{ID: s.id, Parent: VolumeSeqID, Name: s.name, System: true}
		t.byID[s.id] = d
		if s.id != VolumeSeqID {
			t.child(VolumeSeqID)[s.name] = s.id
		}
	}
	return t
}

func (t *Table) child(parent uint16) map[string]uint16 {
	m, ok := t.children[parent]
	if !ok {
		m = make(map[string]uint16)
		t.children[parent] = m
	}
	return m
}

// kids is the read-only counterpart of child: it never materializes a map,
// so it is safe under the read lock (a nil map reads as empty).
func (t *Table) kids(parent uint16) map[string]uint16 {
	return t.children[parent]
}

// Get returns a copy of the descriptor for id (a copy so readers never see
// a concurrent permission/retire change mid-struct).
func (t *Table) Get(id uint16) (*Descriptor, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	d, ok := t.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	cp := *d
	return &cp, nil
}

// Len returns the number of log files known, including the system ones.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.byID)
}

// ValidName reports whether name is a legal path component.
func ValidName(name string) bool {
	if name == "" || len(name) > 255 || name == "." || name == ".." {
		return false
	}
	return !strings.ContainsAny(name, "/\x00")
}

// Create allocates an id and returns both the descriptor and the catalog
// record that must be appended to the catalog log file. The parent makes the
// new log file a sublog: every entry logged in it also belongs to the parent
// (§2.1). Creating under the volume sequence log (parent 0) makes a
// top-level log file.
func (t *Table) Create(parent uint16, name string, perms uint16, owner string, created int64) (*Descriptor, *Record, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	pd, ok := t.byID[parent]
	if !ok {
		return nil, nil, fmt.Errorf("%w: parent id %d", ErrNotFound, parent)
	}
	if pd.Retired {
		return nil, nil, fmt.Errorf("%w: parent %q", ErrRetired, pd.Name)
	}
	if pd.System && parent != VolumeSeqID {
		return nil, nil, fmt.Errorf("%w: cannot create under %q", ErrReserved, pd.Name)
	}
	if !ValidName(name) {
		return nil, nil, fmt.Errorf("%w: %q", ErrBadName, name)
	}
	if _, exists := t.kids(parent)[name]; exists {
		return nil, nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	id, err := t.allocID()
	if err != nil {
		return nil, nil, err
	}
	rec := &Record{
		Kind:    kindCreate,
		ID:      id,
		Parent:  parent,
		Perms:   perms,
		Created: created,
		Name:    name,
		Owner:   owner,
	}
	if err := t.applyLocked(rec); err != nil {
		return nil, nil, err
	}
	cp := *t.byID[id]
	return &cp, rec, nil
}

func (t *Table) allocID() (uint16, error) {
	for probe := 0; probe <= MaxLogID; probe++ {
		id := t.nextID
		t.nextID++
		if t.nextID > MaxLogID {
			t.nextID = FirstClientID
		}
		if id < FirstClientID {
			continue
		}
		if _, taken := t.byID[id]; !taken {
			return id, nil
		}
	}
	return 0, ErrIDsExhausted
}

// SetPerms returns the record for a permission change and applies it.
func (t *Table) SetPerms(id uint16, perms uint16) (*Record, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := t.mutable(id); err != nil {
		return nil, err
	}
	rec := &Record{Kind: kindSetPerm, ID: id, Perms: perms}
	if err := t.applyLocked(rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// SetOwner returns the record for an ownership change and applies it.
func (t *Table) SetOwner(id uint16, owner string) (*Record, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := t.mutable(id); err != nil {
		return nil, err
	}
	rec := &Record{Kind: kindSetOwn, ID: id, Owner: owner}
	if err := t.applyLocked(rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// Retire marks a log file closed for further appends. Its entries remain
// readable forever — nothing is ever deleted from a log volume — and its id
// is never reused within the volume sequence ("distinct from that of all
// other log files ever created on the same volume sequence", §2.1).
func (t *Table) Retire(id uint16) (*Record, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := t.mutable(id); err != nil {
		return nil, err
	}
	rec := &Record{Kind: kindRetire, ID: id}
	if err := t.applyLocked(rec); err != nil {
		return nil, err
	}
	return rec, nil
}

func (t *Table) mutable(id uint16) (*Descriptor, error) {
	d, ok := t.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	if d.System {
		return nil, fmt.Errorf("%w: %q", ErrReserved, d.Name)
	}
	if d.Retired {
		return nil, fmt.Errorf("%w: %q", ErrRetired, d.Name)
	}
	return d, nil
}

// Apply replays one catalog record into the table (used both on the live
// path and when rebuilding from the catalog log at recovery, §2.3.1).
func (t *Table) Apply(rec *Record) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.applyLocked(rec)
}

func (t *Table) applyLocked(rec *Record) error {
	switch rec.Kind {
	case kindCreate:
		if rec.ID < FirstClientID || rec.ID > MaxLogID {
			return fmt.Errorf("%w: create with reserved id %d", ErrBadRecord, rec.ID)
		}
		if have, dup := t.byID[rec.ID]; dup {
			// Snapshot records re-create known log files at volume
			// transitions; an identical create is an idempotent no-op.
			if have.Parent == rec.Parent && have.Name == rec.Name {
				return nil
			}
			return fmt.Errorf("%w: duplicate create of id %d", ErrBadRecord, rec.ID)
		}
		if _, ok := t.byID[rec.Parent]; !ok {
			return fmt.Errorf("%w: create under unknown parent %d", ErrBadRecord, rec.Parent)
		}
		if !ValidName(rec.Name) {
			return fmt.Errorf("%w: create with bad name %q", ErrBadRecord, rec.Name)
		}
		if _, exists := t.child(rec.Parent)[rec.Name]; exists {
			return fmt.Errorf("%w: create duplicate name %q", ErrBadRecord, rec.Name)
		}
		t.byID[rec.ID] = &Descriptor{
			ID:      rec.ID,
			Parent:  rec.Parent,
			Name:    rec.Name,
			Perms:   rec.Perms,
			Created: rec.Created,
			Owner:   rec.Owner,
		}
		t.child(rec.Parent)[rec.Name] = rec.ID
		if rec.ID >= t.nextID {
			t.nextID = rec.ID + 1
			if t.nextID > MaxLogID {
				t.nextID = FirstClientID
			}
		}
	case kindSetPerm:
		d, ok := t.byID[rec.ID]
		if !ok {
			return fmt.Errorf("%w: setperm on unknown id %d", ErrBadRecord, rec.ID)
		}
		d.Perms = rec.Perms
	case kindSetOwn:
		d, ok := t.byID[rec.ID]
		if !ok {
			return fmt.Errorf("%w: setowner on unknown id %d", ErrBadRecord, rec.ID)
		}
		d.Owner = rec.Owner
	case kindRetire:
		d, ok := t.byID[rec.ID]
		if !ok {
			return fmt.Errorf("%w: retire of unknown id %d", ErrBadRecord, rec.ID)
		}
		d.Retired = true
	default:
		return fmt.Errorf("%w: kind %d", ErrBadRecord, rec.Kind)
	}
	return nil
}

// Resolve walks a slash-separated path to a log file id. "/" resolves to the
// volume sequence log.
func (t *Table) Resolve(path string) (uint16, error) {
	if path == "" || path[0] != '/' {
		return 0, fmt.Errorf("%w: path %q must be absolute", ErrBadName, path)
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	cur := uint16(VolumeSeqID)
	for _, comp := range strings.Split(path, "/") {
		if comp == "" {
			continue
		}
		next, ok := t.kids(cur)[comp]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrNotFound, path)
		}
		cur = next
	}
	return cur, nil
}

// PathOf returns the absolute path of id.
func (t *Table) PathOf(id uint16) (string, error) {
	if id == VolumeSeqID {
		return "/", nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var parts []string
	for cur := id; cur != VolumeSeqID; {
		d, ok := t.byID[cur]
		if !ok {
			return "", fmt.Errorf("%w: id %d", ErrNotFound, cur)
		}
		parts = append(parts, d.Name)
		cur = d.Parent
	}
	var sb strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		sb.WriteByte('/')
		sb.WriteString(parts[i])
	}
	return sb.String(), nil
}

// List returns the child names of id, sorted. Every log file is also a
// directory of (zero or more) sublogs (§2.1).
func (t *Table) List(id uint16) ([]string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if _, ok := t.byID[id]; !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	m := t.kids(id)
	out := make([]string, 0, len(m))
	for name := range m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Descendants returns id and every transitive sublog id beneath it, sorted.
// Reading a log file yields the entries of the whole set: an entry logged in
// a sublog also belongs to its ancestors.
func (t *Table) Descendants(id uint16) ([]uint16, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if _, ok := t.byID[id]; !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	var out []uint16
	var walk func(uint16)
	walk = func(cur uint16) {
		out = append(out, cur)
		kids := make([]uint16, 0, len(t.kids(cur)))
		for _, kid := range t.kids(cur) {
			kids = append(kids, kid)
		}
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		for _, kid := range kids {
			walk(kid)
		}
	}
	walk(id)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// SnapshotRecords returns the records that reconstruct every client log
// file's current descriptor — the catalog snapshot written at the start of
// each successor volume so that the newest volume alone suffices to rebuild
// the catalog when earlier volumes are offline (§2.1: only the newest
// volume of a sequence is assumed on-line).
func (t *Table) SnapshotRecords() []*Record {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []*Record
	// Parents must precede children; emit in id order after a topological
	// pass (parents always have smaller create times but not necessarily
	// smaller ids, so walk the tree).
	emitted := make(map[uint16]bool)
	var emit func(id uint16)
	emit = func(id uint16) {
		if emitted[id] || id < FirstClientID {
			return
		}
		d := t.byID[id]
		if d == nil || d.System {
			return
		}
		emit(d.Parent)
		emitted[id] = true
		out = append(out, &Record{
			Kind:    kindCreate,
			ID:      d.ID,
			Parent:  d.Parent,
			Perms:   d.Perms,
			Created: d.Created,
			Name:    d.Name,
			Owner:   d.Owner,
		})
		if d.Retired {
			out = append(out, &Record{Kind: kindRetire, ID: d.ID})
		}
	}
	for _, id := range t.idsLocked() {
		emit(id)
	}
	return out
}

// RetiredSet returns the set of retired log-file ids — the compactor's
// notion of which sublogs' entries are dead (readable from the cold tier,
// never copied forward).
func (t *Table) RetiredSet() map[uint16]bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[uint16]bool)
	for id, d := range t.byID {
		if d.Retired {
			out[id] = true
		}
	}
	return out
}

// IDs returns every known id, sorted (for iteration in tests and tools).
func (t *Table) IDs() []uint16 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.idsLocked()
}

func (t *Table) idsLocked() []uint16 {
	out := make([]uint16, 0, len(t.byID))
	for id := range t.byID {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
