package analytic

import (
	"math"
	"testing"
)

func TestFig3Shape(t *testing.T) {
	// Monotone in d, decreasing in N, and matching Table 1 at powers.
	if Fig3LocateEntries(16, 1) != 0 {
		t.Error("d=1 not zero")
	}
	if Fig3LocateEntries(16, 1e6) <= Fig3LocateEntries(16, 1e3) {
		t.Error("not monotone in d")
	}
	if Fig3LocateEntries(4, 1e6) <= Fig3LocateEntries(64, 1e6) {
		t.Error("larger N should examine fewer entries")
	}
	// 2·log_16(16^3) = 6 ≈ Table 1's 2k−1 = 5 within one entry.
	got := Fig3LocateEntries(16, math.Pow(16, 3))
	if math.Abs(got-6) > 1e-9 {
		t.Errorf("Fig3(16, 16^3) = %v", got)
	}
	// The paper: "there is little benefit in N being larger than 16 or 32".
	gain16to128 := Fig3LocateEntries(16, 1e7) - Fig3LocateEntries(128, 1e7)
	gain4to16 := Fig3LocateEntries(4, 1e7) - Fig3LocateEntries(16, 1e7)
	if gain16to128 >= gain4to16 {
		t.Error("diminishing returns in N not reproduced")
	}
}

func TestTable1Exact(t *testing.T) {
	wantE := []int{0, 1, 3, 5, 7, 9}
	wantB := []int{1, 3, 5, 7, 9, 11}
	for k := 0; k <= 5; k++ {
		if Table1Entries(k) != wantE[k] {
			t.Errorf("entries(k=%d) = %d", k, Table1Entries(k))
		}
		if Table1Blocks(k) != wantB[k] {
			t.Errorf("blocks(k=%d) = %d", k, Table1Blocks(k))
		}
	}
}

func TestFig4Shape(t *testing.T) {
	// Increases with N (the paper: "this cost increases if N is increased").
	if Fig4RecoveryBlocks(16, 1e6) >= Fig4RecoveryBlocks(128, 1e6) {
		t.Error("recovery cost should increase with N")
	}
	if Fig4RecoveryBlocks(16, 1e8) <= Fig4RecoveryBlocks(16, 1e4) {
		t.Error("not monotone in b")
	}
	// N=16, b=16^4: (16·4)/2 = 32.
	got := Fig4RecoveryBlocks(16, math.Pow(16, 4))
	if math.Abs(got-32) > 1e-9 {
		t.Errorf("Fig4(16, 16^4) = %v", got)
	}
}

func TestSpaceOverheadPaperNumbers(t *testing.T) {
	// §3.5: h=4, N=16, c'=2 → o_e ≤ 0.27·c·(a+1).
	for _, a := range []float64{1, 4, 8} {
		for _, c := range []float64{1.0 / 15, 0.5} {
			got := SpaceOverheadBound(4, 16, a, c, 2)
			want := (4 + a*4) / 15 * c
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("bound(a=%v,c=%v) = %v, want %v", a, c, got, want)
			}
		}
	}
	// Login/logout file system: c≈1/15, a≈8 → < 0.16 bytes.
	if got := SpaceOverheadBound(4, 16, 8, 1.0/15, 2); got > 0.16+1e-9 {
		t.Errorf("login fs bound = %v, paper says < 0.16", got)
	}
}

func TestHeaderOverheadPercent(t *testing.T) {
	// "less than 10% for entries with more than 36 bytes of client data".
	if got := HeaderOverheadPercent(36); got > 10 {
		t.Errorf("36-byte overhead = %v%%", got)
	}
	if got := HeaderOverheadPercent(0); got != 100 {
		t.Errorf("null entry overhead = %v%%, want 100", got)
	}
}

func TestBinaryTreeAndProbes(t *testing.T) {
	if BinaryTreeLocateReads(1024) < 10 {
		t.Error("binary tree reads too low")
	}
	if FindEndProbes(1<<20) != 20 {
		t.Errorf("FindEndProbes(1M) = %v", FindEndProbes(1<<20))
	}
}

func TestSection4BreakEven(t *testing.T) {
	// The paper's example numbers: 1 ms RAM, 30 ms disk cache, 100 ms log
	// device → RAM wins at >= ~70% of the disk cache's hit ratio.
	r := Section4BreakEvenRatio(1, 30, 100)
	if r < 0.70 || r > 0.71 {
		t.Errorf("break-even ratio = %v, paper says ~0.70", r)
	}
	// Sanity: equal costs at the break-even point.
	hDisk := 0.9
	hRAM := hDisk * r
	ram := Section4ReadCost(hRAM, 1, 100)
	disk := Section4ReadCost(hDisk, 30, 100)
	if math.Abs(ram-disk) > 1e-9 {
		t.Errorf("costs at break-even differ: %v vs %v", ram, disk)
	}
}
