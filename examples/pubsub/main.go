// Pubsub: streaming reads over write-once logs. Publishers append market
// ticks to a partitioned topic; a consumer group divides the partitions
// among its members, each member tails its partitions live (woken by group
// commit, no polling) and acknowledges every tick into the group's offsets
// log — itself an ordinary log file under /.offsets, so the group's entire
// coordination history is replayable. A member leaves mid-stream and the
// group rebalances without dropping or duplicating a tick; the final audit
// replays the ack trail to prove it.
//
//	go run ./examples/pubsub
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"clio"
	"clio/internal/logapi"
	"clio/internal/stream/group"
)

const (
	topic      = "/ticks"
	partitions = 4
	perSymbol  = 25
)

var symbols = []string{"CLIO", "WORM", "LOGF", "SOSP"}

func main() {
	// A 4-shard in-memory store: the topic's partition logs hash across the
	// shards, so partition tails run on independent volume sequences.
	store, err := clio.NewMemStore(partitions, 1024, 1<<16, clio.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	ctx := context.Background()

	ids, err := group.EnsureTopic(ctx, store, topic, partitions)
	if err != nil {
		log.Fatal(err)
	}

	// Three consumers in one group; each records what it acknowledged.
	var mu sync.Mutex
	consumed := make(map[string]string) // tick → member
	var runners sync.WaitGroup
	start := func(member string) *group.Consumer {
		c, err := group.Join(ctx, store, "tickers", member, topic, partitions,
			group.Options{TTL: 500 * time.Millisecond})
		if err != nil {
			log.Fatal(err)
		}
		runners.Add(1)
		go func() {
			defer runners.Done()
			for {
				m, err := c.Recv(ctx)
				if err != nil {
					return
				}
				if err := c.Ack(ctx, m); err != nil {
					continue // partition moved; the new owner redelivers
				}
				mu.Lock()
				consumed[string(m.Data)] = member
				mu.Unlock()
			}
		}()
		return c
	}
	c1, c2, c3 := start("alice"), start("bob"), start("carol")

	// Publishers: one goroutine per symbol, each symbol hashed to a
	// partition, so per-symbol order is preserved end to end.
	var pubs sync.WaitGroup
	for si, sym := range symbols {
		pubs.Add(1)
		go func(p int, sym string) {
			defer pubs.Done()
			for i := 0; i < perSymbol; i++ {
				tick := fmt.Sprintf("%s@%d", sym, 100+i)
				if _, err := store.Append(ctx, ids[p], []byte(tick),
					logapi.AppendOptions{Forced: true}); err != nil {
					log.Fatal(err)
				}
			}
		}(si%partitions, sym)
	}

	// Mid-stream, one member leaves; its partitions hand off to the others.
	time.Sleep(200 * time.Millisecond)
	fmt.Println("bob leaves; group rebalances")
	c2.Close()

	pubs.Wait()
	total := perSymbol * len(symbols)
	for deadline := time.Now().Add(10 * time.Second); ; {
		mu.Lock()
		n := len(consumed)
		mu.Unlock()
		if n >= total {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("consumed %d/%d ticks", n, total)
		}
		time.Sleep(10 * time.Millisecond)
	}
	c1.Close()
	c3.Close()
	runners.Wait()

	byMember := make(map[string]int)
	mu.Lock()
	for _, m := range consumed {
		byMember[m]++
	}
	mu.Unlock()
	fmt.Printf("consumed %d ticks exactly once:", total)
	for _, m := range []string{"alice", "bob", "carol"} {
		fmt.Printf(" %s=%d", m, byMember[m])
	}
	fmt.Println()

	// The audit replays /.offsets/tickers: acks must come from the claim
	// holder and strictly advance per partition — the exactly-once-per-group
	// evidence, reconstructed purely from write-once storage.
	rep, err := group.Audit(ctx, store, "tickers")
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	fmt.Printf("audit: %d group records, %d entries acked across %d partitions\n",
		rep.Records, rep.Acked(), len(rep.Partitions))
	for p := 0; p < partitions; p++ {
		if pr := rep.Partitions[p]; pr != nil {
			fmt.Printf("  partition %d: %d acks, owners %v\n", p, pr.Acks, pr.Owners)
		}
	}
}
