package core

// Concurrency tests for the group-commit forced-append path and the
// lock-decomposed read path. Run them with -race; they are the directed
// counterparts of the repo-root chaos/soak tests.

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"

	"clio/internal/faults"
	"clio/internal/wodev"
)

// latentMem returns a MemDevice wrapped with real write latency so that a
// sealing leader blocks long enough for concurrent forces to pile into its
// successor's batch — essential on a single-CPU runner, where fast
// uncontended loops otherwise never interleave.
func latentMem(blockSize int, writeDelay time.Duration) wodev.Device {
	return wodev.NewLatent(
		wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: 1 << 18}),
		writeDelay, 0)
}

func lockedNow() func() int64 {
	var mu sync.Mutex
	var now int64
	return func() int64 {
		mu.Lock()
		defer mu.Unlock()
		now += 1000
		return now
	}
}

// TestConcurrentForcedAppendsDurableExactlyOnce drives many goroutines of
// forced appends through the group-commit path, then reopens the device as
// after a crash (no clean Close) and verifies every acknowledged entry is
// present exactly once with its acknowledged timestamp.
func TestConcurrentForcedAppendsDurableExactlyOnce(t *testing.T) {
	const goroutines = 16
	const perG = 40
	dev := latentMem(1024, 100*time.Microsecond)
	svc, err := New(dev, Options{BlockSize: 1024, Degree: 16, CacheBlocks: -1, Now: lockedNow()})
	if err != nil {
		t.Fatal(err)
	}
	id, err := svc.CreateLog("/gc", 0, "")
	if err != nil {
		t.Fatal(err)
	}

	type acked struct {
		payload string
		ts      int64
	}
	results := make([][]acked, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				payload := fmt.Sprintf("g%02d-i%03d", g, i)
				ts, err := svc.Append(id, []byte(payload), AppendOptions{Forced: true})
				if err != nil && !IsDegraded(err) {
					t.Errorf("append %s: %v", payload, err)
					return
				}
				results[g] = append(results[g], acked{payload, ts})
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	st := svc.Stats()
	if st.ForcedWrites != goroutines*perG {
		t.Fatalf("ForcedWrites = %d, want %d", st.ForcedWrites, goroutines*perG)
	}
	if st.GroupCommits == 0 || st.BatchedForces == 0 {
		t.Fatalf("no group commits formed (GroupCommits=%d BatchedForces=%d); "+
			"the test did not exercise batching", st.GroupCommits, st.BatchedForces)
	}
	if st.BlocksSealed >= st.ForcedWrites {
		t.Errorf("BlocksSealed = %d not amortized below ForcedWrites = %d",
			st.BlocksSealed, st.ForcedWrites)
	}
	t.Logf("forced=%d sealed=%d groupCommits=%d batchedForces=%d",
		st.ForcedWrites, st.BlocksSealed, st.GroupCommits, st.BatchedForces)

	// Acknowledged timestamps must be unique across the whole run.
	want := make(map[string]int64, goroutines*perG)
	seenTS := make(map[int64]string, goroutines*perG)
	for _, rs := range results {
		for _, a := range rs {
			if prev, dup := seenTS[a.ts]; dup {
				t.Fatalf("timestamp %d acknowledged twice: %q and %q", a.ts, prev, a.payload)
			}
			seenTS[a.ts] = a.payload
			want[a.payload] = a.ts
		}
	}

	// "Crash": abandon svc without Close and recover from the device alone.
	svc2, err := Open([]wodev.Device{dev}, Options{BlockSize: 1024, Degree: 16, CacheBlocks: -1, Now: lockedNow()})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer svc2.Close()
	got := readAllEntries(t, svc2, "/gc")
	for payload, ts := range want {
		n, ok := got[payload]
		if !ok {
			t.Errorf("acknowledged entry %q (ts %d) lost across crash", payload, ts)
		} else if n != 1 {
			t.Errorf("entry %q recovered %d times, want exactly once", payload, n)
		}
	}
	if len(got) != len(want) {
		t.Errorf("recovered %d distinct entries, want %d", len(got), len(want))
	}
}

// TestCrashMidBatchRecovery injects a crash at the tail seal (the
// core.seal.write fault point) while concurrent forced appends are
// batching, then reopens the device and verifies that every append
// acknowledged before the crash is present exactly once. Requests caught
// in the dying batch get ErrClosed (or the crash panic, for the leader)
// and make no durability claim.
func TestCrashMidBatchRecovery(t *testing.T) {
	const goroutines = 8
	dev := latentMem(1024, 100*time.Microsecond)
	reg := faults.NewRegistry()
	svc, err := New(dev, Options{BlockSize: 1024, Degree: 16, CacheBlocks: -1,
		Now: lockedNow(), Faults: reg})
	if err != nil {
		t.Fatal(err)
	}
	id, err := svc.CreateLog("/crash", 0, "")
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	acked := make(map[string]int64)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				payload := fmt.Sprintf("g%02d-i%04d", g, i)
				stopped := func() bool {
					// The leader whose batch hits the armed point unwinds
					// with the injected faults.Crash panic; treat it like
					// the process death it simulates.
					defer func() {
						if r := recover(); r != nil {
							if _, ok := r.(faults.Crash); !ok {
								panic(r)
							}
						}
					}()
					ts, err := svc.Append(id, []byte(payload), AppendOptions{Forced: true})
					if err == nil || IsDegraded(err) {
						mu.Lock()
						acked[payload] = ts
						mu.Unlock()
						return false
					}
					if errors.Is(err, ErrClosed) {
						return true
					}
					t.Errorf("append %s: %v", payload, err)
					return true
				}()
				if stopped {
					return
				}
			}
		}(g)
	}

	// Let batches form, then arm the crash at the next tail-block write.
	time.Sleep(20 * time.Millisecond)
	reg.EnableCrash(FaultSealWrite, 1)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if reg.Fired(FaultSealWrite) != 1 {
		t.Fatalf("crash point fired %d times, want 1", reg.Fired(FaultSealWrite))
	}
	if len(acked) == 0 {
		t.Fatal("no appends were acknowledged before the crash")
	}

	// Reopen from the device alone and verify the acknowledged prefix.
	svc2, err := Open([]wodev.Device{dev}, Options{BlockSize: 1024, Degree: 16, CacheBlocks: -1, Now: lockedNow()})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer svc2.Close()
	got := readAllEntries(t, svc2, "/crash")
	for payload, ts := range acked {
		n, ok := got[payload]
		if !ok {
			t.Errorf("acknowledged entry %q (ts %d) lost across mid-batch crash", payload, ts)
		} else if n != 1 {
			t.Errorf("entry %q recovered %d times, want exactly once", payload, n)
		}
	}
	t.Logf("acked before crash: %d; distinct recovered: %d", len(acked), len(got))
}

// TestConcurrentReadersDuringAppends runs cursors over a growing log while
// writers (forced and unforced) append — under -race this exercises the
// tail-snapshot publication protocol and the lock-free sealed-block reads.
func TestConcurrentReadersDuringAppends(t *testing.T) {
	dev := latentMem(1024, 20*time.Microsecond)
	svc, err := New(dev, Options{BlockSize: 1024, Degree: 16, CacheBlocks: 64, Now: lockedNow()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	id, err := svc.CreateLog("/rw", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := svc.Append(id, []byte(fmt.Sprintf("seed-%04d", i)), AppendOptions{}); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			forced := w == 0
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := svc.Append(id, []byte(fmt.Sprintf("w%d-%05d", w, i)),
					AppendOptions{Forced: forced}); err != nil && !IsDegraded(err) {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cur, err := svc.OpenCursor("/rw")
			if err != nil {
				t.Errorf("open cursor: %v", err)
				return
			}
			var prev int64
			scanned := 0
			for scanned < 2000 {
				select {
				case <-stop:
					return
				default:
				}
				e, err := cur.Next()
				if err == io.EOF {
					cur.SeekStart()
					prev = 0
					continue
				}
				if err != nil {
					t.Errorf("cursor next: %v", err)
					return
				}
				if e.Timestamp < prev {
					t.Errorf("timestamps regressed: %d after %d", e.Timestamp, prev)
					return
				}
				prev = e.Timestamp
				scanned++
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// readAllEntries scans the named log from the start and returns payload
// occurrence counts.
func readAllEntries(t *testing.T, svc *Service, path string) map[string]int {
	t.Helper()
	cur, err := svc.OpenCursor(path)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int)
	for {
		e, err := cur.Next()
		if err == io.EOF {
			return got
		}
		if err != nil {
			t.Fatalf("scan %s: %v", path, err)
		}
		got[string(e.Data)]++
	}
}
