package logapi_test

import (
	"testing"

	"clio"
	"clio/internal/client"
	"clio/internal/logapi"
	"clio/internal/shard"
)

// Compile-time pinning of the unified Log API: every deployment shape —
// an in-process service, a sharded store (and its facade alias), a
// network client — satisfies logapi.Service, and the facade's Log alias
// is that same interface. A signature drift in any implementation breaks
// this file's build rather than a caller's.
var (
	_ logapi.Service = logapi.Local{}
	_ logapi.Service = (*shard.Store)(nil)
	_ logapi.Service = (*client.Client)(nil)
	_ clio.Log       = (*clio.Store)(nil)
	_ clio.Log       = (*client.Client)(nil)

	_ logapi.Cursor  = (*client.Cursor)(nil)
	_ clio.LogCursor = logapi.Cursor(nil)
)

// TestInterfaceSatisfaction exists so the assertions above are exercised
// by `go test` even when nothing else in this file changes; the real
// check happens at compile time.
func TestInterfaceSatisfaction(t *testing.T) {
	var lg clio.Log
	if lg != nil {
		t.Fatal("zero Log must be nil")
	}
}
