package core

import (
	"fmt"
	"testing"

	"clio/internal/wodev"
)

// TestCheckpointEncodeDecode round-trips a live service's checkpoint
// payload and pins the torn/garbage validity rules: any mutation —
// truncation, a flipped byte, a wrong magic — must make the payload
// invalid, never misread.
func TestCheckpointEncodeDecode(t *testing.T) {
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := mustCreate(t, s, "/a")
	mustCreate(t, s, "/b")
	for i := 0; i < 40; i++ {
		mustAppend(t, s, id, fmt.Sprintf("entry-%02d", i), AppendOptions{Forced: i%7 == 0})
	}
	if err := s.SealTail(); err != nil {
		t.Fatal(err)
	}

	s.mu.Lock()
	payload := s.encodeCheckpointLocked()
	wantEnd, wantBound := s.sealedEnd, s.lastBound
	s.mu.Unlock()

	cp, err := decodeCheckpoint(payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if cp.coveredEnd != wantEnd || cp.lastBound != wantBound {
		t.Errorf("coveredEnd=%d lastBound=%d, want %d %d", cp.coveredEnd, cp.lastBound, wantEnd, wantBound)
	}
	if cp.acc.N() != 4 {
		t.Errorf("restored degree %d", cp.acc.N())
	}
	if len(cp.catalog) != 2 {
		t.Errorf("catalog snapshot has %d records, want 2", len(cp.catalog))
	}

	if _, err := decodeCheckpoint(payload[:len(payload)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	for _, off := range []int{0, 5, len(payload) / 2, len(payload) - 2} {
		bad := append([]byte(nil), payload...)
		bad[off] ^= 0x40
		if _, err := decodeCheckpoint(bad); err == nil {
			t.Errorf("payload with byte %d flipped accepted", off)
		}
	}
	if _, err := decodeCheckpoint(nil); err == nil {
		t.Error("empty payload accepted")
	}
}

// TestCheckpointBoundsRecovery is the headline property: with the interval
// policy active, reopen cost (entrymap blocks scanned + catalog records
// replayed) stays bounded by the interval plus a constant as the store
// grows, while without checkpoints it grows with the written portion. Each
// stage also verifies full data and catalog fidelity after the crash.
func TestCheckpointBoundsRecovery(t *testing.T) {
	const interval = 8
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, CheckpointInterval: interval}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 13})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/grow")
	var want []string
	seq := 0
	// The replay window is the interval plus the checkpoint's own blocks
	// and whatever partial block activity follows it; a fixed small slack
	// demonstrates O(interval), independent of total size.
	const slack = 16
	var lastSealed int
	files := 1
	for stage, target := range []int{150, 600, 1500} {
		for seq < target {
			if seq%25 == 0 {
				// Catalog traffic: the no-checkpoint path replays every one
				// of these creates from block 0 on each reopen.
				mustCreate(t, s, fmt.Sprintf("/extra-%04d", seq))
				files++
			}
			p := fmt.Sprintf("entry-%05d", seq)
			mustAppend(t, s, id, p, AppendOptions{Forced: seq%40 == 0})
			want = append(want, p)
			seq++
		}
		if err := s.Force(); err != nil {
			t.Fatal(err)
		}
		s2 := crashAndReopen(t, s, dev, opt)
		rep := s2.LastRecovery()
		if !rep.CheckpointUsed {
			t.Fatalf("stage %d: recovery did not use a checkpoint: %+v", stage, rep)
		}
		cost := rep.EntrymapBlocksScanned + rep.CatalogEntries
		if cost > interval+slack {
			t.Errorf("stage %d: recovery cost %d exceeds interval %d + slack %d (sealed=%d)",
				stage, cost, interval, slack, rep.SealedBlocks)
		}
		if rep.BlocksReplayed > interval+slack {
			t.Errorf("stage %d: replayed %d blocks", stage, rep.BlocksReplayed)
		}
		if rep.SealedBlocks <= lastSealed {
			t.Fatalf("stage %d: store did not grow (%d)", stage, rep.SealedBlocks)
		}
		lastSealed = rep.SealedBlocks
		if got := datas(readAll(t, s2, "/grow")); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("stage %d: read back %d entries, want %d", stage, len(got), len(want))
		}
		if got, err := s2.Resolve("/grow"); err != nil || got != id {
			t.Fatalf("stage %d: Resolve = %d, %v", stage, got, err)
		}
		s = s2
	}

	// A store written with checkpoints stays fully openable without them:
	// the checkpoint records are ordinary entries the full reconstruction
	// simply reads past.
	s.Crash()
	plain := opt
	plain.CheckpointInterval = 0
	s3, err := Open([]wodev.Device{dev}, plain)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	rep := s3.LastRecovery()
	if rep.CheckpointUsed {
		t.Error("checkpoint-disabled open reported CheckpointUsed")
	}
	// The full path replays the whole catalog history (one create per
	// file), so its cost scales with the store while the checkpointed
	// reopens above stayed under interval+slack.
	if rep.CatalogEntries < files {
		t.Errorf("full reconstruction replayed %d catalog records, want >= %d", rep.CatalogEntries, files)
	}
	if got := datas(readAll(t, s3, "/grow")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("checkpoint-disabled open read %d entries, want %d", len(got), len(want))
	}
}

// TestCheckpointOnCleanClose pins the and/or-on-Close half of the policy: a
// clean Close with the policy active leaves a checkpoint covering
// everything, so the next open replays only the checkpoint's own blocks.
func TestCheckpointOnCleanClose(t *testing.T) {
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, CheckpointInterval: 64}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/c")
	var want []string
	for i := 0; i < 50; i++ {
		p := fmt.Sprintf("e%02d", i)
		mustAppend(t, s, id, p, AppendOptions{})
		want = append(want, p)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Checkpoints; got != 1 {
		t.Fatalf("Close emitted %d checkpoints, want 1", got)
	}
	s2, err := Open([]wodev.Device{dev}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rep := s2.LastRecovery()
	if !rep.CheckpointUsed || rep.BlocksReplayed > 4 {
		t.Errorf("after clean close: used=%v replayed=%d", rep.CheckpointUsed, rep.BlocksReplayed)
	}
	if got := datas(readAll(t, s2, "/c")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("read back %d entries, want %d", len(got), len(want))
	}
	// Close→reopen with nothing new must not grow the log with another
	// checkpoint block.
	endBefore := s2.End()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, err := Open([]wodev.Device{dev}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.End() != endBefore {
		t.Errorf("idle close/reopen grew the log: %d -> %d", endBefore, s3.End())
	}
}

// checkpointSpan emits a manual checkpoint and returns the data-block range
// [from, to) its records landed in.
func checkpointSpan(t *testing.T, s *Service) (int, int) {
	t.Helper()
	if err := s.SealTail(); err != nil {
		t.Fatal(err)
	}
	from := s.End()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	return from, s.End()
}

// TestTornCheckpointFallsBack simulates a crash during the checkpoint write
// itself: the blocks holding the only checkpoint are garbage at reopen.
// Recovery must treat them as never written and fall back to the full
// reconstruction with no data loss (the damaged blocks held no client
// data).
func TestTornCheckpointFallsBack(t *testing.T) {
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/torn")
	var want []string
	for i := 0; i < 30; i++ {
		p := fmt.Sprintf("pre-%02d", i)
		mustAppend(t, s, id, p, AppendOptions{})
		want = append(want, p)
	}
	ckFrom, ckTo := checkpointSpan(t, s)
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("post-%02d", i)
		mustAppend(t, s, id, p, AppendOptions{Forced: true})
		want = append(want, p)
	}
	s.Crash()
	garbage := make([]byte, 256)
	for i := range garbage {
		garbage[i] = 0xA5
	}
	for b := ckFrom; b < ckTo; b++ {
		if err := dev.Damage(b+1, garbage); err != nil { // +1: volume header block
			t.Fatal(err)
		}
	}
	reopen := opt
	reopen.CheckpointInterval = 8
	s2, err := Open([]wodev.Device{dev}, reopen)
	if err != nil {
		t.Fatalf("reopen over torn checkpoint: %v", err)
	}
	defer s2.Close()
	rep := s2.LastRecovery()
	if rep.CheckpointUsed {
		t.Error("recovery claimed to use the torn checkpoint")
	}
	if got := datas(readAll(t, s2, "/torn")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("read back %d entries, want %d", len(got), len(want))
	}
}

// TestTornCheckpointUsesOlderOne: when the newest checkpoint is torn, the
// backward scan must keep going and restore from the previous valid one.
func TestTornCheckpointUsesOlderOne(t *testing.T) {
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/old")
	var want []string
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("a-%02d", i)
		mustAppend(t, s, id, p, AppendOptions{})
		want = append(want, p)
	}
	_, firstEnd := checkpointSpan(t, s)
	for i := 0; i < 15; i++ {
		p := fmt.Sprintf("b-%02d", i)
		mustAppend(t, s, id, p, AppendOptions{})
		want = append(want, p)
	}
	ckFrom, ckTo := checkpointSpan(t, s)
	s.Crash()
	for b := ckFrom; b < ckTo; b++ {
		if err := dev.Damage(b+1, nil); err != nil {
			t.Fatal(err)
		}
	}
	reopen := opt
	reopen.CheckpointInterval = 64
	s2, err := Open([]wodev.Device{dev}, reopen)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rep := s2.LastRecovery()
	if !rep.CheckpointUsed {
		t.Fatal("recovery did not fall back to the older checkpoint")
	}
	if wantReplay := rep.SealedBlocks - (firstEnd - 1) + 1; rep.BlocksReplayed < rep.SealedBlocks-firstEnd || rep.BlocksReplayed > wantReplay+2 {
		t.Errorf("BlocksReplayed = %d, want about %d", rep.BlocksReplayed, rep.SealedBlocks-firstEnd)
	}
	if got := datas(readAll(t, s2, "/old")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("read back %d entries, want %d", len(got), len(want))
	}
}

// TestCheckpointWithNVRAMTail crashes right after a checkpoint with a
// freshly staged NVRAM tail: recovery must both restore from the checkpoint
// and re-stage the tail, losing nothing.
func TestCheckpointWithNVRAMTail(t *testing.T) {
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now,
		NVRAM: NewMemNVRAM(), CheckpointInterval: 8}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/nv")
	var want []string
	i := 0
	for s.Stats().Checkpoints == 0 {
		p := fmt.Sprintf("bulk-%03d", i)
		mustAppend(t, s, id, p, AppendOptions{Forced: true})
		want = append(want, p)
		i++
		if i > 2000 {
			t.Fatal("no checkpoint after 2000 forced appends")
		}
	}
	// A few more forced entries: they live only in the NVRAM-staged tail.
	for j := 0; j < 3; j++ {
		p := fmt.Sprintf("staged-%d", j)
		mustAppend(t, s, id, p, AppendOptions{Forced: true})
		want = append(want, p)
	}
	s2 := crashAndReopen(t, s, dev, opt)
	defer s2.Close()
	rep := s2.LastRecovery()
	if !rep.CheckpointUsed {
		t.Error("recovery did not use the checkpoint")
	}
	if !rep.TailRestored {
		t.Error("NVRAM-staged tail not restored")
	}
	if got := datas(readAll(t, s2, "/nv")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("read back %d entries, want %d", len(got), len(want))
	}
}

// TestCheckpointAfterDamageSlide: a checkpoint that follows a bad-block
// slide carries the bad-block list, and a recovery from it still reports
// the damaged block.
func TestCheckpointAfterDamageSlide(t *testing.T) {
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, CheckpointInterval: 8}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	id := mustCreate(t, s, "/slide")
	mustAppend(t, s, id, "first", AppendOptions{Forced: true})
	if err := dev.Damage(dev.Written(), nil); err != nil {
		t.Fatal(err)
	}
	var want []string
	want = append(want, "first")
	for i := 0; i < 60; i++ {
		p := fmt.Sprintf("s-%02d", i)
		mustAppend(t, s, id, p, AppendOptions{Forced: true})
		want = append(want, p)
	}
	if got := s.Stats().Checkpoints; got == 0 {
		t.Fatal("no checkpoint emitted")
	}
	s2 := crashAndReopen(t, s, dev, opt)
	defer s2.Close()
	rep := s2.LastRecovery()
	if !rep.CheckpointUsed {
		t.Error("checkpoint not used")
	}
	if len(rep.BadBlocks) != 1 {
		t.Errorf("BadBlocks = %v, want one entry", rep.BadBlocks)
	}
	if got := datas(readAll(t, s2, "/slide")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("read back %d entries, want %d", len(got), len(want))
	}
}
