// Auditlog: the security-audit use case from the paper's introduction — a
// tamper-evident trail on write-once storage, with per-user sublogs so "a
// logged history can be examined to monitor for, and detect, unauthorized
// or suspicious activity patterns".
//
// The example records a mixed trail of logins, file accesses and privilege
// escalations for several users, then runs two audits: everything one user
// did (their sublog), and every privilege escalation in a time window
// (scanning the parent log, which contains all sublogs' entries).
//
//	go run ./examples/auditlog
package main

import (
	"fmt"
	"io"
	"log"
	"strings"
	"time"

	"clio"
)

type event struct {
	user   string
	action string
}

func main() {
	// In-memory store: audit trails fit naturally on simulated WORM.
	svc, err := clio.New(clio.NewMemDevice(1024, 1<<16), clio.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()

	if _, err := svc.CreateLog("/audit", 0o600, "security"); err != nil {
		log.Fatal(err)
	}
	users := []string{"smith", "jones", "root"}
	ids := map[string]uint16{}
	for _, u := range users {
		id, err := svc.CreateLog("/audit/"+u, 0o600, "security")
		if err != nil {
			log.Fatal(err)
		}
		ids[u] = id
	}

	// Escalations additionally go to a dedicated cross-user log file via
	// multi-membership (§2.1: an entry may belong to several log files).
	escID, err := svc.CreateLog("/audit/escalations", 0o600, "security")
	if err != nil {
		log.Fatal(err)
	}

	trail := []event{
		{"smith", "login tty3"},
		{"jones", "login tty4"},
		{"smith", "open /etc/passwd"},
		{"root", "privilege-escalation su from=jones"},
		{"jones", "logout"},
		{"smith", "privilege-escalation sudo cmd=visudo"},
		{"root", "open /var/db/secrets"},
		{"smith", "logout"},
	}
	var escalationStart int64
	for i, ev := range trail {
		var ts int64
		var err error
		if strings.HasPrefix(ev.action, "privilege-escalation") {
			ts, err = svc.AppendMulti([]uint16{ids[ev.user], escID}, []byte(ev.action),
				clio.AppendOptions{Timestamped: true, Forced: true})
		} else {
			ts, err = svc.Append(ids[ev.user], []byte(ev.action),
				clio.AppendOptions{Timestamped: true, Forced: true})
		}
		if err != nil {
			log.Fatal(err)
		}
		if i == 3 {
			escalationStart = ts
		}
	}

	fmt.Println("== everything smith did ==")
	cur, err := svc.OpenCursor("/audit/smith")
	if err != nil {
		log.Fatal(err)
	}
	dump(cur, func(e *clio.Entry) bool { return true })

	fmt.Println("== the escalation log (multi-membership entries) ==")
	esc, err := svc.OpenCursor("/audit/escalations")
	if err != nil {
		log.Fatal(err)
	}
	if err := esc.SeekTime(escalationStart); err != nil {
		log.Fatal(err)
	}
	dump(esc, func(e *clio.Entry) bool { return true })

	fmt.Println("== the trail is append-only: entries cannot be rewritten ==")
	d, _ := svc.Stat("/audit/smith")
	fmt.Printf("log id %d holds %s; retiring it freezes it forever\n", d.ID, "smith's history")
	if err := svc.Retire("/audit/smith"); err != nil {
		log.Fatal(err)
	}
	if _, err := svc.Append(ids["smith"], []byte("forged"), clio.AppendOptions{}); err != nil {
		fmt.Printf("append after retire correctly refused: %v\n", err)
	}
}

func dump(cur *clio.Cursor, keep func(*clio.Entry) bool) {
	for {
		e, err := cur.Next()
		if err == io.EOF {
			return
		}
		if err != nil {
			log.Fatal(err)
		}
		if keep(e) {
			fmt.Printf("  %s  %s\n",
				time.Unix(0, e.Timestamp).Format(time.StampMicro), e.Data)
		}
	}
}
