// Transactions: the extension the paper names as planned work in §6 —
// "atomic update of (regular) files, using log files for recovery". A
// transfer between two account files either happens entirely or not at
// all, even when the process dies halfway through applying it; the Clio
// journal log file is the commit point and the recovery source.
//
//	go run ./examples/transactions
package main

import (
	"errors"
	"fmt"
	"log"

	"clio"
	"clio/internal/atomicfs"
	"clio/internal/core"
	"clio/internal/rewritefs"
	"clio/internal/wodev"
)

func main() {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	nv := clio.NewMemNVRAM()
	var now int64
	opt := clio.Options{BlockSize: 512, Degree: 8, NVRAM: nv,
		Now: func() int64 { now += 1000; return now }}
	svc, err := core.New(dev, opt)
	if err != nil {
		log.Fatal(err)
	}
	disk := rewritefs.New(rewritefs.NewStore(512, 1<<16))
	afs, err := atomicfs.New(svc, disk, "/journal")
	if err != nil {
		log.Fatal(err)
	}

	// Set up two accounts.
	setup := afs.Begin()
	_ = setup.Create("alice")
	_ = setup.Create("bob")
	_ = setup.WriteAt("alice", 0, []byte("100"))
	_ = setup.WriteAt("bob", 0, []byte("000"))
	if err := setup.Commit(); err != nil {
		log.Fatal(err)
	}
	show(afs, "initial state")

	// A transfer that dies after debiting alice but before crediting bob.
	boom := errors.New("kernel panic")
	afs.SetApplyHook(func(i int) error {
		if i == 1 {
			return boom
		}
		return nil
	})
	txn := afs.Begin()
	_ = txn.WriteAt("alice", 0, []byte("070"))
	_ = txn.WriteAt("bob", 0, []byte("030"))
	if err := txn.Commit(); !errors.Is(err, boom) {
		log.Fatalf("expected the injected crash, got %v", err)
	}
	afs.SetApplyHook(nil)
	show(afs, "after the crash (torn on disk!)")

	// Recovery: reopen the journal; the committed transfer is replayed and
	// both accounts are consistent again.
	svc.Crash()
	svc2, err := core.Open([]wodev.Device{dev}, opt)
	if err != nil {
		log.Fatal(err)
	}
	defer svc2.Close()
	afs2, err := atomicfs.New(svc2, disk, "/journal")
	if err != nil {
		log.Fatal(err)
	}
	show(afs2, "after recovery (the journal completed the transfer)")
}

func show(a *atomicfs.FS, label string) {
	buf := make([]byte, 3)
	fmt.Printf("%s:\n", label)
	for _, acct := range []string{"alice", "bob"} {
		if err := a.Files().ReadAt(acct, 0, buf); err != nil {
			fmt.Printf("  %-6s <unreadable: %v>\n", acct, err)
			continue
		}
		fmt.Printf("  %-6s balance=%s\n", acct, buf)
	}
}
