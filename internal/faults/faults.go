// Package faults is the unified failure model of the Clio reproduction: a
// fault classification shared by every layer (device, core service, wire
// protocol, server, client), a bounded retry policy with exponential backoff
// and deterministic jitter, and a registry of named fault/crash points that
// tests use to drive each layer through its degradation paths.
//
// The paper (§2.3) distinguishes failures the service masks (transient
// device errors, damaged blocks that are fenced and skipped) from failures
// it merely survives (a torn tail after a crash). This package names those
// classes so each layer can decide mechanically: Transient faults are
// retried, Permanent faults are routed around (invalidate and relocate,
// §2.3.2; fail over to a mirror replica), and Torn losses are skipped by
// readers.
package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"syscall"
	"time"
)

// Class partitions failures by the correct reaction to them.
type Class uint8

const (
	// Unknown is the class of nil and unclassifiable errors.
	Unknown Class = iota
	// Transient faults succeed on retry: an injected or environmental
	// per-operation device error, a latency spike surfacing as a timeout, a
	// reset or half-open connection. Bounded retry with backoff masks them.
	Transient
	// Permanent faults never succeed on retry: damaged media, write-once
	// violations, malformed frames. The layer must route around them
	// (invalidate and relocate past a bad block, fail over to a replica) or
	// surface them.
	Permanent
	// Torn marks data lost at a boundary — an entry chain that runs off the
	// written end after a crash, a partial frame. Readers skip torn data;
	// there is nothing to retry or repair.
	Torn
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	case Torn:
		return "torn"
	default:
		return "unknown"
	}
}

// classified is an error with an explicit fault class. It is both the
// sentinel type returned by New and the wrapper returned by WithClass.
type classified struct {
	class Class
	err   error
}

func (e *classified) Error() string     { return e.err.Error() }
func (e *classified) Unwrap() error     { return e.err }
func (e *classified) FaultClass() Class { return e.class }

// New returns a sentinel error carrying an explicit fault class. Use it to
// declare package-level errors whose class is intrinsic (for example a
// device's transient-fault error).
func New(class Class, msg string) error {
	return &classified{class: class, err: errors.New(msg)}
}

// WithClass wraps err with an explicit fault class, overriding whatever
// Classify would infer. errors.Is/As still see the underlying error.
func WithClass(err error, class Class) error {
	if err == nil {
		return nil
	}
	return &classified{class: class, err: err}
}

// classer is implemented by errors that know their own class.
type classer interface{ FaultClass() Class }

// Classify maps an error to its fault class. Explicitly classified errors
// (New, WithClass) take precedence; network timeouts, resets, EOFs and
// closed-connection errors are Transient (a reconnect or retry can mask
// them); context cancellation is Permanent (the caller gave up; retrying
// would override it); everything else is Permanent.
func Classify(err error) Class {
	if err == nil {
		return Unknown
	}
	var c classer
	if errors.As(err, &c) {
		return c.FaultClass()
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Permanent
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return Transient
	}
	switch {
	case errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe),
		errors.Is(err, net.ErrClosed),
		errors.Is(err, syscall.ECONNRESET),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.ECONNABORTED),
		errors.Is(err, syscall.EPIPE):
		return Transient
	}
	return Permanent
}

// RetryPolicy is a bounded retry schedule with exponential backoff and
// deterministic jitter. The zero value is usable: withDefaults fills in the
// device-retry defaults.
type RetryPolicy struct {
	// MaxAttempts bounds the total number of attempts (first try included).
	// Values < 1 mean the default (4).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt multiplies it by Multiplier, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff.
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor (default 2).
	Multiplier float64
	// Jitter is the fraction of the computed delay randomized symmetrically
	// around it (0.2 → ±20%). Jitter is deterministic in (Seed, attempt).
	Jitter float64
	// FullJitter, when true, replaces the symmetric jitter with the
	// "full jitter" scheme: the delay is drawn uniformly from [0, d), where
	// d is the capped exponential backoff. Clients of a shared service
	// should prefer it — after a common failure (a dead cluster, a leader
	// crash) symmetric jitter keeps every client's retry clock in near
	// lockstep, while full jitter spreads the reconnect storm across the
	// whole window. Jitter is ignored when FullJitter is set; give each
	// client its own Seed or the spread collapses back to lockstep.
	FullJitter bool
	// Seed makes the jitter sequence reproducible; 0 uses a fixed seed.
	Seed int64
	// Sleep is called to wait between attempts; nil means time.Sleep. Tests
	// substitute a virtual sleep.
	Sleep func(time.Duration)
}

// DefaultDevicePolicy is the retry schedule for device operations: a few
// quick attempts, microsecond-scale backoff (device retries are cheap and
// the caller holds the service lock).
func DefaultDevicePolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 200 * time.Microsecond,
		MaxDelay: 10 * time.Millisecond, Multiplier: 4, Jitter: 0.2}
}

// DefaultNetPolicy is the retry schedule for connection-level operations:
// more attempts, millisecond-scale backoff so a restarting server has time
// to come back.
func DefaultNetPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 6, BaseDelay: 5 * time.Millisecond,
		MaxDelay: 500 * time.Millisecond, Multiplier: 2, Jitter: 0.3}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 200 * time.Microsecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 10 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Backoff returns the delay before the given attempt (attempt 1 is the
// first retry). The jitter is a deterministic function of (Seed, attempt) so
// replayed schedules are reproducible.
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.FullJitter {
		d *= jitterFrac(p.Seed, attempt)
	} else if p.Jitter > 0 {
		d += d * p.Jitter * (2*jitterFrac(p.Seed, attempt) - 1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// jitterFrac maps (seed, attempt) to a deterministic, well-mixed fraction
// in [0,1) via splitmix64.
func jitterFrac(seed int64, attempt int) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(attempt)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// Do runs op, retrying while the returned error classifies as Transient, up
// to MaxAttempts total attempts with Backoff sleeps between them. The last
// error is returned when attempts are exhausted; Permanent and Torn errors
// return immediately.
func (p RetryPolicy) Do(op func() error) error {
	return p.DoCtx(context.Background(), op)
}

// DoCtx is Do with cancellation between attempts (a running op is not
// interrupted — Clio device operations are short).
func (p RetryPolicy) DoCtx(ctx context.Context, op func() error) error {
	p = p.withDefaults()
	var err error
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil || Classify(err) != Transient {
			return err
		}
		if attempt >= p.MaxAttempts {
			return fmt.Errorf("faults: %d attempts exhausted: %w", attempt, err)
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		p.Sleep(p.Backoff(attempt))
	}
}

// Crash is the value panicked by a crash point: tests recover it to
// simulate a process dying at a precise named place.
type Crash struct{ Point string }

// Error makes Crash usable as an error value too.
func (c Crash) Error() string { return "faults: crash injected at " + c.Point }

// Registry holds named fault points. Code under test calls Fire(name) at
// instrumented places; tests arm points with errors (or crashes) and a
// trigger budget. A nil *Registry is valid and fires nothing, so production
// paths carry no configuration.
//
// Points instrumented in this repository (see each package):
//
//	core.read.block   – before every device block read
//	core.seal.write   – before every tail-block device write
//	core.nvram.store  – before every NVRAM tail store
type Registry struct {
	mu     sync.Mutex
	points map[string]*point
}

type point struct {
	err       error
	crash     bool
	remaining int // <0 = unlimited
	hits      int64
	fired     int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{points: make(map[string]*point)} }

// Enable arms a fault point to return err for the next `times` firings
// (times < 0 = every firing until Disable).
func (r *Registry) Enable(name string, err error, times int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.points[name]
	if p == nil {
		p = &point{}
		r.points[name] = p
	}
	p.err, p.crash, p.remaining = err, false, times
}

// EnableCrash arms a crash point: the next `times` firings panic with a
// Crash value naming the point (times < 0 = every firing).
func (r *Registry) EnableCrash(name string, times int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p := r.points[name]
	if p == nil {
		p = &point{}
		r.points[name] = p
	}
	p.err, p.crash, p.remaining = nil, true, times
}

// Disable disarms a point (hit counts are kept).
func (r *Registry) Disable(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p := r.points[name]; p != nil {
		p.err, p.crash, p.remaining = nil, false, 0
	}
}

// Hits returns how many times the named point has been reached (armed or
// not).
func (r *Registry) Hits(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p := r.points[name]; p != nil {
		return p.hits
	}
	return 0
}

// Fired returns how many times the named point actually injected a fault.
func (r *Registry) Fired(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p := r.points[name]; p != nil {
		return p.fired
	}
	return 0
}

// PointStat is one fault point's counters, as reported by Points.
type PointStat struct {
	Name  string `json:"name"`
	Hits  int64  `json:"hits"`
	Fired int64  `json:"fired"`
}

// Points returns every known fault point's counters sorted by name. A nil
// registry returns nil, so observability exports need no fault
// configuration to be safe.
func (r *Registry) Points() []PointStat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]PointStat, 0, len(r.points))
	for name, p := range r.points {
		out = append(out, PointStat{Name: name, Hits: p.hits, Fired: p.fired})
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Fire is called at an instrumented site. It returns the armed error (or
// panics at an armed crash point), decrementing the budget; a nil receiver
// or unarmed point returns nil.
func (r *Registry) Fire(name string) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	p := r.points[name]
	if p == nil {
		p = &point{}
		r.points[name] = p
	}
	p.hits++
	if p.remaining == 0 || (p.err == nil && !p.crash) {
		r.mu.Unlock()
		return nil
	}
	if p.remaining > 0 {
		p.remaining--
	}
	p.fired++
	err, crash := p.err, p.crash
	r.mu.Unlock()
	if crash {
		panic(Crash{Point: name})
	}
	return err
}
