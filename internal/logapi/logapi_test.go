package logapi_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"testing"

	"clio/internal/client"
	"clio/internal/core"
	"clio/internal/logapi"
	"clio/internal/server"
	"clio/internal/wodev"
)

// services yields the same service through both adapters.
func services(t *testing.T) (local logapi.Service, remote logapi.Service) {
	t.Helper()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	now := int64(0)
	svc, err := core.New(dev, core.Options{
		BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(svc)
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	cl := client.New(cConn)
	t.Cleanup(func() { cl.Close(); srv.Close(); svc.Close() })
	return logapi.NewLocal(svc), cl
}

// exercise runs the same scenario through a Service.
func exercise(t *testing.T, st logapi.Service, prefix string) {
	t.Helper()
	ctx := context.Background()
	path := "/" + prefix
	id, err := st.CreateLog(ctx, path, 0o644, "t")
	if err != nil {
		t.Fatal(err)
	}
	if got, err := st.Resolve(ctx, path); err != nil || got != id {
		t.Fatalf("Resolve: %v, %v", got, err)
	}
	var stamps []int64
	for i := 0; i < 20; i++ {
		ts, err := st.Append(ctx, id, []byte(fmt.Sprintf("%s-%02d", prefix, i)),
			logapi.AppendOptions{Timestamped: true, Forced: i%5 == 0})
		if err != nil {
			t.Fatal(err)
		}
		stamps = append(stamps, ts)
	}
	cur, err := st.OpenCursor(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	for i := 0; i < 20; i++ {
		e, err := cur.Next(ctx)
		if err != nil {
			t.Fatalf("Next %d: %v", i, err)
		}
		if want := fmt.Sprintf("%s-%02d", prefix, i); string(e.Data) != want {
			t.Fatalf("entry %d: %q", i, e.Data)
		}
	}
	if _, err := cur.Next(ctx); err != io.EOF {
		t.Fatalf("EOF: %v", err)
	}
	if err := cur.SeekTime(ctx, stamps[10]); err != nil {
		t.Fatal(err)
	}
	if e, err := cur.Next(ctx); err != nil || string(e.Data) != fmt.Sprintf("%s-10", prefix) {
		t.Fatalf("SeekTime: %v", err)
	}
	if err := cur.SeekEnd(ctx); err != nil {
		t.Fatal(err)
	}
	if e, err := cur.Prev(ctx); err != nil || string(e.Data) != fmt.Sprintf("%s-19", prefix) {
		t.Fatalf("Prev from end: %v", err)
	}
	if err := cur.SeekStart(ctx); err != nil {
		t.Fatal(err)
	}
	if e, err := cur.Next(ctx); err != nil || string(e.Data) != fmt.Sprintf("%s-00", prefix) {
		t.Fatalf("after SeekStart: %v", err)
	}
	names, err := st.List(ctx, "/")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range names {
		if n == prefix {
			found = true
		}
	}
	if !found {
		t.Errorf("List(/) = %v", names)
	}
}

func TestAdaptersBehaveIdentically(t *testing.T) {
	ctx := context.Background()
	local, remote := services(t)
	exercise(t, local, "local")
	exercise(t, remote, "remote")
	// Cross-visibility: entries written through one adapter read through
	// the other (same underlying service).
	id, err := local.Resolve(ctx, "/remote")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := local.Append(ctx, id, []byte("cross"), logapi.AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	cur, err := remote.OpenCursor(ctx, "/remote")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if err := cur.SeekEnd(ctx); err != nil {
		t.Fatal(err)
	}
	e, err := cur.Prev(ctx)
	if err != nil || string(e.Data) != "cross" {
		t.Fatalf("cross read: %v %q", err, e.Data)
	}
}
