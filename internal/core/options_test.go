package core

import (
	"strings"
	"testing"

	"clio/internal/volume"
	"clio/internal/wodev"
)

func TestNewRejectsGeometryMismatch(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 64})
	if _, err := New(dev, Options{BlockSize: 1024}); err == nil {
		t.Error("block size mismatch accepted")
	}
}

func TestOpenValidatesVolumeParameters(t *testing.T) {
	tc := &testClock{}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 64})
	s, err := New(dev, Options{BlockSize: 256, Degree: 4, Now: tc.Now})
	if err != nil {
		t.Fatal(err)
	}
	s.Crash()
	// Reopen with the wrong degree: refused (the sequence was formatted
	// with N=4 recorded in the volume header).
	if _, err := Open([]wodev.Device{dev}, Options{BlockSize: 256, Degree: 8, Now: tc.Now}); err == nil {
		t.Error("degree mismatch accepted")
	}
	// Reopen with the wrong block size: refused at mount.
	if _, err := Open([]wodev.Device{dev}, Options{BlockSize: 512, Degree: 4, Now: tc.Now}); err == nil {
		t.Error("block size mismatch accepted")
	}
	if _, err := Open(nil, Options{}); err == nil {
		t.Error("no devices accepted")
	}
	// Correct parameters still open.
	s2, err := Open([]wodev.Device{dev}, Options{BlockSize: 256, Degree: 4, Now: tc.Now})
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
}

func TestClosedServiceRefusesEverything(t *testing.T) {
	s, _ := newTestService(t, Options{})
	id := mustCreate(t, s, "/x")
	cur, err := s.OpenCursor("/x")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if _, err := s.Append(id, []byte("x"), AppendOptions{}); err != ErrClosed {
		t.Errorf("append: %v", err)
	}
	if _, err := s.CreateLog("/y", 0, ""); err != ErrClosed {
		t.Errorf("create: %v", err)
	}
	if _, err := s.OpenCursor("/x"); err != ErrClosed {
		t.Errorf("open cursor: %v", err)
	}
	if _, err := cur.Next(); err != ErrClosed {
		t.Errorf("cursor next: %v", err)
	}
	if _, err := s.ReadAt(0, 0); err != ErrClosed {
		t.Errorf("read at: %v", err)
	}
	if err := s.Force(); err != ErrClosed {
		t.Errorf("force: %v", err)
	}
	if err := s.SealTail(); err != ErrClosed {
		t.Errorf("seal: %v", err)
	}
	if err := s.MountVolume(wodev.NewMem(wodev.MemOptions{BlockSize: 256})); err != ErrClosed {
		t.Errorf("mount: %v", err)
	}
}

func TestCatalogPathValidationThroughService(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	if _, err := s.CreateLog("relative", 0, ""); err == nil {
		t.Error("relative path accepted")
	}
	if _, err := s.CreateLog("/missing/child", 0, ""); err == nil {
		t.Error("create under missing parent accepted")
	}
	if _, err := s.Resolve(""); err == nil {
		t.Error("empty path resolved")
	}
	if _, err := s.OpenCursor("/nope"); err == nil {
		t.Error("cursor on missing path")
	}
	if err := s.SetPerms("/nope", 0); err == nil {
		t.Error("SetPerms on missing path")
	}
	if err := s.Retire("/nope"); err == nil {
		t.Error("Retire on missing path")
	}
	if _, err := s.Stat("/nope"); err == nil {
		t.Error("Stat on missing path")
	}
	if _, err := s.List("/nope"); err == nil {
		t.Error("List on missing path")
	}
	if _, err := s.PathOf(999); err == nil {
		t.Error("PathOf unknown id")
	}
}

func TestAllocatorFailureSurfaces(t *testing.T) {
	boom := "allocator exploded"
	tc := &testClock{}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 8})
	s, err := New(dev, Options{
		BlockSize: 256, Degree: 4, Now: tc.Now,
		Allocate: func(_ volume.SeqID, _ uint32, _ uint64, _ int) (wodev.Device, error) {
			return nil, errString(boom)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := mustCreate(t, s, "/x")
	var lastErr error
	for i := 0; i < 50 && lastErr == nil; i++ {
		_, lastErr = s.Append(id, make([]byte, 100), AppendOptions{Forced: true})
	}
	if lastErr == nil || !strings.Contains(lastErr.Error(), boom) {
		t.Errorf("allocator failure not surfaced: %v", lastErr)
	}
}

type errString string

func (e errString) Error() string { return string(e) }
