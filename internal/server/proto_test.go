package server

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, OpAppend, 7, 42, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, StatusOK, 7, 0, nil); err != nil {
		t.Fatal(err)
	}
	op, seq, tr, p, err := ReadFrame(&buf)
	if err != nil || op != OpAppend || seq != 7 || tr != 42 || string(p) != "payload" {
		t.Fatalf("frame 1: %d %d %d %q %v", op, seq, tr, p, err)
	}
	op, seq, tr, p, err = ReadFrame(&buf)
	if err != nil || op != StatusOK || seq != 7 || tr != 0 || len(p) != 0 {
		t.Fatalf("frame 2: %d %d %d %q %v", op, seq, tr, p, err)
	}
	if _, _, _, _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("empty stream: %v", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 1, 0, 0, make([]byte, MaxFrame)); err != ErrFrameTooLarge {
		t.Errorf("oversize write: %v", err)
	}
	// A poisoned length prefix must be rejected before allocation.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, _, _, _, err := ReadFrame(&buf); err != ErrFrameTooLarge {
		t.Errorf("oversize read: %v", err)
	}
}

func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, 7, 1, 0, []byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, _, _, _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestFrameProperty(t *testing.T) {
	f := func(op byte, seq, trace uint64, payload []byte) bool {
		if len(payload)+17 > MaxFrame {
			return true
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, op, seq, trace, payload); err != nil {
			return false
		}
		gotOp, gotSeq, gotTr, gotP, err := ReadFrame(&buf)
		return err == nil && gotOp == op && gotSeq == seq && gotTr == trace && bytes.Equal(gotP, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDecoderConsumesInOrder(t *testing.T) {
	p := PutString(nil, "hello")
	p = PutBytes(p, []byte{1, 2, 3})
	var d *Decoder = NewDecoder(p)
	s, err := d.String()
	if err != nil || s != "hello" {
		t.Fatalf("String: %q %v", s, err)
	}
	bts, err := d.Bytes()
	if err != nil || !bytes.Equal(bts, []byte{1, 2, 3}) {
		t.Fatalf("Bytes: %v %v", bts, err)
	}
	if d.Remaining() != 0 {
		t.Errorf("Remaining = %d", d.Remaining())
	}
	// Reading past the end fails cleanly.
	if _, err := d.Byte(); err == nil {
		t.Error("read past end accepted")
	}
	if _, err := d.Uint16(); err == nil {
		t.Error("u16 past end accepted")
	}
	if _, err := d.Uint32(); err == nil {
		t.Error("u32 past end accepted")
	}
	if _, err := d.Int64(); err == nil {
		t.Error("i64 past end accepted")
	}
}

func TestDecoderRejectsOversizeString(t *testing.T) {
	// Length prefix claims more than available.
	d := NewDecoder([]byte{200, 1, 'x'})
	if _, err := d.String(); err == nil {
		t.Error("oversize string accepted")
	}
}
