package clio_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"

	"clio"
	"clio/internal/archive"
	"clio/internal/atomicfs"
	"clio/internal/client"
	"clio/internal/core"
	"clio/internal/histfs"
	"clio/internal/mailstore"
	"clio/internal/rewritefs"
	"clio/internal/scrub"
	"clio/internal/server"
	"clio/internal/wodev"
)

// TestFullSystemIntegration is the capstone: a file-backed store served over
// TCP to concurrent clients running all three history-based applications,
// then a crash, recovery, verification (fsck), incremental backup, restore,
// and a final cross-check that the restored sequence holds the same data.
func TestFullSystemIntegration(t *testing.T) {
	dir := t.TempDir()
	st, err := clio.CreateStore(dir, clio.DirOptions{VolumeBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.NewStore(st)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	// Three concurrent application clients over TCP.
	var wg sync.WaitGroup
	errs := make(chan error, 3)

	wg.Add(1)
	go func() { // the mail agent
		defer wg.Done()
		cl, err := client.Dial(addr)
		if err != nil {
			errs <- err
			return
		}
		defer cl.Close()
		ctx := context.Background()
		ms, err := mailstore.New(ctx, cl, "/mail")
		if err != nil {
			errs <- err
			return
		}
		if err := ms.CreateMailbox(ctx, "ops"); err != nil {
			errs <- err
			return
		}
		for i := 0; i < 25; i++ {
			if _, err := ms.Deliver(ctx, "ops", "monitor", fmt.Sprintf("alert %d", i), "disk almost full"); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // the versioned-file service
		defer wg.Done()
		cl, err := client.Dial(addr)
		if err != nil {
			errs <- err
			return
		}
		defer cl.Close()
		ctx := context.Background()
		fs, err := histfs.New(ctx, cl, "/histfs")
		if err != nil {
			errs <- err
			return
		}
		if err := fs.Create(ctx, "config", 0o644); err != nil {
			errs <- err
			return
		}
		for i := 0; i < 15; i++ {
			if err := fs.Truncate(ctx, "config", 0); err != nil {
				errs <- err
				return
			}
			if err := fs.Append(ctx, "config", []byte(fmt.Sprintf("version=%d", i))); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // a plain audit logger
		defer wg.Done()
		cl, err := client.Dial(addr)
		if err != nil {
			errs <- err
			return
		}
		defer cl.Close()
		id, err := cl.CreateLog(context.Background(), "/audit", 0o600, "sec")
		if err != nil {
			errs <- err
			return
		}
		for i := 0; i < 100; i++ {
			if _, err := cl.Append(context.Background(), id, []byte(fmt.Sprintf("audit-%03d", i)),
				client.AppendOptions{Timestamped: true, Forced: i%10 == 0}); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Force everything durable, then crash the whole server.
	ctx := context.Background()
	if err := st.Force(ctx); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	st.Crash()

	// Reopen from disk (recovery: end-find, entrymap rebuild, catalog
	// replay, NVRAM tail restore).
	st2, err := clio.OpenStore(dir, clio.DirOptions{VolumeBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	rep := st2.LastRecovery()
	if rep.CatalogEntries == 0 {
		t.Error("no catalog records replayed")
	}

	// All three applications see their state.
	ms, err := mailstore.New(ctx, st2, "/mail")
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := ms.List(ctx, "ops", true)
	if err != nil || len(msgs) != 25 {
		t.Fatalf("mail after recovery: %d, %v", len(msgs), err)
	}
	fs2, err := histfs.New(ctx, st2, "/histfs")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := fs2.Read(ctx, "config")
	if err != nil || string(cfg) != "version=14" {
		t.Fatalf("config after recovery: %q, %v", cfg, err)
	}
	cur, err := st2.OpenCursor(ctx, "/audit")
	if err != nil {
		t.Fatal(err)
	}
	audit := 0
	for {
		if _, err := cur.Next(ctx); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		audit++
	}
	if audit != 100 {
		t.Fatalf("audit entries after recovery: %d", audit)
	}

	// The atomic-update extension shares the same sequence.
	afs, err := atomicfs.New(st2.Service(0), rewritefs.New(rewritefs.NewStore(1024, 1<<16)), "/wal")
	if err != nil {
		t.Fatal(err)
	}
	txn := afs.Begin()
	_ = txn.Create("ledger")
	_ = txn.WriteAt("ledger", 0, []byte("balanced"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	// Seal the staged tail onto the medium (as one would before removing
	// a volume), close cleanly, then fsck the store on disk.
	if err := st2.Service(0).SealTail(); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	devs, err := openVolumeFiles(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	srep, err := scrub.Volumes(devs, scrub.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range srep.Problems {
		t.Errorf("fsck: %s", p)
	}

	// Incremental backup, then restore and compare the audit log.
	arch := archive.NewDir(t.TempDir())
	if _, err := archive.Backup(ctx, devs, arch); err != nil {
		t.Fatal(err)
	}
	for _, d := range devs {
		d.Close()
	}
	restored, err := archive.Restore(ctx, arch)
	if err != nil {
		t.Fatal(err)
	}
	svc3, err := core.Open(restored, core.Options{BlockSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer svc3.Close()
	cur3, err := svc3.OpenCursor("/audit")
	if err != nil {
		t.Fatal(err)
	}
	var first []byte
	n := 0
	for {
		e, err := cur3.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			first = e.Data
		}
		n++
	}
	if n != 100 || !bytes.Equal(first, []byte("audit-000")) {
		t.Fatalf("restored audit: %d entries, first %q", n, first)
	}
}

func openVolumeFiles(t *testing.T, dir string) ([]wodev.Device, error) {
	t.Helper()
	var out []wodev.Device
	for i := 0; ; i++ {
		dev, err := wodev.OpenFile(fmt.Sprintf("%s/vol-%08d.clio", dir, i), wodev.FileOptions{Capacity: 4096})
		if err != nil {
			if i == 0 {
				return nil, err
			}
			break
		}
		if dev.Written() == 0 {
			dev.Close()
			break
		}
		out = append(out, dev)
	}
	return out, nil
}

// TestShardedStoreCrashMidSealRecovers crashes a multi-volume, multi-shard
// file-backed store mid-seal — durable entries on every shard, plus a
// partial tail block staged only in each shard's NVRAM sidecar — and
// verifies reopening recovers every shard in one step: the shard count is
// detected from the directory, each shard reports its own recovery, the
// catalog resolves every path to its pre-crash id, and every entry written
// before the crash (sealed or staged) reads back in order.
func TestShardedStoreCrashMidSealRecovers(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	opts := clio.DirOptions{Shards: shards, VolumeBlocks: 48}
	opts.BlockSize = 512
	st, err := clio.CreateStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Enough distinct root segments that every shard owns at least one log.
	paths := make([]string, 12)
	ids := make([]clio.ID, len(paths))
	covered := make(map[int]bool)
	for i := range paths {
		paths[i] = fmt.Sprintf("/seg%02d", i)
		id, err := st.CreateLog(ctx, paths[i], 0, "")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		covered[id.Shard()] = true
	}
	if len(covered) != shards {
		t.Fatalf("12 root segments covered %d of %d shards", len(covered), shards)
	}

	// Write until every shard has spilled into a second volume file, so
	// recovery walks a multi-volume sequence on every shard.
	counts := make([]int, len(paths))
	payload := bytes.Repeat([]byte("x"), 400)
	for round := 0; ; round++ {
		for i, id := range ids {
			data := append([]byte(fmt.Sprintf("%s-%04d|", paths[i], counts[i])), payload...)
			if _, err := st.Append(ctx, id, data, clio.AppendOptions{}); err != nil {
				t.Fatal(err)
			}
			counts[i]++
		}
		all := true
		for s := 0; s < shards; s++ {
			if st.Service(s).End() <= 56 {
				all = false
			}
		}
		if all {
			break
		}
		if round > 2000 {
			t.Fatal("shards never crossed the first volume boundary")
		}
	}
	if err := st.Force(ctx); err != nil {
		t.Fatal(err)
	}
	// A few more forced entries staged only in the NVRAM-held partial tail
	// block: the crash happens "mid-seal", before any of them reach the
	// write-once device itself.
	for i, id := range ids[:shards] {
		data := []byte(fmt.Sprintf("%s-%04d|staged", paths[i], counts[i]))
		if _, err := st.Append(ctx, id, data, clio.AppendOptions{Forced: true}); err != nil {
			t.Fatal(err)
		}
		counts[i]++
	}
	st.Crash()

	// Reopen: the shard count comes from the directory layout (only the
	// block geometry must be supplied, as for any open).
	reopen := clio.DirOptions{VolumeBlocks: 48}
	reopen.BlockSize = 512
	st2, err := clio.OpenStore(dir, reopen)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Shards() != shards {
		t.Fatalf("reopened store has %d shards, want %d", st2.Shards(), shards)
	}
	reports := st2.LastRecoveryByShard()
	if len(reports) != shards {
		t.Fatalf("%d recovery reports, want %d", len(reports), shards)
	}
	for s, rep := range reports {
		if rep.SealedBlocks <= 48 {
			t.Errorf("shard %d recovered only %d sealed blocks, want a multi-volume sequence (> 48)", s, rep.SealedBlocks)
		}
		if rep.CatalogEntries == 0 {
			t.Errorf("shard %d replayed no catalog records", s)
		}
	}

	// Catalog preserved: same ids, and every entry is back.
	for i, p := range paths {
		id, err := st2.Resolve(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if id != ids[i] {
			t.Fatalf("%s resolves to %v after recovery, was %v", p, id, ids[i])
		}
		cur, err := st2.OpenCursor(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			e, err := cur.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			wantPrefix := fmt.Sprintf("%s-%04d|", p, n)
			if !bytes.HasPrefix(e.Data, []byte(wantPrefix)) {
				t.Fatalf("%s entry %d starts %q, want prefix %q", p, n, e.Data[:20], wantPrefix)
			}
			n++
		}
		cur.Close()
		if n != counts[i] {
			t.Fatalf("%s holds %d entries after recovery, want %d", p, n, counts[i])
		}
	}
}

// TestShardedStoreCheckpointedCrashRecovers is the checkpointed variant of
// the crash test above: every shard emits recovery checkpoints as it grows,
// a crash leaves durable entries plus NVRAM-staged tails, and the reopen
// must restore every shard from its checkpoint — replaying only the blocks
// past it, not the whole multi-volume sequence — while the catalog and
// every entry (sealed or staged) come back intact.
func TestShardedStoreCheckpointedCrashRecovers(t *testing.T) {
	const (
		shards   = 3
		interval = 8
	)
	dir := t.TempDir()
	opts := clio.DirOptions{Shards: shards, VolumeBlocks: 48}
	opts.BlockSize = 512
	opts.CheckpointInterval = interval
	st, err := clio.CreateStore(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	paths := make([]string, 12)
	ids := make([]clio.ID, len(paths))
	for i := range paths {
		paths[i] = fmt.Sprintf("/seg%02d", i)
		id, err := st.CreateLog(ctx, paths[i], 0, "")
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	counts := make([]int, len(paths))
	payload := bytes.Repeat([]byte("x"), 400)
	for round := 0; ; round++ {
		for i, id := range ids {
			data := append([]byte(fmt.Sprintf("%s-%04d|", paths[i], counts[i])), payload...)
			if _, err := st.Append(ctx, id, data, clio.AppendOptions{}); err != nil {
				t.Fatal(err)
			}
			counts[i]++
		}
		all := true
		for s := 0; s < shards; s++ {
			if st.Service(s).End() <= 56 {
				all = false
			}
		}
		if all {
			break
		}
		if round > 2000 {
			t.Fatal("shards never crossed the first volume boundary")
		}
	}
	if err := st.Force(ctx); err != nil {
		t.Fatal(err)
	}
	// Every shard must have checkpointed organically by now (> 56 sealed
	// blocks at interval 8).
	for s := 0; s < shards; s++ {
		if st.Service(s).Stats().Checkpoints == 0 {
			t.Fatalf("shard %d sealed %d blocks without a checkpoint", s, st.Service(s).End())
		}
	}
	// Staged-only tail entries on a few shards, then crash mid-seal.
	for i, id := range ids[:shards] {
		data := []byte(fmt.Sprintf("%s-%04d|staged", paths[i], counts[i]))
		if _, err := st.Append(ctx, id, data, clio.AppendOptions{Forced: true}); err != nil {
			t.Fatal(err)
		}
		counts[i]++
	}
	st.Crash()

	reopen := clio.DirOptions{VolumeBlocks: 48}
	reopen.BlockSize = 512
	reopen.CheckpointInterval = interval
	st2, err := clio.OpenStore(dir, reopen)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()

	// The replay window per shard is bounded by the interval plus the
	// checkpoint's own blocks and in-flight tail activity — a constant,
	// regardless of each shard's multi-volume history.
	const slack = 16
	for s, rep := range st2.LastRecoveryByShard() {
		if !rep.CheckpointUsed {
			t.Errorf("shard %d did not restore from its checkpoint: %+v", s, rep)
		}
		if rep.BlocksReplayed > interval+slack {
			t.Errorf("shard %d replayed %d blocks, want <= %d", s, rep.BlocksReplayed, interval+slack)
		}
		if rep.SealedBlocks <= 48 {
			t.Errorf("shard %d recovered only %d sealed blocks, want a multi-volume sequence", s, rep.SealedBlocks)
		}
	}
	merged := st2.LastRecovery()
	if merged.CheckpointsUsed != shards {
		t.Errorf("merged CheckpointsUsed = %d, want %d", merged.CheckpointsUsed, shards)
	}
	if merged.TailsRestored == 0 {
		t.Error("no shard restored its NVRAM-staged tail")
	}

	for i, p := range paths {
		id, err := st2.Resolve(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if id != ids[i] {
			t.Fatalf("%s resolves to %v after recovery, was %v", p, id, ids[i])
		}
		cur, err := st2.OpenCursor(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			e, err := cur.Next(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			wantPrefix := fmt.Sprintf("%s-%04d|", p, n)
			if !bytes.HasPrefix(e.Data, []byte(wantPrefix)) {
				t.Fatalf("%s entry %d starts %q, want prefix %q", p, n, e.Data[:20], wantPrefix)
			}
			n++
		}
		cur.Close()
		if n != counts[i] {
			t.Fatalf("%s holds %d entries after recovery, want %d", p, n, counts[i])
		}
	}
}
