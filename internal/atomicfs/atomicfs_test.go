package atomicfs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"clio/internal/core"
	"clio/internal/rewritefs"
	"clio/internal/wodev"
)

func newRig(t *testing.T) (*FS, *core.Service, *wodev.MemDevice, core.Options) {
	t.Helper()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	now := int64(0)
	opt := core.Options{BlockSize: 512, Degree: 8, NVRAM: core.NewMemNVRAM(),
		Now: func() int64 { now += 1000; return now }}
	svc, err := core.New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	fs := rewritefs.New(rewritefs.NewStore(512, 1<<16))
	a, err := New(svc, fs, "/wal")
	if err != nil {
		t.Fatal(err)
	}
	return a, svc, dev, opt
}

func TestCommitApplies(t *testing.T) {
	a, svc, _, _ := newRig(t)
	defer svc.Close()
	txn := a.Begin()
	if err := txn.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := txn.WriteAt("f", 0, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 11)
	if err := a.Files().ReadAt("f", 0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Errorf("read %q", got)
	}
	// Reuse after commit is rejected.
	if err := txn.WriteAt("f", 0, []byte("x")); !errors.Is(err, ErrTxnClosed) {
		t.Errorf("write after commit: %v", err)
	}
	if err := txn.Commit(); !errors.Is(err, ErrTxnClosed) {
		t.Errorf("double commit: %v", err)
	}
}

func TestAbortAppliesNothing(t *testing.T) {
	a, svc, _, _ := newRig(t)
	defer svc.Close()
	txn := a.Begin()
	_ = txn.Create("f")
	txn.Abort()
	if _, err := a.Files().Size("f"); !errors.Is(err, rewritefs.ErrNotFound) {
		t.Errorf("aborted create applied: %v", err)
	}
}

func TestCrashMidApplyRecovers(t *testing.T) {
	// A transaction touches two files; the "process" dies after applying
	// only the first update. Recovery must complete the transaction so
	// both files reflect it — atomicity.
	a, svc, dev, opt := newRig(t)
	setup := a.Begin()
	_ = setup.Create("acct-a")
	_ = setup.Create("acct-b")
	_ = setup.WriteAt("acct-a", 0, []byte("balance=100"))
	_ = setup.WriteAt("acct-b", 0, []byte("balance=000"))
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("power failure")
	a.SetApplyHook(func(i int) error {
		if i == 1 {
			return boom // die before the second update
		}
		return nil
	})
	txn := a.Begin()
	_ = txn.WriteAt("acct-a", 0, []byte("balance=070"))
	_ = txn.WriteAt("acct-b", 0, []byte("balance=030"))
	err := txn.Commit()
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("commit: %v", err)
	}
	// The FS is now torn: a updated, b not.
	buf := make([]byte, 11)
	_ = a.Files().ReadAt("acct-b", 0, buf)
	if string(buf) == "balance=030" {
		t.Fatal("test setup wrong: b already updated")
	}

	// Crash the service; the journal (forced) survives. Note the torn
	// rewritefs state survives too — it models the on-disk FS.
	svc.Crash()
	svc2, err := core.Open([]wodev.Device{dev}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	a2, err := New(svc2, a.Files(), "/wal") // recovery replays the journal
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []struct{ name, want string }{
		{"acct-a", "balance=070"}, {"acct-b", "balance=030"},
	} {
		if err := a2.Files().ReadAt(f.name, 0, buf); err != nil {
			t.Fatal(err)
		}
		if string(buf) != f.want {
			t.Errorf("%s = %q, want %q", f.name, buf, f.want)
		}
	}
}

func TestUncommittedTxnInvisibleAfterCrash(t *testing.T) {
	a, svc, dev, opt := newRig(t)
	setup := a.Begin()
	_ = setup.Create("f")
	_ = setup.WriteAt("f", 0, []byte("original"))
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	// Build a transaction but crash before Commit: nothing was journaled.
	txn := a.Begin()
	_ = txn.WriteAt("f", 0, []byte("phantom!"))
	svc.Crash()

	svc2, err := core.Open([]wodev.Device{dev}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	freshFS := rewritefs.New(rewritefs.NewStore(512, 1<<16))
	a2, err := New(svc2, freshFS, "/wal")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if err := a2.Files().ReadAt("f", 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "original" {
		t.Errorf("recovered %q", buf)
	}
}

func TestFullRebuildFromEmptyFS(t *testing.T) {
	// The journal alone reconstructs the whole file system — the
	// history-based claim of §4 applied to regular files.
	a, svc, dev, opt := newRig(t)
	want := map[string][]byte{}
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("file%d", i)
		data := bytes.Repeat([]byte{byte('a' + i)}, 100*(i+1))
		txn := a.Begin()
		_ = txn.Create(name)
		_ = txn.WriteAt(name, 0, data)
		if err := txn.Commit(); err != nil {
			t.Fatal(err)
		}
		want[name] = data
	}
	// Overwrite one interior region in a later transaction.
	txn := a.Begin()
	_ = txn.WriteAt("file2", 50, []byte("PATCH"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	copy(want["file2"][50:], "PATCH")

	svc.Crash()
	svc2, err := core.Open([]wodev.Device{dev}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	a2, err := New(svc2, rewritefs.New(rewritefs.NewStore(512, 1<<16)), "/wal")
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range want {
		got := make([]byte, len(data))
		if err := a2.Files().ReadAt(name, 0, got); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%s content mismatch", name)
		}
	}
}

func TestCheckpointBoundsReplay(t *testing.T) {
	a, svc, dev, opt := newRig(t)
	txn := a.Begin()
	_ = txn.Create("f")
	_ = txn.WriteAt("f", 0, []byte("v1"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := a.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	txn = a.Begin()
	_ = txn.WriteAt("f", 0, []byte("v2"))
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}

	svc.Crash()
	svc2, err := core.Open([]wodev.Device{dev}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	// Reuse the applied FS: recovery must replay only the post-checkpoint
	// transaction (replaying the first would be harmless but we verify the
	// checkpoint is honored by rebuilding from a FS that already has v1).
	fs := rewritefs.New(rewritefs.NewStore(512, 1<<16))
	if err := fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append("f", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	a2, err := New(svc2, fs, "/wal")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	if err := a2.Files().ReadAt("f", 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "v2" {
		t.Errorf("after checkpointed recovery: %q", buf)
	}
}

func TestTruncateAndGrow(t *testing.T) {
	a, svc, _, _ := newRig(t)
	defer svc.Close()
	txn := a.Begin()
	_ = txn.Create("f")
	_ = txn.WriteAt("f", 0, []byte("0123456789"))
	_ = txn.Truncate("f", 4)
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if err := a.Files().ReadAt("f", 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "0123" {
		t.Errorf("after truncate: %q", buf)
	}
}

func TestEncodeDecodeCommit(t *testing.T) {
	ops := []op{
		{kind: opCreate, file: "a"},
		{kind: opWriteAt, file: "b", offset: 42, data: []byte("xyz")},
		{kind: opTruncate, file: "c", offset: 7},
	}
	got, err := decodeCommit(encodeCommit(ops))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1].file != "b" || got[1].offset != 42 || string(got[1].data) != "xyz" {
		t.Errorf("round trip: %+v", got)
	}
	if _, err := decodeCommit([]byte{recCommit}); err == nil {
		t.Error("truncated commit accepted")
	}
	if _, err := decodeCommit([]byte{99, 0}); err == nil {
		t.Error("wrong kind accepted")
	}
}
