package scrub

import (
	"fmt"
	"math/rand"
	"testing"

	"clio/internal/core"
	"clio/internal/volume"
	"clio/internal/wodev"
)

// TestScrubAsOracleForRandomWorkloads uses the scrubber as a whole-system
// invariant oracle: for random workloads (mixed sizes, forced flags,
// fragmentation, boundary crossings, crashes), a volume written by the
// service must scrub clean; after random damage, the only problems reported
// must be attributable to the damaged blocks.
func TestScrubAsOracleForRandomWorkloads(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Small volumes so workloads span several of them: the scrub then
		// also checks cross-volume invariants (global entrymap spans,
		// catalog snapshots).
		allDevs := []wodev.Device{wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 48})}
		now := int64(0)
		opt := core.Options{BlockSize: 256, Degree: 4, NVRAM: core.NewMemNVRAM(),
			Now: func() int64 { now += 1000; return now },
			Allocate: func(_ volume.SeqID, _ uint32, _ uint64, blockSize int) (wodev.Device, error) {
				d := wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: 48})
				allDevs = append(allDevs, d)
				return d, nil
			}}
		svc, err := core.New(allDevs[0], opt)
		if err != nil {
			return false
		}
		ids := make([]uint16, 3)
		for i := range ids {
			id, err := svc.CreateLog(fmt.Sprintf("/l%d", i), 0, "")
			if err != nil {
				return false
			}
			ids[i] = id
		}
		ops := 100 + rng.Intn(200)
		crashes := 0
		for i := 0; i < ops; i++ {
			id := ids[rng.Intn(len(ids))]
			size := rng.Intn(600) // some entries fragment over 256B blocks
			if _, err := svc.Append(id, make([]byte, size), core.AppendOptions{
				Timestamped: rng.Intn(2) == 0,
				Forced:      rng.Intn(4) == 0,
			}); err != nil {
				return false
			}
			// Occasionally crash and recover mid-workload.
			if rng.Intn(60) == 0 {
				svc.Crash()
				crashes++
				if svc, err = core.Open(allDevs, opt); err != nil {
					return false
				}
			}
		}
		if err := svc.Force(); err != nil {
			return false
		}
		svc.Crash()

		// A service-written volume scrubs clean — except that a crash can
		// legitimately tear an unforced fragmented entry whose prefix had
		// already been sealed to the write-once medium (readers skip such
		// chains; the medium cannot be unwritten).
		rep, err := Volumes(allDevs, Options{})
		if err != nil {
			return false
		}
		for _, p := range rep.Problems {
			if crashes > 0 && (p.Kind == "torn-chain" || p.Kind == "orphan-fragment") {
				continue
			}
			t.Logf("seed %d (crashes=%d): unexpected problem: %s", seed, crashes, p)
			return false
		}
		if crashes == 0 && !rep.Clean() {
			t.Logf("seed %d: problems without crashes: %v", seed, rep.Problems)
			return false
		}

		// Damage a random written block; the scrubber must report it (and
		// possibly consequent torn chains / entrymap gaps), nothing else
		// unexplained.
		if rep.Blocks > 2 {
			victim := 1 + rng.Intn(rep.Blocks-1)
			garbage := make([]byte, 256)
			rng.Read(garbage)
			// Map the global victim block onto its volume.
			vdev := allDevs[0].(*wodev.MemDevice)
			local := victim
			for _, d := range allDevs {
				md := d.(*wodev.MemDevice)
				cap := md.Capacity() - 1
				if local < cap {
					vdev = md
					break
				}
				local -= cap
			}
			if err := vdev.Damage(local+1, garbage); err != nil {
				t.Logf("seed %d: damage: %v", seed, err)
				return false
			}
			rep2, err := Volumes(allDevs, Options{})
			if err != nil {
				t.Logf("seed %d: scrub after damage: %v", seed, err)
				return false
			}
			if rep2.Clean() {
				t.Logf("seed %d: damage to block %d undetected", seed, victim)
				return false
			}
			for _, p := range rep2.Problems {
				switch p.Kind {
				case "bad-block", "torn-chain", "orphan-fragment", "entrymap-mismatch", "ts-order":
					// All plausibly caused by the damaged block.
				default:
					t.Logf("seed %d: unexplained problem kind %q: %s", seed, p.Kind, p)
					return false
				}
			}
		}
		return true
	}
	// Fixed seeds keep failures reproducible.
	for seed := int64(1); seed <= 40; seed++ {
		if !prop(seed) {
			t.Fatalf("property failed for seed %d", seed)
		}
	}
}
