// Package analytic holds the closed-form cost models of the paper's §3, so
// the benchmark harness can print "theory" next to "measured" for every
// figure:
//
//   - Figure 3: the average number of entrymap log entries examined to
//     locate an entry d blocks away without caching — "it can be located by
//     examining, on average, about n = 2·log_N(d) entrymap log entries";
//   - Figure 4: the average number of blocks examined to reconstruct
//     entrymap information at recovery — "roughly n = (N·log_N b)/2";
//   - §3.5: the space-overhead bound per log entry,
//     o_e ≤ c·(h + a·(N/8 + c'))/(N−1).
package analytic

import "math"

// logN returns log base n of x (x, n > 1).
func logN(n int, x float64) float64 {
	return math.Log(x) / math.Log(float64(n))
}

// Fig3LocateEntries is the Figure 3 curve: the expected number of entrymap
// log entries examined to locate an entry d blocks away with no caching,
// n ≈ 2·log_N(d). At exact power-of-N distances d = N^k the count is the
// 2k−1 of Table 1 (k levels up, k−1 down).
func Fig3LocateEntries(n int, d float64) float64 {
	if d <= 1 {
		return 0
	}
	return 2 * logN(n, d)
}

// Table1Entries is the exact Table 1 count for a search distance of N^k:
// 2k−1 entrymap entries.
func Table1Entries(k int) int {
	if k <= 0 {
		return 0
	}
	return 2*k - 1
}

// Table1Blocks is Table 1's "# of disk blocks read" for distance N^k: the
// entrymap entries' blocks plus the start and target blocks (2k+1; one
// block at distance 0).
func Table1Blocks(k int) int {
	if k <= 0 {
		return 1
	}
	return 2*k + 1
}

// Fig4RecoveryBlocks is the Figure 4 curve: the expected number of blocks
// examined to reconstruct missing entrymap information for a volume with b
// written blocks, n = (N·log_N b)/2 on average (N·log_N b worst case).
func Fig4RecoveryBlocks(n int, b float64) float64 {
	if b <= 1 {
		return 0
	}
	return float64(n) * logN(n, b) / 2
}

// EntrymapEntrySize is the §3.5 model of the average entrymap log entry
// size: ē = h + a·(N/8 + cPrime) bytes, where h is the entry header size, a
// the average number of log files referenced, and cPrime the per-reference
// constant (id encoding, ~2 bytes).
func EntrymapEntrySize(h float64, n int, a, cPrime float64) float64 {
	return h + a*(float64(n)/8+cPrime)
}

// SpaceOverheadBound is §3.5's bound on the average per-entry space
// overhead due to entrymap entries: o_e ≤ c·ē/(N−1), where c is the
// fraction of a block the average entry occupies. With h=4, N=16, c'=2 this
// is the paper's 0.27·c·(a+1) bytes.
func SpaceOverheadBound(h float64, n int, a, c, cPrime float64) float64 {
	return c * EntrymapEntrySize(h, n, a, cPrime) / float64(n-1)
}

// HeaderOverheadPercent is §2.2's header-overhead figure: with the minimal
// 4-byte header, the overhead for an entry with d bytes of client data is
// 400/(d+4) percent.
func HeaderOverheadPercent(d float64) float64 {
	return 400 / (d + 4)
}

// BinaryTreeLocateReads models the Daniels et al. comparison (§5): a binary
// tree over m entries needs ~log2(distance) reads to locate a distant
// entry.
func BinaryTreeLocateReads(distance float64) float64 {
	if distance < 1 {
		return 1
	}
	return math.Log2(distance) + 1
}

// FindEndProbes is the §3.4 cost of locating the end of the written portion
// by binary search: log2(V) probing reads for a V-block volume.
func FindEndProbes(v float64) float64 {
	if v <= 1 {
		return 1
	}
	return math.Log2(v)
}

// Section4ReadCost is §4's storage-model cost example: the expected cost of
// a 1-kilobyte retrieval given a cache hit ratio h, a cache access cost, and
// the log-device miss cost ("100 ms if the data is read from a log device
// (on a cache miss), 30 ms if ... from a magnetic disk cache, and 1 ms if
// ... from a RAM cache").
func Section4ReadCost(hitRatio, cacheMs, missMs float64) float64 {
	return hitRatio*cacheMs + (1-hitRatio)*missMs
}

// Section4BreakEvenRatio returns the fraction of the disk cache's hit ratio
// the RAM cache must reach for equal read performance: the paper's "as long
// as the cache hit ratio for the RAM cache is at least 70% of the cache hit
// ratio of the disk cache, then the RAM cache has the better read access
// performance" (with ramMs=1, diskMs=30, logMs=100 this returns ~0.70).
func Section4BreakEvenRatio(ramMs, diskMs, logMs float64) float64 {
	// Solve hRam such that hRam*ram + (1-hRam)*log = hDisk*disk + (1-hDisk)*log
	// → hRam/hDisk = (log-disk)/(log-ram).
	return (logMs - diskMs) / (logMs - ramMs)
}
