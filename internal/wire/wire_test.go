package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestUint16RoundTrip(t *testing.T) {
	for _, v := range []uint16{0, 1, 0x7FFF, 0x8000, 0xFFFF} {
		b := PutUint16(nil, v)
		if len(b) != 2 {
			t.Fatalf("PutUint16 wrote %d bytes", len(b))
		}
		got, err := Uint16(b)
		if err != nil {
			t.Fatalf("Uint16: %v", err)
		}
		if got != v {
			t.Errorf("round trip %#x -> %#x", v, got)
		}
	}
}

func TestUint16Short(t *testing.T) {
	if _, err := Uint16([]byte{1}); err != ErrShortBuffer {
		t.Errorf("want ErrShortBuffer, got %v", err)
	}
}

func TestUint32RoundTrip(t *testing.T) {
	for _, v := range []uint32{0, 1, 0xDEADBEEF, 0xFFFFFFFF} {
		b := PutUint32(nil, v)
		got, err := Uint32(b)
		if err != nil || got != v {
			t.Errorf("round trip %#x -> %#x err=%v", v, got, err)
		}
	}
	if _, err := Uint32([]byte{1, 2, 3}); err != ErrShortBuffer {
		t.Errorf("want ErrShortBuffer, got %v", err)
	}
}

func TestUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := PutUint64(nil, v)
		got, err := Uint64(b)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := Uint64(make([]byte, 7)); err != ErrShortBuffer {
		t.Errorf("want ErrShortBuffer, got %v", err)
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := PutUvarint(nil, v)
		got, n, err := Uvarint(b)
		return err == nil && got == v && n == len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUvarintErrors(t *testing.T) {
	if _, _, err := Uvarint(nil); err != ErrShortBuffer {
		t.Errorf("empty: want ErrShortBuffer, got %v", err)
	}
	over := bytes.Repeat([]byte{0xFF}, 10)
	over = append(over, 1)
	if _, _, err := Uvarint(over); err != ErrOverflow {
		t.Errorf("overlong: want ErrOverflow, got %v", err)
	}
}

func TestPackVerIDRoundTrip(t *testing.T) {
	for ver := uint8(0); ver <= 0xF; ver++ {
		for _, id := range []uint16{0, 1, 42, 0xABC, MaxLogID} {
			packed, err := PackVerID(ver, id)
			if err != nil {
				t.Fatalf("PackVerID(%d,%d): %v", ver, id, err)
			}
			gotVer, gotID, err := UnpackVerID(packed[:])
			if err != nil {
				t.Fatalf("UnpackVerID: %v", err)
			}
			if gotVer != ver || gotID != id {
				t.Errorf("round trip (%d,%d) -> (%d,%d)", ver, id, gotVer, gotID)
			}
		}
	}
}

func TestPackVerIDRange(t *testing.T) {
	if _, err := PackVerID(16, 0); err == nil {
		t.Error("version 16 accepted")
	}
	if _, err := PackVerID(0, MaxLogID+1); err != ErrIDRange {
		t.Errorf("id 4096: want ErrIDRange, got %v", err)
	}
	if _, _, err := UnpackVerID([]byte{1}); err != ErrShortBuffer {
		t.Errorf("short unpack: want ErrShortBuffer, got %v", err)
	}
}

func TestChecksumDistinguishes(t *testing.T) {
	a := Checksum([]byte("hello"))
	b := Checksum([]byte("hellp"))
	if a == b {
		t.Error("checksum collision on 1-byte difference")
	}
	if Checksum(nil) != Checksum([]byte{}) {
		t.Error("nil and empty differ")
	}
}

func TestBitmapSetGetClear(t *testing.T) {
	m := NewBitmap(16)
	if m.Len() != 16 {
		t.Fatalf("Len = %d, want 16", m.Len())
	}
	if !m.Empty() {
		t.Error("new bitmap not empty")
	}
	m.Set(0)
	m.Set(7)
	m.Set(8)
	m.Set(15)
	for i := 0; i < 16; i++ {
		want := i == 0 || i == 7 || i == 8 || i == 15
		if m.Get(i) != want {
			t.Errorf("bit %d = %v, want %v", i, m.Get(i), want)
		}
	}
	m.Clear(7)
	if m.Get(7) {
		t.Error("bit 7 still set after Clear")
	}
	if m.Empty() {
		t.Error("bitmap reports empty with bits set")
	}
}

func TestBitmapRoundedCapacity(t *testing.T) {
	m := NewBitmap(12)
	if m.Len() != 16 {
		t.Errorf("capacity for 12 bits = %d, want 16 (rounded to bytes)", m.Len())
	}
}

func TestBitmapLastSet(t *testing.T) {
	m := NewBitmap(32)
	if m.LastSet(32) != -1 {
		t.Error("LastSet on empty != -1")
	}
	m.Set(3)
	m.Set(17)
	cases := []struct{ before, want int }{
		{32, 17}, {18, 17}, {17, 3}, {4, 3}, {3, -1}, {0, -1}, {100, 17},
	}
	for _, c := range cases {
		if got := m.LastSet(c.before); got != c.want {
			t.Errorf("LastSet(%d) = %d, want %d", c.before, got, c.want)
		}
	}
}

func TestBitmapFirstSet(t *testing.T) {
	m := NewBitmap(32)
	if m.FirstSet(0) != -1 {
		t.Error("FirstSet on empty != -1")
	}
	m.Set(5)
	m.Set(20)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 20}, {20, 20}, {21, -1}, {-3, 5},
	}
	for _, c := range cases {
		if got := m.FirstSet(c.from); got != c.want {
			t.Errorf("FirstSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestBitmapCloneIndependent(t *testing.T) {
	m := NewBitmap(8)
	m.Set(1)
	c := m.Clone()
	c.Set(2)
	if m.Get(2) {
		t.Error("clone shares storage with original")
	}
	if !c.Get(1) {
		t.Error("clone lost original bit")
	}
}

func TestBitmapString(t *testing.T) {
	m := NewBitmap(8)
	m.Set(0)
	m.Set(6)
	if got := m.String(); got != "10000010" {
		t.Errorf("String = %q", got)
	}
}

func TestBitmapProperty(t *testing.T) {
	// Setting then clearing any subset leaves the map empty.
	f := func(bits []uint8) bool {
		m := NewBitmap(256)
		for _, b := range bits {
			m.Set(int(b))
		}
		for _, b := range bits {
			m.Clear(int(b))
		}
		return m.Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
