// Package shard scales the log service out horizontally: a Store
// hash-partitions log files across N independent core.Service volume
// sequences while presenting the single-namespace semantics of one service.
//
// The paper's service manages one volume sequence (§2.4), but nothing in
// its design couples log files on different sequences: every log file's
// entries, entrymap entries and catalog records live on the sequence that
// owns it. The Store exploits exactly that independence. Each shard is a
// complete service — its own NVRAM tail, group-commit queue, block-cache
// shard set and recovery scan — so forced-append throughput and recovery
// wall-clock scale with the shard count.
//
// # Partitioning
//
// A log file routes by the FNV-1a hash of its root path segment
// ("/mail/smith" routes by "mail"), so a parent log file and all its
// sublogs land on one shard and multi-membership appends (§2.1) and
// parent-includes-sublog reads keep their single-sequence semantics. The
// root "/" is the one namespace object that spans shards: listing fans out
// to every shard and merges, and a root cursor merge-reads all shards'
// volume sequence logs in timestamp order.
//
// # IDs
//
// Store-wide ids are logapi.IDs: shard ordinal in the high 16 bits,
// shard-local catalog id in the low 16. Entry.Shard and the shard argument
// of ReadAt carry the same ordinal, so positions observed on entries
// remain usable.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"clio/internal/core"
	"clio/internal/logapi"
	"clio/internal/obs"
	"clio/internal/stream"
	"clio/internal/wodev"
)

// Store is a sharded log store: N core services behind one namespace. It
// implements logapi.Service. Methods are safe for concurrent use (each
// shard synchronizes internally; the Store itself is immutable after New).
type Store struct {
	svcs []*core.Service
	// streamMet, when set (RegisterStreamMetrics), instruments every
	// subsequently opened Watch subscription.
	streamMet atomic.Pointer[stream.Metrics]
}

var _ logapi.Service = (*Store)(nil)

// MaxShards bounds the shard count to what a logapi.ID can address.
const MaxShards = 1 << 16

// New assembles a Store over already-open services. The slice order is the
// shard numbering and must be stable across restarts (the partitioning
// hash is deterministic, so a reopened store must present the same shard
// for each root segment).
func New(svcs []*core.Service) (*Store, error) {
	if len(svcs) == 0 {
		return nil, errors.New("shard: no services")
	}
	if len(svcs) > MaxShards {
		return nil, fmt.Errorf("shard: %d shards exceed the %d addressable", len(svcs), MaxShards)
	}
	return &Store{svcs: svcs}, nil
}

// Single wraps one service as a 1-shard store — the compatibility path for
// unsharded deployments; every id keeps its catalog value.
func Single(svc *core.Service) *Store {
	return &Store{svcs: []*core.Service{svc}}
}

// Open opens (and recovers) every shard concurrently and assembles the
// Store: devs[i] is shard i's volume sequence and opts[i] its options
// (each shard needs its own NVRAM). Shard recovery scans are independent
// end-probes of separate devices, so the wall-clock of a full-store open
// tracks the slowest shard, not the sum. If any shard fails, the shards
// that did open are closed and the joined error is returned.
func Open(devs [][]wodev.Device, opts []core.Options) (*Store, error) {
	if len(devs) == 0 {
		return nil, errors.New("shard: no shards")
	}
	if len(devs) != len(opts) {
		return nil, fmt.Errorf("shard: %d device sets but %d option sets", len(devs), len(opts))
	}
	svcs := make([]*core.Service, len(devs))
	errs := make([]error, len(devs))
	var wg sync.WaitGroup
	for i := range devs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			svcs[i], errs[i] = core.Open(devs[i], opts[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			errs[i] = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	if err := errors.Join(errs...); err != nil {
		for _, s := range svcs {
			if s != nil {
				s.Close()
			}
		}
		return nil, err
	}
	return New(svcs)
}

// Shards returns the shard count.
func (st *Store) Shards() int { return len(st.svcs) }

// Service returns shard i's underlying core service.
func (st *Store) Service(i int) *core.Service { return st.svcs[i] }

// hashSegment is the partitioning function: FNV-1a over the root path
// segment, reduced modulo the shard count.
func hashSegment(seg string, n int) int {
	h := fnv.New32a()
	h.Write([]byte(seg))
	return int(h.Sum32() % uint32(n))
}

// RootSegment returns the first component of an absolute path, "" for "/".
// It is the unit the partitioner routes by, and — exported — the unit the
// server's tenant namespaces scope to: a tenant owns exactly one root
// segment, so tenancy and shard routing agree on what a namespace is.
func RootSegment(path string) (string, error) { return rootSegment(path) }

// rootSegment returns the first component of an absolute path, "" for "/".
func rootSegment(path string) (string, error) {
	if len(path) == 0 || path[0] != '/' {
		return "", fmt.Errorf("shard: path %q must be absolute", path)
	}
	rest := strings.TrimPrefix(path, "/")
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest, nil
}

// ShardFor returns the shard a path routes to. The root routes to shard 0
// (its point operations — Stat, Resolve — are identical on every shard;
// listing and cursors fan out instead).
func (st *Store) ShardFor(path string) (int, error) {
	seg, err := rootSegment(path)
	if err != nil {
		return 0, err
	}
	if seg == "" {
		return 0, nil
	}
	return hashSegment(seg, len(st.svcs)), nil
}

// PathOf maps a store-wide id back to its absolute path — the reverse of
// Resolve, served lock-free from the owning shard's catalog. The server's
// tenant enforcement uses it to attribute id-addressed operations (appends,
// position reads) to the namespace that owns the log.
func (st *Store) PathOf(id logapi.ID) (string, error) {
	sh, err := st.shardOf(id)
	if err != nil {
		return "", err
	}
	return st.svcs[sh].PathOf(id.Local())
}

// shardOf range-checks an id's shard ordinal.
func (st *Store) shardOf(id logapi.ID) (int, error) {
	sh := id.Shard()
	if sh >= len(st.svcs) {
		return 0, fmt.Errorf("shard: id %v in a %d-shard store: %w", id, len(st.svcs), logapi.ErrShardRange)
	}
	return sh, nil
}

func (st *Store) CreateLog(ctx context.Context, path string, perms uint16, owner string) (logapi.ID, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	sh, err := st.ShardFor(path)
	if err != nil {
		return 0, err
	}
	id, err := st.svcs[sh].CreateLog(path, perms, owner)
	return logapi.MakeID(sh, id), err
}

func (st *Store) Resolve(ctx context.Context, path string) (logapi.ID, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	sh, err := st.ShardFor(path)
	if err != nil {
		return 0, err
	}
	id, err := st.svcs[sh].Resolve(path)
	return logapi.MakeID(sh, id), err
}

// List returns the sublog names beneath a path. Listing the root fans out
// to every shard and merges the name sets; the per-shard system log files
// (".entrymap", ".catalog", ".badblocks", ".checkpoint"), present on each
// shard, dedupe
// to one listing entry.
func (st *Store) List(ctx context.Context, path string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seg, err := rootSegment(path)
	if err != nil {
		return nil, err
	}
	if seg != "" {
		return st.svcs[hashSegment(seg, len(st.svcs))].List(path)
	}
	seen := make(map[string]bool)
	var out []string
	for _, svc := range st.svcs {
		names, err := svc.List("/")
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

func (st *Store) Stat(ctx context.Context, path string) (logapi.Info, error) {
	if err := ctx.Err(); err != nil {
		return logapi.Info{}, err
	}
	sh, err := st.ShardFor(path)
	if err != nil {
		return logapi.Info{}, err
	}
	d, err := st.svcs[sh].Stat(path)
	if err != nil {
		return logapi.Info{}, err
	}
	return logapi.Info{
		ID:      logapi.MakeID(sh, d.ID),
		Parent:  logapi.MakeID(sh, d.Parent),
		Name:    d.Name,
		Perms:   d.Perms,
		Created: d.Created,
		Owner:   d.Owner,
		Retired: d.Retired,
		System:  d.System,
	}, nil
}

func (st *Store) SetPerms(ctx context.Context, path string, perms uint16) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sh, err := st.ShardFor(path)
	if err != nil {
		return err
	}
	return st.svcs[sh].SetPerms(path, perms)
}

func (st *Store) Retire(ctx context.Context, path string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sh, err := st.ShardFor(path)
	if err != nil {
		return err
	}
	return st.svcs[sh].Retire(path)
}

func (st *Store) Append(ctx context.Context, id logapi.ID, data []byte, opts logapi.AppendOptions) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	sh, err := st.shardOf(id)
	if err != nil {
		return 0, err
	}
	return st.svcs[sh].Append(id.Local(), data, opts)
}

// AppendMulti writes one multi-membership entry (§2.1). A log entry is one
// record in one block of one volume sequence, so every member must live on
// the same shard — the partitioning function guarantees that for a parent
// and its sublogs, which is the membership shape the paper describes.
func (st *Store) AppendMulti(ctx context.Context, ids []logapi.ID, data []byte, opts logapi.AppendOptions) (int64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if len(ids) == 0 {
		return 0, errors.New("shard: AppendMulti needs at least one id")
	}
	sh, err := st.shardOf(ids[0])
	if err != nil {
		return 0, err
	}
	local := make([]uint16, len(ids))
	for i, id := range ids {
		if id.Shard() != sh {
			return 0, fmt.Errorf("shard: multi-membership ids %v and %v span shards: %w",
				ids[0], id, logapi.ErrShardRange)
		}
		local[i] = id.Local()
	}
	return st.svcs[sh].AppendMulti(local, data, opts)
}

func (st *Store) ReadAt(ctx context.Context, shard, block, index int) (*logapi.Entry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if shard < 0 || shard >= len(st.svcs) {
		return nil, fmt.Errorf("shard: shard %d in a %d-shard store: %w", shard, len(st.svcs), logapi.ErrShardRange)
	}
	e, err := st.svcs[shard].ReadAt(block, index)
	if err != nil {
		return nil, err
	}
	e.Shard = shard
	return e, nil
}

func (st *Store) OpenCursor(ctx context.Context, path string) (logapi.Cursor, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	seg, err := rootSegment(path)
	if err != nil {
		return nil, err
	}
	if seg == "" {
		return st.openRootCursor()
	}
	sh := hashSegment(seg, len(st.svcs))
	cur, err := st.svcs[sh].OpenCursor(path)
	if err != nil {
		return nil, err
	}
	return &cursor{cur: cur, shard: sh}, nil
}

// Force makes every shard's staged tail durable, concurrently — each
// shard's force is an independent NVRAM store or padded seal.
func (st *Store) Force(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return st.each(func(svc *core.Service) error { return svc.Force() })
}

// Close closes every shard concurrently (each seals or stages its tail).
func (st *Store) Close() error {
	return st.each(func(svc *core.Service) error { return svc.Close() })
}

// Crash abandons every shard's volatile state without staging or sealing —
// the test hook for whole-store crash simulation.
func (st *Store) Crash() {
	for _, svc := range st.svcs {
		svc.Crash()
	}
}

// each runs fn on every shard concurrently and joins the failures,
// labeled by shard.
func (st *Store) each(fn func(*core.Service) error) error {
	errs := make([]error, len(st.svcs))
	var wg sync.WaitGroup
	for i, svc := range st.svcs {
		wg.Add(1)
		go func(i int, svc *core.Service) {
			defer wg.Done()
			if err := fn(svc); err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
			}
		}(i, svc)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Stats returns the shard-summed operation counters.
func (st *Store) Stats() core.Stats {
	var out core.Stats
	for _, svc := range st.svcs {
		s := svc.Stats()
		out.EntriesAppended += s.EntriesAppended
		out.ForcedWrites += s.ForcedWrites
		out.BlocksSealed += s.BlocksSealed
		out.DeadBlocks += s.DeadBlocks
		out.ClientBytes += s.ClientBytes
		out.HeaderBytes += s.HeaderBytes
		out.EntrymapBytes += s.EntrymapBytes
		out.CatalogBytes += s.CatalogBytes
		out.PaddingBytes += s.PaddingBytes
		out.FooterBytes += s.FooterBytes
		out.GroupCommits += s.GroupCommits
		out.BatchedForces += s.BatchedForces
		out.Checkpoints += s.Checkpoints
		out.CheckpointBytes += s.CheckpointBytes
		out.AdaptiveWaits += s.AdaptiveWaits
		out.PipelinedSeals += s.PipelinedSeals
		out.EntriesRelocated += s.EntriesRelocated
		out.BytesRelocated += s.BytesRelocated
		out.ColdFetches += s.ColdFetches
		out.InflightSeals += s.InflightSeals
		out.StagedBytes += s.StagedBytes
		out.VolumesRelocated += s.VolumesRelocated
		out.VolumesDemoted += s.VolumesDemoted
		// The commit window is a per-shard gauge, not additive: report the
		// widest shard's, the one currently shaping worst-case force latency.
		if s.CommitWindowNanos > out.CommitWindowNanos {
			out.CommitWindowNanos = s.CommitWindowNanos
		}
	}
	return out
}

// End returns the shard-summed count of data blocks (the store's total log
// length in blocks).
func (st *Store) End() int {
	var n int
	for _, svc := range st.svcs {
		n += svc.End()
	}
	return n
}

// Ends returns each shard's data-block end individually, in shard order. The
// cluster layer compares these against follower extents to report per-shard
// replication lag.
func (st *Store) Ends() []int {
	out := make([]int, len(st.svcs))
	for i, svc := range st.svcs {
		out[i] = svc.End()
	}
	return out
}

// LastRecoveryByShard returns each shard's recovery report from the most
// recent open.
func (st *Store) LastRecoveryByShard() []core.RecoveryReport {
	out := make([]core.RecoveryReport, len(st.svcs))
	for i, svc := range st.svcs {
		out[i] = svc.LastRecovery()
	}
	return out
}

// BadBlockRef attributes a corrupted block to the shard that owns it. Block
// indices are shard-local — every shard numbers its data blocks from zero —
// so a merged report must carry the pair, never the bare index: two shards
// can each have a bad block 7, and a flat []int would silently alias them.
type BadBlockRef struct {
	Shard int
	Block int
}

// MergedRecovery is the store-wide summary of the per-shard recovery
// reports. Counters are sums across shards; the tail and checkpoint fields
// are explicit about their quantifier (a plain bool named TailRestored was
// ambiguous between "any" and "all" — it meant "any", and now says so).
type MergedRecovery struct {
	// SealedBlocks, EndProbes, EntrymapBlocksScanned, EntrymapEntriesRead,
	// CatalogEntries and BlocksReplayed sum the per-shard counters.
	SealedBlocks          int
	EndProbes             int64
	EntrymapBlocksScanned int
	EntrymapEntriesRead   int
	CatalogEntries        int
	BlocksReplayed        int
	// TailsRestored counts the shards that restored an NVRAM-staged tail;
	// TailRestored is true when any shard did (TailsRestored > 0).
	TailsRestored int
	TailRestored  bool
	// CheckpointsUsed counts the shards that recovered from an in-log
	// checkpoint rather than full reconstruction.
	CheckpointsUsed int
	// VolumesRelocated and VolumesDemoted sum each shard's compaction state
	// as of the open: volumes whose live entries have been copied forward,
	// and the subset archived cold and released locally.
	VolumesRelocated int
	VolumesDemoted   int
	// BadBlocks lists every known-corrupted block, attributed to its shard.
	BadBlocks []BadBlockRef
}

// LastRecovery merges the per-shard recovery reports from the most recent
// open. Use LastRecoveryByShard for the raw per-shard reports.
func (st *Store) LastRecovery() MergedRecovery {
	var out MergedRecovery
	for sh, r := range st.LastRecoveryByShard() {
		out.SealedBlocks += r.SealedBlocks
		out.EndProbes += r.EndProbes
		out.EntrymapBlocksScanned += r.EntrymapBlocksScanned
		out.EntrymapEntriesRead += r.EntrymapEntriesRead
		out.CatalogEntries += r.CatalogEntries
		out.BlocksReplayed += r.BlocksReplayed
		if r.TailRestored {
			out.TailsRestored++
		}
		if r.CheckpointUsed {
			out.CheckpointsUsed++
		}
		out.VolumesRelocated += r.VolumesRelocated
		out.VolumesDemoted += r.VolumesDemoted
		for _, b := range r.BadBlocks {
			out.BadBlocks = append(out.BadBlocks, BadBlockRef{Shard: sh, Block: b})
		}
	}
	out.TailRestored = out.TailsRestored > 0
	return out
}

// Checkpoint emits a recovery checkpoint on every shard concurrently, each
// covering that shard's own volume sequence (checkpoints are per-sequence
// state; there is no cross-shard snapshot to coordinate).
func (st *Store) Checkpoint() error {
	return st.each(func(svc *core.Service) error { return svc.Checkpoint() })
}

// CompactOnce runs one compaction pass on every shard concurrently and sums
// the per-shard results. Each shard compacts its own volume sequence
// independently (a log file lives wholly on one shard, so there is no
// cross-shard liveness to coordinate). Shards that fail are reported in the
// joined error; the result still sums the shards that succeeded.
func (st *Store) CompactOnce(ctx context.Context, opt core.CompactOptions) (core.CompactResult, error) {
	results := make([]*core.CompactResult, len(st.svcs))
	errs := make([]error, len(st.svcs))
	var wg sync.WaitGroup
	for i, svc := range st.svcs {
		wg.Add(1)
		go func(i int, svc *core.Service) {
			defer wg.Done()
			r, err := svc.CompactOnce(ctx, opt)
			if err != nil {
				errs[i] = fmt.Errorf("shard %d: %w", i, err)
				return
			}
			results[i] = r
		}(i, svc)
	}
	wg.Wait()
	var out core.CompactResult
	for _, r := range results {
		if r == nil {
			continue
		}
		out.VolumesExamined += r.VolumesExamined
		out.VolumesSkipped += r.VolumesSkipped
		out.VolumesReloc += r.VolumesReloc
		out.VolumesDemoted += r.VolumesDemoted
		out.EntriesCopied += r.EntriesCopied
		out.BytesCopied += r.BytesCopied
	}
	return out, errors.Join(errs...)
}

// RegisterMetrics registers every shard's full metric surface in reg, each
// shard's series carrying a `shard` label with its ordinal — one scrape
// breaks the whole store down per shard.
func (st *Store) RegisterMetrics(reg *obs.Registry) {
	for i, svc := range st.svcs {
		svc.RegisterMetricsLabeled(reg, obs.L("shard", strconv.Itoa(i)))
	}
}

// Status snapshots every shard for /statusz, in shard order.
func (st *Store) Status() []core.ServiceStatus {
	out := make([]core.ServiceStatus, len(st.svcs))
	for i, svc := range st.svcs {
		out[i] = svc.Status()
	}
	return out
}
