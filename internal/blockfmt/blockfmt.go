// Package blockfmt implements the on-disk block format of the Clio log
// service (paper Figure 1).
//
// A block holds a sequence of log-entry records packed from the front, an
// index of 16-bit record sizes packed from the back (so a block can be
// scanned forwards or backwards), and a fixed footer carrying the block's
// self-identification: entry count, the mandatory timestamp of the first
// entry in the block (§2.1 — "a header timestamp is mandatory for the first
// log entry in each block, so the [time] search succeeds to a resolution of
// at least a single block"), flags and a CRC-32C.
//
//	+--------------------------------------------------------------+
//	| entry 1 | entry 2 | ... | entry k |  free  | s_k ... s_2 s_1 | footer |
//	+--------------------------------------------------------------+
//
// Entry records carry one of three header forms in front of the client
// data:
//
//   - minimal: 2 bytes (4-bit header-version, 12-bit local-logfile-id).
//     With the 2-byte size slot in the trailer index this is the paper's
//     4-byte minimal header (§2.2).
//   - full: version+id (2) + attribute flags (1) + reserved (1) + 64-bit
//     timestamp (8) = 12 bytes, i.e. the paper's "complete, 14-byte log
//     entry header" once its size slot is counted (§3.2).
//   - multi: the full header with the reserved byte counting additional
//     member log-file ids (2 bytes each) that follow the timestamp — the
//     paper's multi-membership entries ("usually only one", §2.1).
//
// An entry larger than the space left in a block is fragmented over
// successive blocks (§2.1 footnote 7). Every fragment repeats the 2-byte
// version+id word so that each block is self-describing, "sufficient to
// identify and parse every log entry in a block, as is necessary during
// server initialization" (§2.2). The size slot's top two bits mark
// continuation fragments and non-final fragments.
package blockfmt

import (
	"errors"
	"fmt"

	"clio/internal/wire"
)

// Header forms (the 4-bit version field of the leading header word).
const (
	// FormMinimal is the 4-byte header: version+id word plus the size slot.
	FormMinimal = 0
	// FormFull is the 14-byte header: version+id, attribute flags, reserved,
	// 64-bit timestamp, plus the size slot.
	FormFull = 1
	// FormMulti is the full header with the reserved byte carrying a count
	// of additional member log-file ids (2 bytes each) after the timestamp
	// — §2.1: "the logging service allows a log entry to be a member of
	// more than one log file".
	FormMulti = 2
)

// MaxExtraIDs bounds the additional memberships of a FormMulti entry.
const MaxExtraIDs = 15

// Attribute flag bits carried by FormFull headers.
const (
	// AttrForced marks an entry written synchronously (forced, §2.3.1).
	AttrForced = 1 << 0
	// AttrSystem marks an entry written by the service itself (entrymap,
	// catalog, bad-block records).
	AttrSystem = 1 << 1
	// AttrRelocated marks an entry copied forward by the compactor from an
	// old sealed volume. A relocated copy is only visible to readers once
	// the compaction that wrote it has committed; an uncommitted copy (a
	// crash between writing copies and committing) is permanently skipped.
	AttrRelocated = 1 << 2
)

// Size-slot flag bits (the slot's low 14 bits are the fragment length).
const (
	slotContinued = 1 << 15 // record continues an entry from a previous block
	slotContinues = 1 << 14 // entry continues into the next block
	slotLenMask   = slotContinues - 1
)

// Block footer flag bits.
const (
	// FlagEntrymapBoundary marks a block that begins with entrymap log
	// entries written at an N^i boundary (possibly displaced, §2.3.2).
	FlagEntrymapBoundary = 1 << 0
	// FlagSealedByForce marks a block sealed (padded) early to satisfy a
	// synchronous write without rewriteable tail storage.
	FlagSealedByForce = 1 << 1
	// FlagVolumeHeader marks the volume's first block, holding the volume
	// header record rather than client entries.
	FlagVolumeHeader = 1 << 2
	// FlagVolumeSealed marks the final block of a full volume whose log
	// continues on a successor volume.
	FlagVolumeSealed = 1 << 3
)

// FooterSize is the byte size of the fixed block footer:
// magic(2) version(1) flags(1) count(2) firstTS(8) blockIndex(4) crc(4).
const FooterSize = 22

// Magic identifies a Clio-formatted block.
const Magic = 0xC110

// FormatVersion is the block format version this package writes.
const FormatVersion = 1

// Errors.
var (
	// ErrBadMagic indicates the block is not Clio-formatted (or is garbage).
	ErrBadMagic = errors.New("blockfmt: bad magic")
	// ErrBadChecksum indicates the block failed its CRC, i.e. it was damaged
	// after being written (§2.3.2).
	ErrBadChecksum = errors.New("blockfmt: checksum mismatch")
	// ErrCorruptIndex indicates the trailer index is inconsistent.
	ErrCorruptIndex = errors.New("blockfmt: corrupt trailer index")
	// ErrTooLarge indicates a record fragment that cannot fit an empty block.
	ErrTooLarge = errors.New("blockfmt: fragment too large for block")
	// ErrNoSpace indicates the builder has insufficient free space.
	ErrNoSpace = errors.New("blockfmt: no space in block")
	// ErrBlockSize indicates an unsupported block size.
	ErrBlockSize = errors.New("blockfmt: unsupported block size")
)

// MinBlockSize and MaxBlockSize bound supported block sizes. The 14-bit
// fragment-length field caps usable payload per block.
const (
	MinBlockSize = 128
	MaxBlockSize = 16384
)

// HeaderLen returns the in-payload byte length of a header form (excluding
// the 2-byte size slot in the trailer index). FormMulti headers add 2 bytes
// per extra id on top of this base (see Record.HeaderLen).
func HeaderLen(form uint8) int {
	if form == FormFull || form == FormMulti {
		return 12
	}
	return 2
}

// MultiHeaderLen returns the in-payload header length of a FormMulti record
// with the given number of extra member ids.
func MultiHeaderLen(extraIDs int) int {
	return 12 + 2*extraIDs
}

// Record is one entry fragment to be placed in a block.
type Record struct {
	// LogID is the 12-bit local-logfile-id the record belongs to.
	LogID uint16
	// Form selects the header form (FormMinimal or FormFull).
	Form uint8
	// AttrFlags carries FormFull attribute bits; ignored for FormMinimal.
	AttrFlags uint8
	// Timestamp is the entry timestamp (Unix nanoseconds); written only for
	// FormFull.
	Timestamp int64
	// Continued marks a fragment continuing an entry from a previous block.
	Continued bool
	// Continues marks a fragment whose entry continues into the next block.
	Continues bool
	// Data is the fragment's client data (for the first fragment this is the
	// leading portion of the entry's data).
	Data []byte
	// ExtraIDs are additional member log files (FormMulti only, §2.1).
	ExtraIDs []uint16
}

// RecordView is a decoded record as read from a parsed block. Data aliases
// the parsed block's buffer.
type RecordView struct {
	LogID     uint16
	Form      uint8
	AttrFlags uint8
	Timestamp int64 // valid only when Form is FormFull or FormMulti
	Continued bool
	Continues bool
	Data      []byte
	ExtraIDs  []uint16 // FormMulti only
}

// HeaderLen returns the record's in-payload header length.
func (r *Record) HeaderLen() int {
	if r.Form == FormMulti {
		return MultiHeaderLen(len(r.ExtraIDs))
	}
	return HeaderLen(r.Form)
}

// Overhead returns the total block bytes the record consumes: header bytes,
// data bytes and its trailer size slot.
func (r *Record) Overhead() int {
	return r.HeaderLen() + len(r.Data) + 2
}

// Builder accumulates records into a block image.
type Builder struct {
	blockSize  int
	blockIndex uint32
	flags      uint8
	payload    []byte
	slots      []uint16
	firstTS    int64
	haveTS     bool
}

// NewBuilder returns a builder for a block of the given size at the given
// volume-relative index.
func NewBuilder(blockSize int, blockIndex uint32) (*Builder, error) {
	if blockSize < MinBlockSize || blockSize > MaxBlockSize {
		return nil, fmt.Errorf("%w: %d", ErrBlockSize, blockSize)
	}
	return &Builder{
		blockSize:  blockSize,
		blockIndex: blockIndex,
		payload:    make([]byte, 0, blockSize-FooterSize),
	}, nil
}

// Reset prepares the builder for a new block at the given index, retaining
// allocated buffers.
func (b *Builder) Reset(blockIndex uint32) {
	b.blockIndex = blockIndex
	b.flags = 0
	b.payload = b.payload[:0]
	b.slots = b.slots[:0]
	b.firstTS = 0
	b.haveTS = false
}

// BlockIndex returns the volume-relative index the builder is building.
func (b *Builder) BlockIndex() uint32 { return b.blockIndex }

// SetBlockIndex relocates the block being built. The writer uses this when
// the block's intended slot turns out to be damaged and is invalidated: the
// staged contents slide forward to the next good block (§2.3.2).
func (b *Builder) SetBlockIndex(idx uint32) { b.blockIndex = idx }

// SetFlags ors the given footer flag bits into the block flags.
func (b *Builder) SetFlags(flags uint8) { b.flags |= flags }

// Flags returns the footer flags accumulated so far.
func (b *Builder) Flags() uint8 { return b.flags }

// Count returns the number of records placed so far.
func (b *Builder) Count() int { return len(b.slots) }

// Used returns the payload bytes consumed so far (headers + data).
func (b *Builder) Used() int { return len(b.payload) }

// Free returns the bytes available for the next record's header+data,
// accounting for the record's own 2-byte size slot and the footer.
func (b *Builder) Free() int {
	free := b.blockSize - FooterSize - len(b.payload) - 2*len(b.slots) - 2
	if free < 0 {
		return 0
	}
	return free
}

// FreeData returns the client data bytes available for the next record with
// the given header form.
func (b *Builder) FreeData(form uint8) int {
	n := b.Free() - HeaderLen(form)
	if n < 0 {
		return 0
	}
	return n
}

// MaxData returns the largest client-data fragment an empty block of size
// blockSize can hold under the given header form.
func MaxData(blockSize int, form uint8) int {
	return blockSize - FooterSize - 2 - HeaderLen(form)
}

// Append places a record fragment in the block. The caller must have sized
// Data to fit (see FreeData); Append returns ErrNoSpace otherwise.
func (b *Builder) Append(rec Record) error {
	if len(rec.ExtraIDs) > MaxExtraIDs {
		return fmt.Errorf("blockfmt: %d extra ids exceeds maximum %d", len(rec.ExtraIDs), MaxExtraIDs)
	}
	need := rec.HeaderLen() + len(rec.Data)
	if need > b.Free() {
		return ErrNoSpace
	}
	fragLen := need
	if fragLen > slotLenMask {
		return ErrTooLarge
	}
	verID, err := wire.PackVerID(rec.Form, rec.LogID)
	if err != nil {
		return err
	}
	b.payload = append(b.payload, verID[0], verID[1])
	switch rec.Form {
	case FormFull:
		b.payload = append(b.payload, rec.AttrFlags, 0)
		b.payload = wire.PutUint64(b.payload, uint64(rec.Timestamp))
	case FormMulti:
		b.payload = append(b.payload, rec.AttrFlags, byte(len(rec.ExtraIDs)))
		b.payload = wire.PutUint64(b.payload, uint64(rec.Timestamp))
		for _, id := range rec.ExtraIDs {
			if id > wire.MaxLogID {
				return wire.ErrIDRange
			}
			b.payload = wire.PutUint16(b.payload, id)
		}
	}
	b.payload = append(b.payload, rec.Data...)
	slot := uint16(fragLen)
	if rec.Continued {
		slot |= slotContinued
	}
	if rec.Continues {
		slot |= slotContinues
	}
	b.slots = append(b.slots, slot)
	if !b.haveTS && rec.Timestamp != 0 {
		// The footer carries the mandatory first-entry timestamp even when
		// the entry itself uses the minimal (untimestamped) header form.
		// Zero timestamps (service-internal records) never stamp the
		// footer; the writer sets it explicitly via SetFirstTimestamp.
		b.firstTS = rec.Timestamp
		b.haveTS = true
	}
	return nil
}

// SetFirstTimestamp overrides the footer's first-entry timestamp. The writer
// calls this before the first record when the entry's logical receive time is
// known but the record uses the minimal header form.
func (b *Builder) SetFirstTimestamp(ts int64) {
	b.firstTS = ts
	b.haveTS = true
}

// FirstTimestamp returns the footer timestamp accumulated so far.
func (b *Builder) FirstTimestamp() (int64, bool) { return b.firstTS, b.haveTS }

// Seal finalizes the block image: zero-pads the free space, writes the
// trailer index and footer, and returns the blockSize-byte image. The
// builder remains valid (and unchanged) after Seal, so a caller staging the
// current partial block in rewriteable storage (the NVRAM tail, §2.3.1) can
// seal speculatively and keep appending.
func (b *Builder) Seal() []byte {
	out := make([]byte, b.blockSize)
	copy(out, b.payload)
	// Trailer index: s_k ... s_2 s_1 growing down from the footer.
	for i, slot := range b.slots {
		off := b.blockSize - FooterSize - 2*(i+1)
		out[off] = byte(slot)
		out[off+1] = byte(slot >> 8)
	}
	foot := out[b.blockSize-FooterSize:]
	foot[0] = byte(Magic & 0xFF)
	foot[1] = byte(Magic >> 8)
	foot[2] = FormatVersion
	foot[3] = b.flags
	foot[4] = byte(len(b.slots))
	foot[5] = byte(len(b.slots) >> 8)
	putU64(foot[6:], uint64(b.firstTS))
	putU32(foot[14:], b.blockIndex)
	crc := wire.Checksum(out[:b.blockSize-4])
	putU32(foot[18:], crc)
	return out
}

// Reindex returns a copy of a sealed block image relocated to a new
// volume-relative index with extra footer flags or'ed in, recomputing the
// checksum. The input image is left unchanged. The device writer uses this
// when a seal staged earlier must land at a different slot than planned —
// a damaged block slid past (§2.3.2) or a volume boundary crossed — since
// footer flags like FlagVolumeSealed are a property of where the block
// lands, not of when it was sealed.
func Reindex(block []byte, blockIndex uint32, orFlags uint8) ([]byte, error) {
	n := len(block)
	if n < MinBlockSize {
		return nil, fmt.Errorf("%w: %d-byte block", ErrBlockSize, n)
	}
	if !Validate(block) {
		return nil, ErrBadChecksum
	}
	out := make([]byte, n)
	copy(out, block)
	foot := out[n-FooterSize:]
	foot[3] |= orFlags
	putU32(foot[14:], blockIndex)
	putU32(foot[18:], wire.Checksum(out[:n-4]))
	return out, nil
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

// Parsed is a decoded block.
type Parsed struct {
	// BlockIndex is the volume-relative index recorded in the footer.
	BlockIndex uint32
	// Flags holds the footer flag bits.
	Flags uint8
	// FirstTimestamp is the mandatory timestamp of the block's first entry.
	FirstTimestamp int64
	// Records are the decoded record fragments in write order.
	Records []RecordView
}

// Validate cheaply checks a block image's magic and checksum without
// decoding its records — the integrity test mirrored devices use to decide
// whether a replica's copy is good (§5 footnote 11).
func Validate(block []byte) bool {
	n := len(block)
	if n < MinBlockSize {
		return false
	}
	foot := block[n-FooterSize:]
	if uint16(foot[0])|uint16(foot[1])<<8 != Magic {
		return false
	}
	return wire.Checksum(block[:n-4]) == u32(foot[18:])
}

// Parse decodes and verifies a block image. It returns ErrBadMagic for
// non-Clio contents (e.g. garbage written by a failure) and ErrBadChecksum
// for damaged blocks; both conditions make the service treat the block as
// lost (§2.3.2).
func Parse(block []byte) (*Parsed, error) {
	n := len(block)
	if n < MinBlockSize {
		return nil, fmt.Errorf("%w: %d-byte block", ErrBlockSize, n)
	}
	foot := block[n-FooterSize:]
	magic := uint16(foot[0]) | uint16(foot[1])<<8
	if magic != Magic {
		return nil, ErrBadMagic
	}
	if foot[2] != FormatVersion {
		return nil, fmt.Errorf("blockfmt: unsupported format version %d", foot[2])
	}
	crcStored := u32(foot[18:])
	if wire.Checksum(block[:n-4]) != crcStored {
		return nil, ErrBadChecksum
	}
	p := &Parsed{
		Flags:          foot[3],
		FirstTimestamp: int64(u64(foot[6:])),
		BlockIndex:     u32(foot[14:]),
	}
	count := int(uint16(foot[4]) | uint16(foot[5])<<8)
	indexBytes := 2 * count
	if FooterSize+indexBytes > n {
		return nil, ErrCorruptIndex
	}
	p.Records = make([]RecordView, 0, count)
	off := 0
	for i := 0; i < count; i++ {
		slotOff := n - FooterSize - 2*(i+1)
		slot := uint16(block[slotOff]) | uint16(block[slotOff+1])<<8
		fragLen := int(slot & slotLenMask)
		if off+fragLen > n-FooterSize-indexBytes {
			return nil, ErrCorruptIndex
		}
		frag := block[off : off+fragLen]
		form, id, err := wire.UnpackVerID(frag)
		if err != nil {
			return nil, ErrCorruptIndex
		}
		rv := RecordView{
			LogID:     id,
			Form:      form,
			Continued: slot&slotContinued != 0,
			Continues: slot&slotContinues != 0,
		}
		hl := HeaderLen(form)
		if fragLen < hl {
			return nil, ErrCorruptIndex
		}
		switch form {
		case FormFull:
			rv.AttrFlags = frag[2]
			rv.Timestamp = int64(u64(frag[4:]))
		case FormMulti:
			rv.AttrFlags = frag[2]
			nExtra := int(frag[3])
			rv.Timestamp = int64(u64(frag[4:]))
			hl = MultiHeaderLen(nExtra)
			if nExtra > MaxExtraIDs || fragLen < hl {
				return nil, ErrCorruptIndex
			}
			rv.ExtraIDs = make([]uint16, nExtra)
			for k := 0; k < nExtra; k++ {
				rv.ExtraIDs[k] = uint16(frag[12+2*k]) | uint16(frag[13+2*k])<<8
			}
		}
		rv.Data = frag[hl:fragLen]
		p.Records = append(p.Records, rv)
		off += fragLen
	}
	return p, nil
}

func u32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func u64(b []byte) uint64 {
	return uint64(u32(b)) | uint64(u32(b[4:]))<<32
}
