package server

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"clio/internal/core"
	"clio/internal/logapi"
	"clio/internal/obs"
	"clio/internal/wire"
)

// DefaultStreamCredit is the delivery window granted to a subscription whose
// subscribe payload leaves Credit zero.
const DefaultStreamCredit = 256

// maxStreamBuffer caps the server-side delivery buffer a client may request.
const maxStreamBuffer = 1 << 14

// OffsetsRoot is the reserved sublog holding consumer-group state: the
// group log for group g is OffsetsRoot + "/" + g (see logapi.OffsetsRoot).
const OffsetsRoot = logapi.OffsetsRoot

// connStreams is one connection's subscription registry. Subscriptions are
// connection-domain (like cursors are session-domain): tearing down the
// connection tears down its subscriptions, and a reconnecting client
// re-subscribes from its last delivered position.
type connStreams struct {
	srv *Server
	// h is the owning connection's handler; subscribe consults its tenant
	// binding to scope watch paths.
	h *connHandler
	// write is the connection's serialized frame writer (ServeConn's
	// closure); kill closes the connection to wake its read loop after a
	// write failure, mirroring the read-class worker path.
	write func(status byte, seq, trace uint64, resp, body []byte) bool
	kill  func()
	wg    *sync.WaitGroup

	mu     sync.Mutex
	next   uint32
	subs   map[uint32]*connSub
	closed bool
}

// connSub is one live subscription: the store-side Sub plus the client's
// delivery window.
type connSub struct {
	id     uint32
	sub    logapi.Subscription
	ctx    context.Context
	cancel context.CancelFunc
	// credit is the remaining delivery window; the pusher parks on wake
	// when it hits zero and OpStreamCredit tops it up.
	credit atomic.Int64
	wake   chan struct{}
}

func newConnStreams(srv *Server, h *connHandler, write func(byte, uint64, uint64, []byte, []byte) bool, kill func(), wg *sync.WaitGroup) *connStreams {
	return &connStreams{srv: srv, h: h, write: write, kill: kill, wg: wg, subs: make(map[uint32]*connSub)}
}

// handle processes one streaming control frame inline in the read loop; the
// return value mirrors write's (false ends the connection).
func (cs *connStreams) handle(op byte, seq, traceID uint64, payload []byte) bool {
	switch op {
	case wire.OpStreamSubscribe:
		req, err := wire.DecodeStreamSubscribe(payload)
		if err != nil {
			status, resp := errResp(err)
			return cs.write(status, seq, traceID, resp, nil)
		}
		id, err := cs.subscribe(req)
		if err != nil {
			status, resp := errResp(err)
			return cs.write(status, seq, traceID, resp, nil)
		}
		return cs.write(StatusOK, seq, traceID, wire.PutUint32(nil, id), nil)

	case wire.OpStreamCredit:
		req, err := wire.DecodeStreamCredit(payload)
		if err != nil {
			status, resp := errResp(err)
			return cs.write(status, seq, traceID, resp, nil)
		}
		cs.mu.Lock()
		c := cs.subs[req.SubID]
		cs.mu.Unlock()
		if c == nil {
			status, resp := errResp(fmt.Errorf("server: unknown subscription %d", req.SubID))
			return cs.write(status, seq, traceID, resp, nil)
		}
		c.grant(int64(req.Credit))
		return cs.write(StatusOK, seq, traceID, nil, nil)

	case wire.OpStreamUnsubscribe:
		req, err := wire.DecodeStreamUnsubscribe(payload)
		if err != nil {
			status, resp := errResp(err)
			return cs.write(status, seq, traceID, resp, nil)
		}
		cs.remove(req.SubID)
		return cs.write(StatusOK, seq, traceID, nil, nil)
	}
	status, resp := errResp(fmt.Errorf("server: stream op %#x is not connection-scoped", op))
	return cs.write(status, seq, traceID, resp, nil)
}

// subscribe opens the store-side subscription, registers it and starts its
// pusher. The subscribe response is written by the caller before the pusher
// can race it onto the wire only because handle runs inline in the read
// loop — the pusher is started here but its first write contends on the same
// write mutex after the response.
func (cs *connStreams) subscribe(req *wire.StreamSubscribe) (uint32, error) {
	if cs.srv.tenanted() {
		ts := cs.h.tenant.Load()
		if ts == nil {
			return 0, fmt.Errorf("server: authentication required")
		}
		if m := ts.met.Load(); m != nil {
			m.requests.Inc()
		}
		if err := ts.allowsPath(req.Path); err != nil {
			return 0, err
		}
	}
	opts := logapi.WatchOptions{
		Buffer:    int(min(req.Buffer, maxStreamBuffer)),
		FromStart: req.FromStart,
	}
	for _, p := range req.From {
		opts.From = append(opts.From, logapi.Position{Shard: int(p.Shard), Block: int(p.Block), Rec: int(p.Rec)})
	}
	sub, err := cs.srv.store.Watch(context.Background(), req.Path, opts)
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &connSub{sub: sub, ctx: ctx, cancel: cancel, wake: make(chan struct{}, 1)}
	credit := int64(req.Credit)
	if credit == 0 {
		credit = DefaultStreamCredit
	}
	c.credit.Store(credit)
	cs.mu.Lock()
	if cs.closed {
		cs.mu.Unlock()
		cancel()
		sub.Close()
		return 0, fmt.Errorf("server: connection closing")
	}
	cs.next++
	c.id = cs.next
	cs.subs[c.id] = c
	cs.mu.Unlock()
	cs.wg.Add(1)
	go cs.push(c)
	return c.id, nil
}

// push is the per-subscription pusher: wait for credit, receive from the
// store-side subscription, write one deliver frame. The entry data rides as
// a borrowed writev chunk — the same zero-copy path sealed reads use.
func (cs *connStreams) push(c *connSub) {
	defer cs.wg.Done()
	for {
		if c.credit.Load() <= 0 {
			select {
			case <-c.wake:
			case <-c.ctx.Done():
				return
			}
			continue
		}
		e, err := c.sub.Recv(c.ctx)
		if err != nil {
			if c.ctx.Err() != nil {
				return // local unsubscribe or connection teardown
			}
			// The subscription ended underneath (service closed, media
			// loss): tell the client, then retire the registration.
			end := wire.StreamEnd{SubID: c.id, Msg: err.Error()}
			cs.write(wire.OpStreamEnd, uint64(c.id), 0, end.Encode(nil), nil)
			cs.remove(c.id)
			return
		}
		d := wire.StreamDeliver{
			SubID:     c.id,
			LogID:     e.LogID,
			Timestamp: e.Timestamp,
			Shard:     uint32(e.Shard),
			Block:     uint64(e.Block),
			Index:     uint64(e.Index),
			ExtraIDs:  e.ExtraIDs,
			Data:      e.Data,
		}
		if e.Timestamped {
			d.Flags |= EntryTimestamped
		}
		if e.Forced {
			d.Flags |= EntryForced
		}
		if !cs.write(wire.OpStreamDeliver, uint64(c.id), 0, d.EncodeHead(nil), e.Data) {
			cs.kill() // wake the read loop; teardown closes the subscription
			return
		}
		c.credit.Add(-1)
	}
}

// grant tops up the delivery window and wakes a parked pusher.
func (c *connSub) grant(n int64) {
	c.credit.Add(n)
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// remove retires one subscription: cancel its pusher, close the store-side
// sub.
func (cs *connStreams) remove(id uint32) {
	cs.mu.Lock()
	c := cs.subs[id]
	delete(cs.subs, id)
	cs.mu.Unlock()
	if c != nil {
		c.cancel()
		c.sub.Close()
	}
}

// active reports how many subscriptions the connection holds. The read loop
// consults it to suspend the idle timeout: a subscription connection is
// supposed to sit quiet between pushes, and dropping it would tear down the
// very tails it exists to keep open.
func (cs *connStreams) active() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.subs)
}

// endAll gracefully retires every subscription for a server drain: each
// pusher is cancelled first (so at most its in-progress deliver precedes the
// end frame on the write mutex), then the client receives an OpStreamEnd
// frame naming the reason — the subscription ends, the connection is not
// reset. closeAll afterwards finds nothing left.
func (cs *connStreams) endAll(msg string) {
	cs.mu.Lock()
	subs := make([]*connSub, 0, len(cs.subs))
	for _, c := range cs.subs {
		subs = append(subs, c)
	}
	cs.subs = map[uint32]*connSub{}
	cs.mu.Unlock()
	for _, c := range subs {
		c.cancel()
		end := wire.StreamEnd{SubID: c.id, Msg: msg}
		cs.write(wire.OpStreamEnd, uint64(c.id), 0, end.Encode(nil), nil)
		c.sub.Close()
	}
}

// closeAll tears down every subscription at connection end. Pushers observe
// the canceled contexts and exit; the caller's inflight.Wait() joins them.
func (cs *connStreams) closeAll() {
	cs.mu.Lock()
	cs.closed = true
	subs := make([]*connSub, 0, len(cs.subs))
	for _, c := range cs.subs {
		subs = append(subs, c)
	}
	cs.subs = map[uint32]*connSub{}
	cs.mu.Unlock()
	for _, c := range subs {
		c.cancel()
		c.sub.Close()
	}
}

// isStreamConnOp reports whether op is a connection-scoped streaming control
// op, handled by the connection's registry rather than dispatch. The group
// ops (OpStreamAck, OpStreamRebalance) are ordinary sequenced mutations and
// go through handle/dispatch like any append.
func isStreamConnOp(op byte) bool {
	switch op {
	case wire.OpStreamSubscribe, wire.OpStreamCredit, wire.OpStreamUnsubscribe:
		return true
	}
	return false
}

// groupLog resolves — creating on first use — the offsets log for a group.
func (s *Server) groupLog(ctx context.Context, group string) (logapi.ID, error) {
	if group == "" || strings.ContainsAny(group, "/\x00") {
		return 0, fmt.Errorf("server: bad group name %q", group)
	}
	path := OffsetsRoot + "/" + group
	if id, err := s.store.Resolve(ctx, path); err == nil {
		return id, nil
	}
	// Racing creators are fine: the loser's CreateLog fails and the
	// re-resolve finds the winner's log.
	s.store.CreateLog(ctx, OffsetsRoot, 0o600, "system")
	if id, err := s.store.CreateLog(ctx, path, 0o600, "system"); err == nil {
		return id, nil
	}
	return s.store.Resolve(ctx, path)
}

// streamGroupOp executes OpStreamAck / OpStreamRebalance: append one group
// record to the group's offsets log, forced (an ack must not be lost with
// the tail) and timestamped (the record order is the audit order).
func (h *connHandler) streamGroupOp(tr *obs.Trace, op byte, payload []byte) (byte, []byte, []byte) {
	gop, err := wire.DecodeStreamGroupOp(payload)
	if err != nil {
		return errResp3(err)
	}
	// Tenant sessions must scope their groups "<tenant>.<group>": the
	// group's offsets log lives in the shared /.offsets namespace, and the
	// prefix is what allowsPath admits there.
	if h.srv.tenanted() {
		ts := h.tenant.Load()
		if ts == nil {
			return errResp3(fmt.Errorf("server: authentication required"))
		}
		if err := ts.allowsGroup(gop.Group); err != nil {
			return errResp3(err)
		}
	}
	switch op {
	case wire.OpStreamAck:
		if gop.Rec.Kind != wire.GroupAck && gop.Rec.Kind != wire.GroupHeartbeat {
			return errResp3(fmt.Errorf("server: kind %d is not an ack record", gop.Rec.Kind))
		}
	case wire.OpStreamRebalance:
		switch gop.Rec.Kind {
		case wire.GroupJoin, wire.GroupLeave, wire.GroupClaim, wire.GroupRelease:
		default:
			return errResp3(fmt.Errorf("server: kind %d is not a rebalance record", gop.Rec.Kind))
		}
	}
	ctx := context.Background()
	id, err := h.srv.groupLog(ctx, gop.Group)
	if err != nil {
		return errResp3(err)
	}
	ts, err := h.srv.store.Append(ctx, id, gop.Rec.Encode(nil), core.AppendOptions{
		Timestamped: true,
		Forced:      true,
		Trace:       tr,
	})
	return appendResp3(ts, err)
}
