package wodev

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Mirror is device-level replication — the paper notes its design "does not
// preclude the possibility of replication occurring at the log device level
// (that is, with mirrored disks)" (§5, footnote 11). Writes go to every
// replica; reads are served by the primary, falling over per block to a
// replica when the primary's copy is unreadable or damaged, so a mirrored
// volume survives block loss that would lose entries on a single device.
//
// The mirror validates reads only to the extent the device can (unwritten/
// invalidated); garbage with a clean device read is detected by the block
// parser above, so ReadValidated lets callers supply that check.
type Mirror struct {
	replicas []Device
	// errs[i] counts read failures (device errors and validation rejections)
	// observed on replica i — per-replica error accounting so operators can
	// see which replica is failing over even when the mirror masks it.
	errs []atomic.Int64
	// failovers counts reads the primary could not serve but a replica could.
	failovers atomic.Int64
	errMu     sync.Mutex
	lastErr   []error
}

// NewMirror mirrors the given devices; all must share geometry.
func NewMirror(replicas ...Device) (*Mirror, error) {
	if len(replicas) == 0 {
		return nil, errors.New("wodev: mirror needs at least one replica")
	}
	for _, d := range replicas[1:] {
		if d.BlockSize() != replicas[0].BlockSize() || d.Capacity() != replicas[0].Capacity() {
			return nil, errors.New("wodev: mirror replicas must share geometry")
		}
	}
	return &Mirror{
		replicas: replicas,
		errs:     make([]atomic.Int64, len(replicas)),
		lastErr:  make([]error, len(replicas)),
	}, nil
}

// noteErr records a read failure on replica i.
func (m *Mirror) noteErr(i int, err error) {
	m.errs[i].Add(1)
	m.errMu.Lock()
	m.lastErr[i] = err
	m.errMu.Unlock()
}

// ReplicaErrors returns, per replica, how many read failures it has served
// since creation. A healthy mirror shows zeros; a rising count on one
// replica means reads are failing over around it.
func (m *Mirror) ReplicaErrors() []int64 {
	out := make([]int64, len(m.errs))
	for i := range m.errs {
		out[i] = m.errs[i].Load()
	}
	return out
}

// LastReplicaError returns the most recent read error observed on replica i
// (nil if it has never failed).
func (m *Mirror) LastReplicaError(i int) error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	return m.lastErr[i]
}

// Failovers counts reads that the primary failed but a replica served.
func (m *Mirror) Failovers() int64 { return m.failovers.Load() }

// BlockSize implements Device.
func (m *Mirror) BlockSize() int { return m.replicas[0].BlockSize() }

// Capacity implements Device.
func (m *Mirror) Capacity() int { return m.replicas[0].Capacity() }

// Written implements Device: the minimum across replicas (a block is only
// durable once every replica has it).
func (m *Mirror) Written() int {
	min := -1
	for _, d := range m.replicas {
		w := d.Written()
		if w == EndUnknown {
			return EndUnknown
		}
		if min == -1 || w < min {
			min = w
		}
	}
	return min
}

// ReadBlock implements Device: primary first, replicas on failure.
func (m *Mirror) ReadBlock(idx int, dst []byte) error {
	var firstErr error
	for i, d := range m.replicas {
		err := d.ReadBlock(idx, dst)
		if err == nil {
			if i > 0 {
				m.failovers.Add(1)
			}
			return nil
		}
		m.noteErr(i, err)
		if firstErr == nil {
			firstErr = err
		}
		// ErrUnwritten on the primary is authoritative (replicas can only
		// be behind, never ahead, for sealed blocks).
		if errors.Is(err, ErrUnwritten) {
			return err
		}
	}
	return firstErr
}

// ReadValidated reads block idx, trying each replica until `valid` accepts
// the contents — the hook a caller uses to route around silent corruption
// that only the block checksum can detect.
func (m *Mirror) ReadValidated(idx int, dst []byte, valid func([]byte) bool) error {
	var firstErr error
	for i, d := range m.replicas {
		err := d.ReadBlock(idx, dst)
		if err == nil && valid(dst) {
			if i > 0 {
				m.failovers.Add(1)
			}
			return nil
		}
		if err == nil {
			err = fmt.Errorf("wodev: replica copy of block %d failed validation", idx)
		}
		m.noteErr(i, err)
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// AppendBlock implements Device: all replicas must accept the block.
func (m *Mirror) AppendBlock(data []byte) (int, error) {
	idx := -1
	for i, d := range m.replicas {
		got, err := d.AppendBlock(data)
		if err != nil {
			return got, fmt.Errorf("wodev: mirror replica %d: %w", i, err)
		}
		if idx == -1 {
			idx = got
		} else if got != idx {
			return idx, fmt.Errorf("wodev: mirror replicas diverged: %d vs %d", idx, got)
		}
	}
	return idx, nil
}

// WriteAt implements Device.
func (m *Mirror) WriteAt(idx int, data []byte) error {
	for i, d := range m.replicas {
		if err := d.WriteAt(idx, data); err != nil {
			return fmt.Errorf("wodev: mirror replica %d: %w", i, err)
		}
	}
	return nil
}

// Invalidate implements Device.
func (m *Mirror) Invalidate(idx int) error {
	for i, d := range m.replicas {
		if err := d.Invalidate(idx); err != nil {
			return fmt.Errorf("wodev: mirror replica %d: %w", i, err)
		}
	}
	return nil
}

// Stats implements Device: summed across replicas.
func (m *Mirror) Stats() Stats {
	var out Stats
	for _, d := range m.replicas {
		s := d.Stats()
		out.Reads += s.Reads
		out.Appends += s.Appends
		out.Invalidations += s.Invalidations
		out.Seeks += s.Seeks
		out.Probes += s.Probes
	}
	return out
}

// ResetStats implements Device.
func (m *Mirror) ResetStats() {
	for _, d := range m.replicas {
		d.ResetStats()
	}
}

// Close implements Device.
func (m *Mirror) Close() error {
	var firstErr error
	for _, d := range m.replicas {
		if err := d.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Replica returns the i-th underlying device (for tests injecting damage).
func (m *Mirror) Replica(i int) Device { return m.replicas[i] }
