package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"clio/internal/analytic"
	"clio/internal/core"
	"clio/internal/wodev"
)

// Fig4Row is one point of Figure 4: the cost of reconstructing entrymap
// information at server initialization, as a function of volume fill.
type Fig4Row struct {
	N      int
	Blocks int
	Theory float64 // (N·log_N b)/2 average
	// Measured is blocks examined (raw scans + entrymap entry reads) by an
	// actual crash recovery, or -1 for theory-only points.
	Measured int
	// EndProbes is the binary-search cost of finding the end (§2.3.1).
	EndProbes int64
}

// RunFig4 reproduces Figure 4: for each N, write a volume in stages and
// crash+recover at each stage, recording the reconstruction work. Theory
// rows cover the paper's full range.
func RunFig4(blockSize int, ns []int, stages []int) ([]Fig4Row, error) {
	if len(ns) == 0 {
		ns = []int{4, 16, 64}
	}
	if len(stages) == 0 {
		stages = []int{100, 1_000, 10_000, 50_000}
	}
	var rows []Fig4Row
	// Theory curves across the paper's x-range.
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		for _, b := range []int{100, 1000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000} {
			rows = append(rows, Fig4Row{
				N: n, Blocks: b,
				Theory:   analytic.Fig4RecoveryBlocks(n, float64(b)),
				Measured: -1,
			})
		}
	}
	for _, n := range ns {
		maxStage := stages[len(stages)-1]
		dev := wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: maxStage + 256})
		opt := core.Options{
			BlockSize:   blockSize,
			Degree:      n,
			CacheBlocks: -1,
			Now:         testNow(),
		}
		svc, err := core.New(dev, opt)
		if err != nil {
			return nil, err
		}
		// Several active log files so entrymap entries carry real bitmaps.
		ids := make([]uint16, 6)
		for i := range ids {
			path := []string{"/a", "/b", "/c", "/d", "/e", "/f"}[i]
			if _, err := svc.CreateLog(path, 0, ""); err != nil {
				return nil, err
			}
			ids[i], _ = svc.Resolve(path)
		}
		rng := rand.New(rand.NewSource(int64(n)))
		payload := make([]byte, blockSize/3)
		for _, stage := range stages {
			for svc.End() < stage {
				id := ids[rng.Intn(len(ids))]
				if _, err := svc.Append(id, payload, core.AppendOptions{}); err != nil {
					return nil, err
				}
			}
			if err := svc.Force(); err != nil {
				return nil, err
			}
			svc.Crash()
			// The reopened device does not report its end, so recovery pays
			// the binary search of §2.3.1 too.
			dev.SetReportEnd(false)
			svc, err = core.Open([]wodev.Device{dev}, opt)
			if err != nil {
				return nil, err
			}
			dev.SetReportEnd(true)
			rep := svc.LastRecovery()
			rows = append(rows, Fig4Row{
				N:         n,
				Blocks:    rep.SealedBlocks,
				Theory:    analytic.Fig4RecoveryBlocks(n, float64(rep.SealedBlocks)),
				Measured:  rep.EntrymapBlocksScanned + rep.EntrymapEntriesRead,
				EndProbes: rep.EndProbes,
			})
		}
		svc.Close()
	}
	return rows, nil
}

// PrintFig4 renders Figure 4.
func PrintFig4(w io.Writer, rows []Fig4Row) {
	fprintf(w, "Figure 4: blocks examined to reconstruct entrymap information at recovery\n")
	fprintf(w, "%5s %12s %12s %10s %10s\n", "N", "b(blocks)", "theory-avg", "measured", "end-probes")
	for _, r := range rows {
		if r.Measured < 0 {
			fprintf(w, "%5d %12d %12.1f %10s %10s\n", r.N, r.Blocks, r.Theory, "-", "-")
		} else {
			fprintf(w, "%5d %12d %12.1f %10d %10d\n", r.N, r.Blocks, r.Theory, r.Measured, r.EndProbes)
		}
	}
}

// CheckpointRow is one point of the checkpointed-recovery experiment (the
// Figure 4 variant): the same crash recovery measured with the checkpoint
// policy on and off, on the same volume contents.
type CheckpointRow struct {
	Blocks   int // sealed blocks at the crash
	Interval int
	// CostFull is EntrymapBlocksScanned + CatalogEntries for a reopen with
	// checkpoints disabled (full reconstruction: the whole catalog history
	// replays).
	CostFull int
	// CostCkpt is the same sum for a checkpointed reopen; it stays bounded
	// by Interval plus a constant as Blocks grows.
	CostCkpt int
	// Replayed is the number of post-checkpoint blocks the checkpointed
	// reopen replayed.
	Replayed int
}

// RunRecoveryCheckpoint grows one volume in stages under the checkpoint
// policy and at each stage crash-recovers the SAME device twice: once with
// checkpoints disabled (full reconstruction) and once with them enabled
// (checkpoint restore + bounded replay). The log-file population is fixed
// up front: a checkpoint snapshots the live catalog, so its size — and with
// it the replay window — is O(live files), and holding that fixed isolates
// the claim under test, that checkpointed reopen cost does not grow with
// the number of sealed blocks while the full reconstruction's does.
func RunRecoveryCheckpoint(blockSize, n, interval int, stages []int) ([]CheckpointRow, error) {
	if len(stages) == 0 {
		stages = []int{200, 1_000, 5_000, 20_000}
	}
	maxStage := stages[len(stages)-1]
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: maxStage + 256})
	ckptOpt := core.Options{
		BlockSize:          blockSize,
		Degree:             n,
		CacheBlocks:        -1,
		Now:                testNow(),
		CheckpointInterval: interval,
	}
	fullOpt := ckptOpt
	fullOpt.CheckpointInterval = 0

	svc, err := core.New(dev, ckptOpt)
	if err != nil {
		return nil, err
	}
	ids := make([]uint16, 100)
	for i := range ids {
		id, err := svc.CreateLog(fmt.Sprintf("/f%04d", i), 0, "")
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	rng := rand.New(rand.NewSource(int64(n)))
	payload := make([]byte, blockSize/3)
	var rows []CheckpointRow
	for _, stage := range stages {
		for svc.End() < stage {
			id := ids[rng.Intn(len(ids))]
			if _, err := svc.Append(id, payload, core.AppendOptions{}); err != nil {
				return nil, err
			}
		}
		if err := svc.Force(); err != nil {
			return nil, err
		}
		svc.Crash()

		// Full reconstruction first (it writes nothing, so the device is
		// unchanged for the checkpointed reopen of the same crash).
		dev.SetReportEnd(false)
		full, err := core.Open([]wodev.Device{dev}, fullOpt)
		if err != nil {
			return nil, err
		}
		fullRep := full.LastRecovery()
		full.Crash()

		svc, err = core.Open([]wodev.Device{dev}, ckptOpt)
		if err != nil {
			return nil, err
		}
		dev.SetReportEnd(true)
		rep := svc.LastRecovery()
		if !rep.CheckpointUsed {
			return nil, fmt.Errorf("experiments: no checkpoint used at %d blocks", rep.SealedBlocks)
		}
		rows = append(rows, CheckpointRow{
			Blocks:   rep.SealedBlocks,
			Interval: interval,
			CostFull: fullRep.EntrymapBlocksScanned + fullRep.CatalogEntries,
			CostCkpt: rep.EntrymapBlocksScanned + rep.CatalogEntries,
			Replayed: rep.BlocksReplayed,
		})
	}
	svc.Close()
	return rows, nil
}

// PrintRecoveryCheckpoint renders the checkpointed-recovery comparison.
func PrintRecoveryCheckpoint(w io.Writer, rows []CheckpointRow) {
	fprintf(w, "Checkpointed recovery: reconstruction work at reopen, full vs checkpoint restore\n")
	fprintf(w, "(cost = entrymap blocks scanned + catalog records replayed; interval = sealed blocks between checkpoints)\n")
	fprintf(w, "%12s %10s %12s %12s %10s\n", "b(blocks)", "interval", "cost-full", "cost-ckpt", "replayed")
	for _, r := range rows {
		fprintf(w, "%12d %10d %12d %12d %10d\n", r.Blocks, r.Interval, r.CostFull, r.CostCkpt, r.Replayed)
	}
}
