package experiments

import (
	"encoding/json"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"clio/internal/core"
	"clio/internal/wodev"
)

// The force experiment measures the synchronous-write hot path in REAL time
// (unlike the paper-table experiments, which run on the virtual clock): each
// cell runs W closed-loop writers issuing forced appends against a device
// with a real injected write latency, and reports the force sojourn
// percentiles, throughput, seal amplification and group-commit batch shape.
// Cells differ in writer count, commit mode (the legacy leader/rider queue
// vs the adaptive gather window + seal pipeline) and NVRAM presence, so the
// output is the perf trajectory ISSUE/CI track across commits.

// ForceRow is one measured cell of the force experiment.
type ForceRow struct {
	Writers int    `json:"writers"`
	Mode    string `json:"mode"` // "fixed" (legacy leader/rider) or "adaptive"
	NVRAM   bool   `json:"nvram"`
	Shards  int    `json:"shards"`
	// Paced marks an open-loop cell: writers issue forces on a fixed
	// schedule at RateOpsPerSec total (0.7× the fixed mode's closed-loop
	// capacity), and sojourn time is measured from the scheduled arrival, so
	// queueing delay is charged to the laggard (no coordinated omission).
	// Closed-loop cells (Paced=false) self-throttle to the store's capacity
	// and are what the seal-amplification gate reads.
	Paced         bool    `json:"paced"`
	RateOpsPerSec float64 `json:"rate_ops_per_sec,omitempty"`

	Ops       int64   `json:"ops"`
	Seconds   float64 `json:"seconds"`
	OpsPerSec float64 `json:"ops_per_sec"`

	P50Micros float64 `json:"p50_us"`
	P95Micros float64 `json:"p95_us"`
	P99Micros float64 `json:"p99_us"`

	Seals         int64   `json:"seals"`
	SealsPerForce float64 `json:"seals_per_force"`
	Commits       int64   `json:"commits"`
	MeanBatch     float64 `json:"mean_batch"`
	// BatchHist counts commit batches in power-of-two entry buckets
	// (index i = batches of 2^i .. 2^(i+1)-1 forced entries).
	BatchHist []int64 `json:"batch_hist"`
}

// ForceReport is the JSON artifact (BENCH_force.json) the CI bench job
// uploads and gates on.
type ForceReport struct {
	GOMAXPROCS        int        `json:"gomaxprocs"`
	DeviceWriteMicros int64      `json:"device_write_us"`
	CellSeconds       float64    `json:"cell_seconds"`
	Rows              []ForceRow `json:"rows"`
}

// ForceConfig parameterizes RunForce; zero values take the defaults noted.
type ForceConfig struct {
	Writers     []int         // default {1, 4, 16, 64}
	CellSeconds float64       // measured duration per cell; default 0.4
	DeviceWrite time.Duration // injected device write latency; default 200µs
	MaxShards   int           // extra shards cells at the top writer count; default 4, <=1 disables
}

func (c *ForceConfig) defaults() {
	if len(c.Writers) == 0 {
		c.Writers = []int{1, 4, 16, 64}
	}
	if c.CellSeconds <= 0 {
		c.CellSeconds = 0.4
	}
	if c.DeviceWrite == 0 {
		c.DeviceWrite = 200 * time.Microsecond
	}
	if c.MaxShards == 0 {
		c.MaxShards = 4
	}
}

// forceModes maps the experiment's mode names onto Options.CommitWindow.
var forceModes = []struct {
	name   string
	window time.Duration
}{
	{"fixed", -1}, // legacy leader/rider queue: no gather window, no pipeline
	{"adaptive", 0},
}

// RunForce runs the full force-latency grid. For each (writers, NVRAM) cell
// it measures both modes closed-loop (capacity, seal amplification), then
// replays both modes open-loop at 0.7× the fixed mode's measured capacity —
// the same offered load for both, so the paced p99 columns compare how each
// commit policy absorbs an external arrival rate rather than how fast it
// self-throttles. One-shard cells cover the writer sweep; MaxShards cells
// rerun the top writer count sharded.
func RunForce(cfg ForceConfig) (*ForceReport, error) {
	cfg.defaults()
	rep := &ForceReport{
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		DeviceWriteMicros: cfg.DeviceWrite.Microseconds(),
		CellSeconds:       cfg.CellSeconds,
	}
	dur := time.Duration(cfg.CellSeconds * float64(time.Second))
	for _, nvram := range []bool{false, true} {
		for _, w := range cfg.Writers {
			var fixedRate float64
			for _, m := range forceModes {
				row, err := runForceCell(w, 1, nvram, m.name, m.window, dur, cfg.DeviceWrite, 0)
				if err != nil {
					return nil, err
				}
				if m.window < 0 {
					fixedRate = row.OpsPerSec
				}
				rep.Rows = append(rep.Rows, row)
			}
			rate := 0.7 * fixedRate
			if rate <= 0 {
				continue
			}
			for _, m := range forceModes {
				row, err := runForceCell(w, 1, nvram, m.name, m.window, dur, cfg.DeviceWrite, rate)
				if err != nil {
					return nil, err
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	if cfg.MaxShards > 1 {
		top := cfg.Writers[len(cfg.Writers)-1]
		for _, m := range forceModes {
			row, err := runForceCell(top, cfg.MaxShards, true, m.name, m.window, dur, cfg.DeviceWrite, 0)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	return rep, nil
}

// newForceService builds one real-time service on a latency-injecting
// in-memory device.
func newForceService(nvram bool, window, devLat time.Duration) (*core.Service, error) {
	mem := wodev.NewMem(wodev.MemOptions{BlockSize: 2048, Capacity: 1 << 16})
	var dev wodev.Device = mem
	if devLat > 0 {
		dev = wodev.NewLatent(mem, devLat, 0)
	}
	var nv core.NVRAM
	if nvram {
		nv = core.NewMemNVRAM()
	}
	return core.New(dev, core.Options{
		BlockSize:    2048,
		Degree:       16,
		CacheBlocks:  -1,
		NVRAM:        nv,
		CommitWindow: window,
	})
}

// runForceCell measures one cell: `writers` goroutines spread round-robin
// over `shards` independent services, each issuing forced appends for `dur`
// and recording per-op sojourn time. rate 0 runs closed-loop (issue, wait,
// repeat); rate > 0 paces the writers to `rate` total forces/sec on a fixed
// schedule, with sojourn measured from the scheduled arrival time.
func runForceCell(writers, shards int, nvram bool, mode string, window, dur, devLat time.Duration, rate float64) (ForceRow, error) {
	svcs := make([]*core.Service, shards)
	ids := make([]uint16, shards)
	for i := range svcs {
		svc, err := newForceService(nvram, window, devLat)
		if err != nil {
			return ForceRow{}, err
		}
		svcs[i] = svc
		if ids[i], err = svc.CreateLog("/force", 0, ""); err != nil {
			return ForceRow{}, err
		}
	}
	defer func() {
		for _, svc := range svcs {
			svc.Close()
		}
	}()

	payload := make([]byte, 64)
	// Warm up: settle the adaptive EWMAs and pay one-time costs (volume
	// header, first seal) outside the measured window.
	for i, svc := range svcs {
		for j := 0; j < 4*writers/shards+4; j++ {
			if _, err := svc.Append(ids[i], payload, core.AppendOptions{Forced: true}); err != nil && !core.IsDegraded(err) {
				return ForceRow{}, err
			}
		}
		svc.ResetCounters()
	}

	lats := make([][]time.Duration, writers)
	var wg sync.WaitGroup
	startc := make(chan struct{})
	stopc := make(chan struct{})
	var errMu sync.Mutex
	var firstErr error
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(writers) / rate * float64(time.Second))
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			svc, id := svcs[w%shards], ids[w%shards]
			<-startc
			// Paced writers stagger their schedules so the offered load is
			// spread, not phase-locked into bursts of `writers`.
			next := time.Now()
			if interval > 0 {
				next = next.Add(interval * time.Duration(w) / time.Duration(writers))
			}
			for {
				select {
				case <-stopc:
					return
				default:
				}
				t0 := time.Now()
				if interval > 0 {
					if wait := next.Sub(t0); wait > 0 {
						time.Sleep(wait)
					}
					t0 = next // sojourn from scheduled arrival, not from wake-up
					next = next.Add(interval)
				}
				_, err := svc.Append(id, payload, core.AppendOptions{Forced: true})
				if err != nil && !core.IsDegraded(err) {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				lats[w] = append(lats[w], time.Since(t0))
			}
		}(w)
	}
	t0 := time.Now()
	close(startc)
	time.Sleep(dur)
	close(stopc)
	wg.Wait()
	elapsed := time.Since(t0).Seconds()
	if firstErr != nil {
		return ForceRow{}, firstErr
	}

	var merged []time.Duration
	for _, l := range lats {
		merged = append(merged, l...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	pct := func(p float64) float64 {
		if len(merged) == 0 {
			return 0
		}
		i := int(p * float64(len(merged)-1))
		return float64(merged[i].Nanoseconds()) / 1e3
	}

	var seals, forces, commits int64
	hist := make([]int64, 9)
	for _, svc := range svcs {
		st := svc.Stats()
		seals += st.BlocksSealed
		forces += st.ForcedWrites
		bh := svc.BatchSizeHistogram()
		for i, v := range bh {
			hist[i] += v
			commits += v
		}
	}
	row := ForceRow{
		Writers:       writers,
		Mode:          mode,
		NVRAM:         nvram,
		Shards:        shards,
		Paced:         rate > 0,
		RateOpsPerSec: rate,
		Ops:           int64(len(merged)),
		Seconds:       elapsed,
		OpsPerSec:     float64(len(merged)) / elapsed,
		P50Micros:     pct(0.50),
		P95Micros:     pct(0.95),
		P99Micros:     pct(0.99),
		Seals:         seals,
		Commits:       commits,
		BatchHist:     hist,
	}
	if forces > 0 {
		row.SealsPerForce = float64(seals) / float64(forces)
	}
	if commits > 0 {
		row.MeanBatch = float64(forces) / float64(commits)
	}
	return row, nil
}

// PrintForce renders the force-experiment rows as a table.
func PrintForce(w io.Writer, rep *ForceReport) {
	fprintf(w, "Force path (real time; closed-loop writers; device write %dus; %.1fs cells)\n",
		rep.DeviceWriteMicros, rep.CellSeconds)
	fprintf(w, "%-8s %-9s %-7s %-6s %-7s %10s %10s %10s %10s %12s %10s\n",
		"writers", "mode", "loop", "nvram", "shards", "ops/s", "p50(us)", "p95(us)", "p99(us)", "seals/force", "batch")
	for _, r := range rep.Rows {
		loop := "closed"
		if r.Paced {
			loop = "paced"
		}
		fprintf(w, "%-8d %-9s %-7s %-6v %-7d %10.0f %10.1f %10.1f %10.1f %12.4f %10.1f\n",
			r.Writers, r.Mode, loop, r.NVRAM, r.Shards, r.OpsPerSec,
			r.P50Micros, r.P95Micros, r.P99Micros, r.SealsPerForce, r.MeanBatch)
	}
}

// WriteForceJSON writes the report as the BENCH_force.json artifact.
func WriteForceJSON(w io.Writer, rep *ForceReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
