// Package group implements consumer groups over streaming reads: N clients
// sharing a group name divide the partitions of a topic among themselves,
// and every acknowledged offset is an ordinary log entry in the reserved
// ".offsets" sublog — write-once storage is the group coordinator.
//
// A topic is a set of top-level partition logs (PartitionPath), spread
// across a sharded store by the ordinary root-segment hash. The group log
// ("/.offsets/<group>") routes to a single shard, so join, heartbeat,
// claim, release and ack records form one total order that every member
// observes through the same live tail subscription it uses for data. The
// protocol needs no other channel:
//
//   - Assignment is deterministic: partition p belongs to the p-th (mod n)
//     member of the sorted live-member list, so members agree without
//     negotiating. Liveness is judged by the log's own clock — a member is
//     live while its last join/heartbeat timestamp is within TTL of the
//     newest group-log timestamp observed — so the live set is a pure
//     function of the applied log prefix, identical for every member at
//     the same prefix.
//   - Claims are fenced by the total order: a claim cites the log position
//     of the last ownership event (claim, release or leave) the claimer
//     observed for the partition, and is valid only if that citation still
//     matches when the claim lands in the log. Two racing claimers cite
//     the same event; the log orders them; the first is valid, the second
//     void. A member starts delivering only after its own claim echoes
//     back valid, so a void claimer never delivers at all.
//   - Handoff rides the same fence: a member that loses a partition stops
//     consuming, drains in-flight acks, then appends a release; the next
//     owner's claim cites that release. An acknowledged entry is never
//     delivered twice within the group.
//   - Recovery is a log replay: at the moment a claim echoes back valid,
//     the claimer's folded state includes every valid ack that preceded
//     the claim in the log, exactly the cursor Watch's From option
//     restores.
package group

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"clio/internal/logapi"
	"clio/internal/stream"
	"clio/internal/wire"
)

// DefaultTTL is the liveness lease: a member unheard from (join or
// heartbeat) for longer — on the group log's own clock — is treated as
// crashed and its partitions are taken over.
const DefaultTTL = 3 * time.Second

// DefaultBuffer bounds the consumer's delivered-message buffer in entries.
const DefaultBuffer = 64

// ErrClosed is returned by Recv after the consumer is closed or killed.
var ErrClosed = errors.New("group: consumer closed")

// ErrNotOwner is returned by Ack when the message's partition has been
// reassigned since delivery; the caller must drop the message — the new
// owner will redeliver it.
var ErrNotOwner = errors.New("group: partition no longer assigned to this consumer")

// LogPath returns the offsets log path for a group.
func LogPath(group string) string { return logapi.OffsetsRoot + "/" + group }

// PartitionPath returns partition p's log path. Partitions are top-level
// logs ("/events" → "/events.p0", "/events.p1", …) so a sharded store
// spreads them across shards by the root-segment hash.
func PartitionPath(topic string, p int) string { return fmt.Sprintf("%s.p%d", topic, p) }

// EnsureLog resolves — creating on first use — a group's offsets log.
// Racing creators are fine: the loser's CreateLog fails and the re-resolve
// finds the winner's log.
func EnsureLog(ctx context.Context, svc logapi.Service, group string) (logapi.ID, error) {
	path := LogPath(group)
	if id, err := svc.Resolve(ctx, path); err == nil {
		return id, nil
	}
	svc.CreateLog(ctx, logapi.OffsetsRoot, 0o600, "system")
	if id, err := svc.CreateLog(ctx, path, 0o600, "system"); err == nil {
		return id, nil
	}
	return svc.Resolve(ctx, path)
}

// EnsureTopic resolves — creating as needed — every partition log of a
// topic and returns their ids in partition order. Producers append to
// ids[p]; consumers only need the topic name.
func EnsureTopic(ctx context.Context, svc logapi.Service, topic string, partitions int) ([]logapi.ID, error) {
	ids := make([]logapi.ID, partitions)
	for p := range ids {
		path := PartitionPath(topic, p)
		id, err := svc.Resolve(ctx, path)
		if err != nil {
			if id, err = svc.CreateLog(ctx, path, 0o644, "group"); err != nil {
				if id, err = svc.Resolve(ctx, path); err != nil {
					return nil, err
				}
			}
		}
		ids[p] = id
	}
	return ids, nil
}

// wireGroup is the optional fast path a network client provides: the server
// validates and appends group records itself (OpStreamAck /
// OpStreamRebalance). Services without it get plain appends to the group
// log.
type wireGroup interface {
	GroupAck(ctx context.Context, group string, rec wire.GroupRec) (int64, error)
	GroupRebalance(ctx context.Context, group string, rec wire.GroupRec) (int64, error)
}

// Options tunes a consumer; the zero value uses the defaults.
type Options struct {
	// TTL is the liveness lease (DefaultTTL when zero); heartbeats are
	// appended every Heartbeat (TTL/3 when zero).
	TTL       time.Duration
	Heartbeat time.Duration
	// Buffer bounds the delivered-message buffer shared by the consumer's
	// partition tails (DefaultBuffer when zero).
	Buffer int
	// Metrics, when set, records group membership and ack counts.
	Metrics *stream.Metrics
}

// Msg is one delivered entry plus the partition bookkeeping Ack needs.
type Msg struct {
	*logapi.Entry
	Partition int

	count uint64 // cumulative per-partition delivery count, carried into the ack
	gen   uint64 // pump generation fencing stale buffered messages
}

// ackPos is the furthest acknowledged gap position observed for one
// partition.
type ackPos struct {
	shard      int
	block, rec int
	count      uint64
	valid      bool
}

func (a ackPos) before(b ackPos) bool {
	if a.block != b.block {
		return a.block < b.block
	}
	return a.rec < b.rec
}

// logPos is a gap position inside the group log itself (Block, Index+1 of
// a record): the fencing epoch a claim cites. The zero value means "no
// ownership event yet".
type logPos struct {
	block, rec int
}

// pump is one running partition tail.
type pump struct {
	cancel context.CancelFunc
	done   chan struct{}
}

// Consumer is one member of a consumer group. Join starts it; Recv/Ack
// drive it; Close leaves gracefully, Kill simulates a crash.
type Consumer struct {
	svc        logapi.StreamService
	group, me  string
	topic      string
	partitions int
	opt        Options
	logID      logapi.ID

	ctx    context.Context
	cancel context.CancelFunc
	quit   chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
	out    chan *Msg

	// rmu serializes retarget/startConfirmed/leave — the only paths that
	// start and stop pumps.
	rmu sync.Mutex

	mu       sync.Mutex
	members  map[string]int64 // member → group-log timestamp of last join/heartbeat
	lastTS   int64            // newest group-log timestamp observed (the log's clock)
	owner    map[int]string   // partition → current claim holder (valid events only)
	epoch    map[int]logPos   // partition → position of the last valid ownership event
	pending  map[int]bool     // partition → our claim is in the log awaiting its echo
	acked    map[int]ackPos
	assigned map[int]bool
	pumps    map[int]*pump
	counts   map[int]uint64
	gens     map[int]uint64
	ackWG    map[int]*sync.WaitGroup
	failure  error
}

// Join adds a member to a consumer group over a topic with the given
// partition count and returns the running consumer. Every member of a group
// must use the same topic and partition count; member names must be unique
// among live members.
func Join(ctx context.Context, svc logapi.StreamService, grp, member, topic string, partitions int, opt Options) (*Consumer, error) {
	if grp == "" || member == "" || partitions <= 0 {
		return nil, fmt.Errorf("group: need a group name, a member name and a positive partition count")
	}
	if opt.TTL <= 0 {
		opt.TTL = DefaultTTL
	}
	if opt.Heartbeat <= 0 {
		opt.Heartbeat = opt.TTL / 3
	}
	if opt.Buffer <= 0 {
		opt.Buffer = DefaultBuffer
	}
	logID, err := EnsureLog(ctx, svc, grp)
	if err != nil {
		return nil, err
	}
	rctx, cancel := context.WithCancel(context.Background())
	c := &Consumer{
		svc:        svc,
		group:      grp,
		me:         member,
		topic:      topic,
		partitions: partitions,
		opt:        opt,
		logID:      logID,
		ctx:        rctx,
		cancel:     cancel,
		quit:       make(chan struct{}),
		out:        make(chan *Msg, opt.Buffer),
		members:    make(map[string]int64),
		owner:      make(map[int]string),
		epoch:      make(map[int]logPos),
		pending:    make(map[int]bool),
		acked:      make(map[int]ackPos),
		assigned:   make(map[int]bool),
		pumps:      make(map[int]*pump),
		counts:     make(map[int]uint64),
		gens:       make(map[int]uint64),
		ackWG:      make(map[int]*sync.WaitGroup),
	}
	// Subscribe to the group log before appending the join record so the
	// record — and everything before it — flows through the watch.
	sub, err := svc.Watch(rctx, LogPath(grp), logapi.WatchOptions{FromStart: true})
	if err != nil {
		cancel()
		return nil, err
	}
	if err := c.append(ctx, wire.GroupRec{Kind: wire.GroupJoin, Member: member}); err != nil {
		sub.Close()
		cancel()
		return nil, err
	}
	opt.Metrics.GroupMemberAdd(1)
	c.wg.Add(2)
	go c.watchOffsets(sub)
	go c.manage()
	return c, nil
}

// append writes one group record to the offsets log, forced (an ack must
// not be lost with the tail) and timestamped (record order is audit order,
// and the timestamps are the group's liveness clock).
func (c *Consumer) append(ctx context.Context, rec wire.GroupRec) error {
	if gw, ok := c.svc.(wireGroup); ok {
		var err error
		if rec.Kind == wire.GroupAck || rec.Kind == wire.GroupHeartbeat {
			_, err = gw.GroupAck(ctx, c.group, rec)
		} else {
			_, err = gw.GroupRebalance(ctx, c.group, rec)
		}
		return err
	}
	_, err := c.svc.Append(ctx, c.logID, rec.Encode(nil),
		logapi.AppendOptions{Forced: true, Timestamped: true})
	return err
}

// watchOffsets replays and tails the group log, feeding every record
// through apply and re-deriving the assignment.
func (c *Consumer) watchOffsets(sub logapi.Subscription) {
	defer c.wg.Done()
	defer sub.Close()
	for {
		e, err := sub.Recv(c.ctx)
		if err != nil {
			if c.ctx.Err() == nil {
				c.fail(fmt.Errorf("group: offsets watch: %w", err))
			}
			return
		}
		rec, err := wire.DecodeGroupRec(e.Data)
		if err != nil {
			continue // not a group record; ignore
		}
		if p := c.apply(e, rec); p >= 0 {
			c.startConfirmed(p)
		}
		c.retarget()
	}
}

// apply folds one group record into the membership state and returns the
// partition whose claim by this member just echoed back valid (-1
// otherwise). The fold is a pure function of the log prefix: claim
// validity, ownership and liveness never consult local time, so every
// member — and the offline audit — agrees record by record.
func (c *Consumer) apply(e *logapi.Entry, rec *wire.GroupRec) int {
	confirmed := -1
	p := int(rec.Partition)
	pos := logPos{block: e.Block, rec: e.Index + 1}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.Timestamp > c.lastTS {
		c.lastTS = e.Timestamp
	}
	switch rec.Kind {
	case wire.GroupJoin, wire.GroupHeartbeat:
		if e.Timestamp > c.members[rec.Member] {
			c.members[rec.Member] = e.Timestamp
		}
	case wire.GroupLeave:
		delete(c.members, rec.Member)
		for q, o := range c.owner {
			if o == rec.Member {
				delete(c.owner, q)
				c.epoch[q] = pos
			}
		}
	case wire.GroupClaim:
		cite := logPos{block: int(rec.Block), rec: int(rec.Rec)}
		if valid := cite == c.epoch[p]; valid {
			if c.owner[p] == c.me && rec.Member != c.me {
				// A valid takeover of a partition we hold (our lease looked
				// expired to the claimer): fence our acks immediately; the
				// retarget that follows stops the pump.
				delete(c.assigned, p)
			}
			c.owner[p] = rec.Member
			c.epoch[p] = pos
			if rec.Member == c.me && c.pending[p] {
				confirmed = p
			}
		}
		if rec.Member == c.me {
			delete(c.pending, p) // echoed — valid or void, it is resolved
		}
	case wire.GroupRelease:
		if c.owner[p] == rec.Member {
			delete(c.owner, p)
			c.epoch[p] = pos
		}
	case wire.GroupAck:
		if c.owner[p] != rec.Member {
			break // void: landed after the member lost the partition
		}
		st := ackPos{shard: int(rec.Shard), block: int(rec.Block), rec: int(rec.Rec), count: rec.Count, valid: true}
		if cur := c.acked[p]; !cur.valid || cur.before(st) {
			c.acked[p] = st
		}
	}
	return confirmed
}

// manage appends heartbeats and re-derives the assignment on every tick (a
// member may have expired); on Close it performs the graceful leave.
func (c *Consumer) manage() {
	defer c.wg.Done()
	defer c.opt.Metrics.GroupMemberAdd(-1)
	t := time.NewTicker(c.opt.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.append(c.ctx, wire.GroupRec{Kind: wire.GroupHeartbeat, Member: c.me})
			c.retarget()
		case <-c.quit:
			c.leave()
			return
		case <-c.ctx.Done():
			return
		}
	}
}

// liveLocked returns the sorted live-member list; the caller holds c.mu.
// A member is live while its last join/heartbeat timestamp is within TTL
// of the newest group-log timestamp observed: the log is its own liveness
// clock, so the live set depends only on the applied prefix. (Local
// receipt time would diverge across members — a joiner replaying the log
// would restart every dead member's lease at its own join time.)
func (c *Consumer) liveLocked() []string {
	live := make([]string, 0, len(c.members))
	for m, ts := range c.members {
		if c.lastTS-ts <= int64(c.opt.TTL) {
			live = append(live, m)
		}
	}
	sort.Strings(live)
	return live
}

// retarget re-derives the deterministic assignment (partition p → sorted
// live member p mod n) and converges the running pumps to it: lost
// partitions stop, drain their in-flight acks and append a release; gained
// partitions are claimed — citing the fencing epoch — once the previous
// holder has released or expired. Pumps start in startConfirmed, never
// here: delivery waits for the claim's valid echo.
func (c *Consumer) retarget() {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	select {
	case <-c.quit:
		return // the leave path owns the pumps now
	default:
	}
	c.mu.Lock()
	live := c.liveLocked()
	mine := make(map[int]bool)
	if len(live) > 0 {
		for p := 0; p < c.partitions; p++ {
			if live[p%len(live)] == c.me {
				mine[p] = true
			}
		}
	}
	type handoff struct {
		p       int
		pu      *pump
		wg      *sync.WaitGroup
		release bool
	}
	var drop []handoff
	for p, pu := range c.pumps {
		if mine[p] && c.owner[p] == c.me {
			continue
		}
		// Lost the assignment (normal handoff: release after the drain) or
		// the ownership itself (a valid takeover fenced us; the new owner's
		// claim is already in the log, there is nothing to release).
		drop = append(drop, handoff{p, pu, c.ackWG[p], c.owner[p] == c.me})
		delete(c.pumps, p)
		delete(c.assigned, p)
	}
	var take []int
	var cites []logPos
	for p := range mine {
		if c.pumps[p] != nil || c.pending[p] {
			continue
		}
		if o, held := c.owner[p]; held && o != c.me {
			if ts, ok := c.members[o]; ok && c.lastTS-ts <= int64(c.opt.TTL) {
				continue // a live holder has not released yet; the release record will retrigger us
			}
		}
		c.pending[p] = true
		take = append(take, p)
		cites = append(cites, c.epoch[p])
	}
	c.mu.Unlock()

	for _, d := range drop {
		// Stop consuming, drain in-flight acks, then release: the release
		// record lands after our last ack in the group log's total order,
		// so the claimer's resume position covers everything we acked.
		d.pu.cancel()
		<-d.pu.done
		if d.wg != nil {
			d.wg.Wait()
		}
		if d.release {
			c.append(c.ctx, wire.GroupRec{Kind: wire.GroupRelease, Member: c.me, Partition: uint32(d.p)})
		}
	}
	for i, p := range take {
		// The claim cites the last ownership event we observed. If another
		// claim citing the same event lands first, ours is void when it
		// echoes and we never start delivering.
		err := c.append(c.ctx, wire.GroupRec{
			Kind: wire.GroupClaim, Member: c.me, Partition: uint32(p),
			Block: uint64(cites[i].block), Rec: uint64(cites[i].rec),
		})
		if err != nil {
			c.mu.Lock()
			delete(c.pending, p)
			c.mu.Unlock()
		}
	}
}

// startConfirmed starts the pump for a partition whose claim just echoed
// back valid. At this point in the fold we are the owner, and acked
// includes every valid ack that preceded our claim in the log — so the
// resume position is exact by total order, not by local timing.
func (c *Consumer) startConfirmed(p int) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	select {
	case <-c.quit:
		return
	default:
	}
	c.mu.Lock()
	if c.pumps[p] != nil || c.owner[p] != c.me || c.ctx.Err() != nil {
		c.mu.Unlock()
		return
	}
	pctx, cancel := context.WithCancel(c.ctx)
	pu := &pump{cancel: cancel, done: make(chan struct{})}
	c.pumps[p] = pu
	c.assigned[p] = true
	c.gens[p]++
	gen := c.gens[p]
	st := c.acked[p]
	c.counts[p] = st.count
	if c.ackWG[p] == nil {
		c.ackWG[p] = &sync.WaitGroup{}
	}
	c.mu.Unlock()
	c.wg.Add(1)
	go c.runPump(pctx, p, gen, st, pu)
}

// runPump tails one partition into the shared delivery buffer.
func (c *Consumer) runPump(ctx context.Context, p int, gen uint64, st ackPos, pu *pump) {
	defer c.wg.Done()
	defer close(pu.done)
	opts := logapi.WatchOptions{Buffer: c.opt.Buffer}
	if st.valid {
		opts.From = []logapi.Position{{Shard: st.shard, Block: st.block, Rec: st.rec}}
	} else {
		opts.FromStart = true
	}
	sub, err := c.svc.Watch(ctx, PartitionPath(c.topic, p), opts)
	if err != nil {
		if ctx.Err() == nil {
			c.fail(fmt.Errorf("group: watch partition %d: %w", p, err))
		}
		return
	}
	defer sub.Close()
	for {
		e, err := sub.Recv(ctx)
		if err != nil {
			if ctx.Err() == nil {
				c.fail(fmt.Errorf("group: partition %d: %w", p, err))
			}
			return
		}
		c.mu.Lock()
		c.counts[p]++
		cnt := c.counts[p]
		c.mu.Unlock()
		m := &Msg{Entry: e, Partition: p, count: cnt, gen: gen}
		select {
		case c.out <- m:
		case <-ctx.Done():
			return
		}
	}
}

// Recv returns the next delivered message from any assigned partition.
// Within a partition, messages arrive in log order.
func (c *Consumer) Recv(ctx context.Context) (*Msg, error) {
	select {
	case m := <-c.out:
		return m, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-c.ctx.Done():
		if err := c.Err(); err != nil {
			return nil, err
		}
		return nil, ErrClosed
	}
}

// Ack durably acknowledges a message on behalf of the group: one forced
// record in the offsets log carrying the gap position after the entry. A
// message whose partition has moved since delivery is refused (ErrNotOwner)
// — dropping it is correct, because only the current owner redelivers.
func (c *Consumer) Ack(ctx context.Context, m *Msg) error {
	c.mu.Lock()
	if !c.assigned[m.Partition] || c.gens[m.Partition] != m.gen {
		c.mu.Unlock()
		return ErrNotOwner
	}
	wg := c.ackWG[m.Partition]
	wg.Add(1)
	c.mu.Unlock()
	defer wg.Done()
	err := c.append(ctx, wire.GroupRec{
		Kind:      wire.GroupAck,
		Member:    c.me,
		Partition: uint32(m.Partition),
		Shard:     uint32(m.Entry.Shard),
		Block:     uint64(m.Entry.Block),
		Rec:       uint64(m.Entry.Index + 1),
		Count:     m.count,
	})
	if err != nil {
		return err
	}
	c.opt.Metrics.GroupAckInc()
	c.mu.Lock()
	st := ackPos{shard: m.Entry.Shard, block: m.Entry.Block, rec: m.Entry.Index + 1, count: m.count, valid: true}
	if cur := c.acked[m.Partition]; !cur.valid || cur.before(st) {
		c.acked[m.Partition] = st
	}
	c.mu.Unlock()
	return nil
}

// Assigned returns the partitions currently assigned to this member,
// sorted.
func (c *Consumer) Assigned() []int {
	c.mu.Lock()
	out := make([]int, 0, len(c.assigned))
	for p := range c.assigned {
		out = append(out, p)
	}
	c.mu.Unlock()
	sort.Ints(out)
	return out
}

// Members returns the sorted live-member list as this member sees it.
func (c *Consumer) Members() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.liveLocked()
}

// Err returns the failure that stopped the consumer, if any.
func (c *Consumer) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failure
}

func (c *Consumer) fail(err error) {
	c.mu.Lock()
	if c.failure == nil {
		c.failure = err
	}
	c.mu.Unlock()
	c.cancel()
}

// leave is the graceful exit: stop every pump, drain in-flight acks,
// release each held partition, append the leave record, then tear down.
func (c *Consumer) leave() {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	c.mu.Lock()
	held := make(map[int]*pump, len(c.pumps))
	wgs := make(map[int]*sync.WaitGroup, len(c.pumps))
	for p, pu := range c.pumps {
		held[p] = pu
		wgs[p] = c.ackWG[p]
	}
	c.pumps = make(map[int]*pump)
	c.assigned = make(map[int]bool)
	c.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for p, pu := range held {
		pu.cancel()
		<-pu.done
		if wgs[p] != nil {
			wgs[p].Wait()
		}
		c.append(ctx, wire.GroupRec{Kind: wire.GroupRelease, Member: c.me, Partition: uint32(p)})
	}
	// The leave record clears any partition still owned — including one
	// whose claim is in flight and will land before it in the log.
	c.append(ctx, wire.GroupRec{Kind: wire.GroupLeave, Member: c.me})
	c.cancel()
}

// Close leaves the group gracefully: held partitions are released so the
// remaining members take them over immediately, without waiting out the
// TTL.
func (c *Consumer) Close() error {
	c.once.Do(func() { close(c.quit) })
	c.wg.Wait()
	return nil
}

// Kill stops the consumer abruptly — no releases, no leave record — as a
// crash would. The group recovers by TTL expiry. In-flight acks are drained
// first so a caller that records successful acks observes a consistent
// trail.
func (c *Consumer) Kill() {
	c.cancel()
	c.mu.Lock()
	c.assigned = make(map[int]bool)
	wgs := make([]*sync.WaitGroup, 0, len(c.ackWG))
	for _, wg := range c.ackWG {
		wgs = append(wgs, wg)
	}
	c.mu.Unlock()
	for _, wg := range wgs {
		wg.Wait()
	}
	c.wg.Wait()
}
