package wodev

import (
	"errors"
	"testing"
	"time"

	"clio/internal/faults"
)

func flakyPair(t *testing.T) (*Flaky, *MemDevice) {
	t.Helper()
	mem := NewMem(MemOptions{BlockSize: 64, Capacity: 128})
	return NewFlaky(mem, 1), mem
}

func TestFlakyInjectsTransientErrors(t *testing.T) {
	f, mem := flakyPair(t)
	f.FailAppends(1)
	data := make([]byte, 64)
	if _, err := f.AppendBlock(data); !errors.Is(err, ErrTransient) {
		t.Fatalf("AppendBlock = %v, want ErrTransient", err)
	}
	if mem.Written() != 0 {
		t.Fatalf("failed append reached the device: written=%d", mem.Written())
	}
	if faults.Classify(ErrTransient) != faults.Transient {
		t.Fatalf("ErrTransient classifies as %v", faults.Classify(ErrTransient))
	}

	f.FailAppends(0)
	idx, err := f.AppendBlock(data)
	if err != nil || idx != 0 {
		t.Fatalf("clean append: idx=%d err=%v", idx, err)
	}

	f.FailReads(1)
	dst := make([]byte, 64)
	if err := f.ReadBlock(0, dst); !errors.Is(err, ErrTransient) {
		t.Fatalf("ReadBlock = %v, want ErrTransient", err)
	}
	f.FailReads(0)
	if err := f.ReadBlock(0, dst); err != nil {
		t.Fatalf("clean read: %v", err)
	}

	st := f.FaultStats()
	if st.ReadFaults != 1 || st.AppendFaults != 1 {
		t.Fatalf("stats = %+v, want 1 read / 1 append fault", st)
	}
}

func TestFlakyMaxConsecutive(t *testing.T) {
	f, _ := flakyPair(t)
	f.FailAppends(1)
	f.MaxConsecutive(3)
	data := make([]byte, 64)
	// With prob 1 but a run bound of 3, the 4th attempt must succeed.
	var failures int
	for i := 0; i < 4; i++ {
		if _, err := f.AppendBlock(data); err != nil {
			failures++
		} else {
			break
		}
	}
	if failures != 3 {
		t.Fatalf("saw %d consecutive failures before success, want 3", failures)
	}
}

func TestFlakyPauseResume(t *testing.T) {
	f, _ := flakyPair(t)
	f.FailAppends(1)
	f.Pause()
	data := make([]byte, 64)
	if _, err := f.AppendBlock(data); err != nil {
		t.Fatalf("paused flaky still injected: %v", err)
	}
	f.Resume()
	if _, err := f.AppendBlock(data); !errors.Is(err, ErrTransient) {
		t.Fatalf("resumed flaky did not inject: %v", err)
	}
}

func TestFlakyLatencySpike(t *testing.T) {
	f, _ := flakyPair(t)
	var slept []time.Duration
	f.Sleep = func(d time.Duration) { slept = append(slept, d) }
	f.Spike(1, 5*time.Millisecond)
	data := make([]byte, 64)
	if _, err := f.AppendBlock(data); err != nil {
		t.Fatalf("spiking append failed: %v", err)
	}
	if len(slept) != 1 || slept[0] != 5*time.Millisecond {
		t.Fatalf("slept = %v, want one 5ms spike", slept)
	}
	if f.FaultStats().Spikes != 1 {
		t.Fatalf("spike not counted: %+v", f.FaultStats())
	}
}

func TestFlakySeededDeterminism(t *testing.T) {
	run := func() []bool {
		mem := NewMem(MemOptions{BlockSize: 64, Capacity: 128})
		f := NewFlaky(mem, 99)
		f.FailAppends(0.5)
		var outcomes []bool
		data := make([]byte, 64)
		for i := 0; i < 32; i++ {
			_, err := f.AppendBlock(data)
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
}

func TestFlakyRetryThrough(t *testing.T) {
	// End-to-end with the faults retry policy: a 50% flaky device with a
	// consecutive-run bound is always masked by a 4-attempt policy.
	f, mem := flakyPair(t)
	f.FailAppends(0.5)
	f.MaxConsecutive(3)
	p := faults.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond,
		Sleep: func(time.Duration) {}}
	data := make([]byte, 64)
	for i := 0; i < 50; i++ {
		var idx int
		err := p.Do(func() error {
			var e error
			idx, e = f.AppendBlock(data)
			return e
		})
		if err != nil {
			t.Fatalf("append %d not masked: %v", i, err)
		}
		if idx != i {
			t.Fatalf("append %d landed at %d", i, idx)
		}
	}
	if mem.Written() != 50 {
		t.Fatalf("written = %d, want 50", mem.Written())
	}
}

func TestMirrorReplicaErrorAccounting(t *testing.T) {
	a := NewMem(MemOptions{BlockSize: 64, Capacity: 16})
	b := NewMem(MemOptions{BlockSize: 64, Capacity: 16})
	m, err := NewMirror(a, b)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	for i := range data {
		data[i] = 0xAB
	}
	if _, err := m.AppendBlock(data); err != nil {
		t.Fatal(err)
	}
	// Damage the primary's copy: reads must fail over and account the error.
	if err := a.Damage(0, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	if err := m.ReadValidated(0, dst, func(p []byte) bool { return p[0] == 0xAB }); err != nil {
		t.Fatalf("mirror read with damaged primary: %v", err)
	}
	if dst[0] != 0xAB {
		t.Fatal("read returned primary's garbage, not the replica copy")
	}
	errs := m.ReplicaErrors()
	if errs[0] != 1 || errs[1] != 0 {
		t.Fatalf("ReplicaErrors = %v, want [1 0]", errs)
	}
	if m.Failovers() != 1 {
		t.Fatalf("Failovers = %d, want 1", m.Failovers())
	}
	if m.LastReplicaError(0) == nil {
		t.Fatal("LastReplicaError(0) = nil")
	}
	if m.LastReplicaError(1) != nil {
		t.Fatalf("LastReplicaError(1) = %v, want nil", m.LastReplicaError(1))
	}
}
