package server

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"clio/internal/core"
	"clio/internal/faults"
	"clio/internal/obs"
	"clio/internal/wire"
	"clio/internal/wodev"
)

// tracedRoundTrip sends one frame under an explicit trace ID and requires the
// response to echo it.
func tracedRoundTrip(t *testing.T, conn net.Conn, op byte, seq, trace uint64, payload []byte) (byte, []byte) {
	t.Helper()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := WriteFrame(conn, op, seq, trace, payload); err != nil {
		t.Fatal(err)
	}
	status, gotSeq, gotTrace, resp, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if gotSeq != seq {
		t.Fatalf("response seq %d, want %d", gotSeq, seq)
	}
	if gotTrace != trace {
		t.Fatalf("response trace %d, want %d", gotTrace, trace)
	}
	return status, resp
}

// TestAdminEndToEnd drives the full observability path: a traced forced
// append through the wire protocol into a service without NVRAM (so the
// force seals to the device), then a scrape of the admin mux asserting that
// counters from every layer — core, cache, device, entrymap locator, fault
// registry, server — appear in /metrics, that /statusz renders, and that
// /tracez holds the append's spans across server dispatch, group commit and
// device write.
func TestAdminEndToEnd(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 12})
	now := int64(0)
	svc, err := core.New(dev, core.Options{
		BlockSize: 512, Degree: 8,
		Now:    func() int64 { now += 1000; return now },
		Faults: faults.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(svc)
	srv.Tracer = obs.NewTracer(32, 0) // zero threshold: every request is "slow"
	reg := obs.NewRegistry()
	svc.RegisterMetrics(reg)
	srv.RegisterMetrics(reg)
	obs.RegisterProcessMetrics(reg)

	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	defer func() { cConn.Close(); srv.Close(); svc.Close() }()

	// Create a log, force-append under trace 99, then read it back.
	p := PutString(nil, "/obs")
	p = wire.PutUint16(p, 0o644)
	p = PutString(p, "test")
	status, resp := tracedRoundTrip(t, cConn, OpCreate, 0, 7, p)
	if status != StatusOK {
		t.Fatalf("create: status %d", status)
	}
	id, err := NewDecoder(resp).Uvarint()
	if err != nil {
		t.Fatal(err)
	}
	ap := wire.PutUvarint(nil, id)
	ap = append(ap, AppendForced)
	ap = PutBytes(ap, []byte("observable entry"))
	if status, _ := tracedRoundTrip(t, cConn, OpAppend, 1, 99, ap); status != StatusOK {
		t.Fatalf("append: status %d", status)
	}
	status, resp = tracedRoundTrip(t, cConn, OpCursorOpen, 0, 0, PutString(nil, "/obs"))
	if status != StatusOK {
		t.Fatalf("cursor open: status %d", status)
	}
	handle, err := NewDecoder(resp).Uint32()
	if err != nil {
		t.Fatal(err)
	}
	if status, _ = tracedRoundTrip(t, cConn, OpNext, 0, 0, wire.PutUvarint(nil, uint64(handle))); status != StatusOK {
		t.Fatalf("next: status %d", status)
	}

	// The admin surface, as cliod -admin wires it.
	mux := obs.NewAdminMux(reg, srv.Tracer, func() any {
		return map[string]any{"core": svc.Status(), "server": srv.Status()}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	metrics := string(body)
	for _, want := range []string{
		"clio_core_entries_appended_total 1\n",
		"clio_core_forced_writes_total 1\n",
		`clio_server_requests_total{op="append"} 1`,
		`clio_server_requests_total{op="create"} 1`,
		"clio_cache_hits_total",
		"clio_wodev_reads_total",
		"clio_wodev_appends_total",
		"clio_entrymap_entries_examined_total",
		"# HELP clio_fault_point_hits_total",
		"clio_core_append_seconds_bucket{le=",
		"clio_core_force_seconds_count 1",
		"clio_server_request_seconds_bucket{le=",
		"clio_go_goroutines",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	res, err = http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var statusz struct {
		Core   core.ServiceStatus `json:"core"`
		Server ServerStatus       `json:"server"`
	}
	err = json.NewDecoder(res.Body).Decode(&statusz)
	res.Body.Close()
	if err != nil {
		t.Fatalf("/statusz does not parse: %v", err)
	}
	if statusz.Core.Stats.EntriesAppended != 1 || statusz.Core.BlockSize != 512 {
		t.Errorf("statusz core = %+v", statusz.Core)
	}
	if statusz.Server.Conns != 1 {
		t.Errorf("statusz server conns = %d, want 1", statusz.Server.Conns)
	}

	res, err = http.Get(ts.URL + "/tracez")
	if err != nil {
		t.Fatal(err)
	}
	var tracez struct {
		Recent []obs.TraceRecord `json:"recent"`
		Slow   []obs.TraceRecord `json:"slow"`
	}
	err = json.NewDecoder(res.Body).Decode(&tracez)
	res.Body.Close()
	if err != nil {
		t.Fatalf("/tracez does not parse: %v", err)
	}
	var appendTrace *obs.TraceRecord
	for i := range tracez.Slow {
		if tracez.Slow[i].ID == 99 {
			appendTrace = &tracez.Slow[i]
		}
	}
	if appendTrace == nil {
		t.Fatalf("traced append (id 99) not captured; slow ring = %+v", tracez.Slow)
	}
	if appendTrace.Op != "append" {
		t.Errorf("trace op = %q", appendTrace.Op)
	}
	names := map[string]bool{}
	for _, sp := range appendTrace.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"server.dispatch", "core.group_commit", "wodev.write"} {
		if !names[want] {
			t.Errorf("trace missing span %q; have %+v", want, appendTrace.Spans)
		}
	}
}

// TestUntracedRequestsSkipTracer checks that trace ID 0 still works and that
// requests without a tracer pay no capture.
func TestUntracedRequestsSkipTracer(t *testing.T) {
	_, conn := testServer(t) // testServer sets no Tracer
	if status, _ := roundTrip(t, conn, OpPing, nil); status != StatusOK {
		t.Fatal("ping failed")
	}
}
