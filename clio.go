// Package clio is a log service exploiting write-once storage: a Go
// implementation of the Clio system from "Log Files: An Extended File
// Service Exploiting Write-Once Storage" (Finlayson & Cheriton, 1987).
//
// Clio provides *log files*: readable, append-only files accessed much like
// conventional files — named in a directory hierarchy, read sequentially or
// randomly, seekable by time — stored on media that only ever need support
// append-only writes (write-once optical disk in the paper; simulated
// write-once devices or plain files here, with the append-only policy
// enforced at the device layer).
//
// # Quick start
//
//	svc, err := clio.CreateDir("/var/log/clio", clio.Options{})
//	if err != nil { ... }
//	defer svc.Close()
//
//	id, _ := svc.CreateLog("/audit", 0o644, "root")
//	svc.Append(id, []byte("user smith logged in"), clio.AppendOptions{Forced: true})
//
//	cur, _ := svc.OpenCursor("/audit")
//	for {
//		e, err := cur.Next()
//		if err == io.EOF { break }
//		fmt.Printf("%s\n", e.Data)
//	}
//
// The heavy lifting lives in internal packages; this package re-exports the
// service API and provides file-backed deployment helpers.
package clio

import (
	"clio/internal/core"
	"clio/internal/vclock"
	"clio/internal/volume"
	"clio/internal/wodev"
)

// Service is the Clio log service for one volume sequence. See the internal
// core package for method documentation.
type Service = core.Service

// Options configures a Service.
type Options = core.Options

// AppendOptions controls one append (timestamping and forced durability).
type AppendOptions = core.AppendOptions

// Entry is one log entry as returned by a cursor.
type Entry = core.Entry

// Cursor iterates a log file in either direction and seeks by time.
type Cursor = core.Cursor

// Stats aggregates service activity counters.
type Stats = core.Stats

// RecoveryReport describes the work done by server initialization.
type RecoveryReport = core.RecoveryReport

// NVRAM models the rewriteable non-volatile tail storage of §2.3.1.
type NVRAM = core.NVRAM

// Allocator provides successor volumes when the active volume fills.
type Allocator = core.Allocator

// Errors re-exported from the core service.
var (
	ErrClosed        = core.ErrClosed
	ErrEntryTooLarge = core.ErrEntryTooLarge
	ErrNoAllocator   = core.ErrNoAllocator
	ErrSystemLog     = core.ErrSystemLog
	ErrLost          = core.ErrLost
)

// NewMemNVRAM returns an in-memory NVRAM simulation.
func NewMemNVRAM() *core.MemNVRAM { return core.NewMemNVRAM() }

// NewFileNVRAM returns an NVRAM persisted in a sidecar file.
func NewFileNVRAM(path string) *core.FileNVRAM { return core.NewFileNVRAM(path) }

// NewCostClock returns a virtual clock charging the paper-calibrated cost
// model, for use as Options.Clock in experiments.
func NewCostClock() *vclock.Clock { return vclock.New(vclock.DefaultModel()) }

// New creates a brand-new volume sequence on a fresh write-once device.
func New(dev wodev.Device, opt Options) (*Service, error) { return core.New(dev, opt) }

// Open mounts the devices of an existing volume sequence and recovers.
func Open(devs []wodev.Device, opt Options) (*Service, error) { return core.Open(devs, opt) }

// NewMemDevice returns an in-memory write-once device for testing and
// experimentation. capacityBlocks <= 0 selects a large default.
func NewMemDevice(blockSize, capacityBlocks int) *wodev.MemDevice {
	return wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: capacityBlocks})
}

// MemAllocator returns an Allocator minting in-memory volumes of the given
// capacity, for tests and experiments that span many volumes.
func MemAllocator(capacityBlocks int) Allocator {
	return func(_ volume.SeqID, _ uint32, _ uint64, blockSize int) (wodev.Device, error) {
		return wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: capacityBlocks}), nil
	}
}
