package stream

import (
	"time"

	"clio/internal/obs"
)

// Metrics holds the streaming-read instruments. All fields are nil-safe;
// a nil *Metrics disables instrumentation entirely (the default).
type Metrics struct {
	subs          *obs.Gauge     // active subscriptions
	delivered     *obs.Counter   // entries delivered to subscriber buffers
	catchups      *obs.Counter   // live → catch-up transitions (slow consumers)
	buffered      *obs.Gauge     // delivered-but-undrained entries (delivery lag in entries)
	wakeToDeliver *obs.Histogram // tail wake → entry in the subscriber buffer
	lag           *obs.Histogram // entry timestamp → delivery (vclock/wall lag)
	groupMembers  *obs.Gauge     // live consumer-group members (all groups)
	groupAcks     *obs.Counter   // offset acknowledgements appended
}

// RegisterMetrics creates the stream instruments on the registry:
//
//	clio_stream_subscriptions          gauge     active tail subscriptions
//	clio_stream_entries_delivered_total counter  entries delivered
//	clio_stream_catchups_total         counter   slow-consumer catch-up transitions
//	clio_stream_buffered_entries       gauge     delivery lag in entries
//	clio_stream_wake_to_deliver_seconds histogram tail wake → delivery
//	clio_stream_delivery_lag_seconds   histogram  commit → delivery
//	clio_stream_group_members          gauge     live consumer-group members
//	clio_stream_group_acks_total       counter   group offset acks appended
func RegisterMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		subs:      reg.Gauge("clio_stream_subscriptions", "Active tail subscriptions."),
		delivered: reg.Counter("clio_stream_entries_delivered_total", "Entries delivered to subscriber buffers."),
		catchups:  reg.Counter("clio_stream_catchups_total", "Slow-consumer transitions into catch-up mode."),
		buffered:  reg.Gauge("clio_stream_buffered_entries", "Delivered-but-undrained entries (delivery lag in entries)."),
		wakeToDeliver: reg.Histogram("clio_stream_wake_to_deliver_seconds",
			"Latency from tail-publish wake to entry delivery.", obs.DefaultLatencyBuckets),
		lag: reg.Histogram("clio_stream_delivery_lag_seconds",
			"Latency from entry commit timestamp to delivery.", obs.DefaultLatencyBuckets),
		groupMembers: reg.Gauge("clio_stream_group_members", "Live consumer-group members."),
		groupAcks:    reg.Counter("clio_stream_group_acks_total", "Consumer-group offset acknowledgements appended."),
	}
}

// WakeToDeliverMean reports the mean wake-to-deliver latency observed so
// far, or 0 when nothing was recorded — used by the latency harness.
func (m *Metrics) WakeToDeliverMean() time.Duration {
	if m == nil || m.wakeToDeliver.Count() == 0 {
		return 0
	}
	return time.Duration(m.wakeToDeliver.Sum().Nanoseconds() / m.wakeToDeliver.Count())
}

// GroupMemberAdd adjusts the live-member gauge (called by stream/group).
func (m *Metrics) GroupMemberAdd(n int64) {
	if m != nil {
		m.groupMembers.Add(n)
	}
}

// GroupAckInc counts one appended offset acknowledgement.
func (m *Metrics) GroupAckInc() {
	if m != nil {
		m.groupAcks.Inc()
	}
}
