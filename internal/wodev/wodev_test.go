package wodev

import (
	"bytes"
	"errors"
	"os"
	"testing"
	"testing/quick"
)

func fill(n int, b byte) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = b
	}
	return out
}

func TestMemAppendRead(t *testing.T) {
	d := NewMem(MemOptions{BlockSize: 256, Capacity: 8})
	if d.BlockSize() != 256 || d.Capacity() != 8 {
		t.Fatalf("geometry: %d/%d", d.BlockSize(), d.Capacity())
	}
	for i := 0; i < 3; i++ {
		idx, err := d.AppendBlock(fill(256, byte(i+1)))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if idx != i {
			t.Fatalf("append %d returned index %d", i, idx)
		}
	}
	if d.Written() != 3 {
		t.Fatalf("Written = %d, want 3", d.Written())
	}
	buf := make([]byte, 256)
	for i := 0; i < 3; i++ {
		if err := d.ReadBlock(i, buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(buf, fill(256, byte(i+1))) {
			t.Fatalf("block %d contents wrong", i)
		}
	}
}

func TestMemUnwrittenRead(t *testing.T) {
	d := NewMem(MemOptions{BlockSize: 128, Capacity: 4})
	buf := make([]byte, 128)
	if err := d.ReadBlock(0, buf); !errors.Is(err, ErrUnwritten) {
		t.Errorf("unwritten read: %v", err)
	}
	if err := d.ReadBlock(9, buf); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out of range read: %v", err)
	}
	if err := d.ReadBlock(0, make([]byte, 10)); err == nil {
		t.Error("short buffer accepted")
	}
}

func TestMemWriteOnceEnforced(t *testing.T) {
	d := NewMem(MemOptions{BlockSize: 128, Capacity: 4})
	if _, err := d.AppendBlock(fill(128, 1)); err != nil {
		t.Fatal(err)
	}
	// WriteAt below the written portion must fail.
	if err := d.WriteAt(0, fill(128, 2)); !errors.Is(err, ErrRewrite) {
		t.Errorf("rewrite via WriteAt: %v", err)
	}
	// WriteAt beyond the end must fail (would leave a hole).
	if err := d.WriteAt(3, fill(128, 2)); !errors.Is(err, ErrRewrite) {
		t.Errorf("hole via WriteAt: %v", err)
	}
	// WriteAt exactly at the end succeeds.
	if err := d.WriteAt(1, fill(128, 2)); err != nil {
		t.Errorf("WriteAt end: %v", err)
	}
}

func TestMemBadBlockSize(t *testing.T) {
	d := NewMem(MemOptions{BlockSize: 128, Capacity: 4})
	if _, err := d.AppendBlock(fill(64, 1)); !errors.Is(err, ErrBadBlockSize) {
		t.Errorf("short append: %v", err)
	}
}

func TestMemFull(t *testing.T) {
	d := NewMem(MemOptions{BlockSize: 128, Capacity: 2})
	for i := 0; i < 2; i++ {
		if _, err := d.AppendBlock(fill(128, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.AppendBlock(fill(128, 1)); !errors.Is(err, ErrFull) {
		t.Errorf("append past capacity: %v", err)
	}
}

func TestMemInvalidate(t *testing.T) {
	d := NewMem(MemOptions{BlockSize: 128, Capacity: 4})
	if _, err := d.AppendBlock(fill(128, 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Invalidate(0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	err := d.ReadBlock(0, buf)
	if !errors.Is(err, ErrInvalidated) {
		t.Fatalf("read invalidated: %v", err)
	}
	if !bytes.Equal(buf, fill(128, 0xFF)) {
		t.Error("invalidated block not all ones")
	}
}

func TestMemInvalidateUnwrittenConsumed(t *testing.T) {
	d := NewMem(MemOptions{BlockSize: 128, Capacity: 4})
	if err := d.Invalidate(0); err != nil {
		t.Fatal(err)
	}
	idx, err := d.AppendBlock(fill(128, 7))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 {
		t.Errorf("append after invalidating block 0 landed at %d, want 1", idx)
	}
}

func TestMemDamageWritten(t *testing.T) {
	d := NewMem(MemOptions{BlockSize: 128, Capacity: 4})
	if _, err := d.AppendBlock(fill(128, 3)); err != nil {
		t.Fatal(err)
	}
	if err := d.Damage(0, fill(128, 0xAB)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 128)
	if err := d.ReadBlock(0, buf); err != nil {
		t.Fatalf("damaged block read should succeed with garbage: %v", err)
	}
	if !bytes.Equal(buf, fill(128, 0xAB)) {
		t.Error("damaged block did not read back garbage")
	}
}

func TestMemDamageUnwritten(t *testing.T) {
	d := NewMem(MemOptions{BlockSize: 128, Capacity: 4})
	if err := d.Damage(0, nil); err != nil {
		t.Fatal(err)
	}
	_, err := d.AppendBlock(fill(128, 1))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("append onto damaged unwritten block: %v", err)
	}
	// The service invalidates such a block and the next append skips it.
	if err := d.Invalidate(0); err != nil {
		t.Fatal(err)
	}
	idx, err := d.AppendBlock(fill(128, 1))
	if err != nil || idx != 1 {
		t.Fatalf("append after invalidation: idx=%d err=%v", idx, err)
	}
}

func TestMemStats(t *testing.T) {
	d := NewMem(MemOptions{BlockSize: 128, Capacity: 16})
	for i := 0; i < 4; i++ {
		if _, err := d.AppendBlock(fill(128, 1)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 128)
	// Sequential reads 0,1,2 then a jump to 0: 2 seeks (first read, jump).
	for _, i := range []int{0, 1, 2, 0} {
		if err := d.ReadBlock(i, buf); err != nil {
			t.Fatal(err)
		}
	}
	s := d.Stats()
	if s.Reads != 4 || s.Appends != 4 {
		t.Errorf("stats = %+v", s)
	}
	if s.Seeks != 2 {
		t.Errorf("seeks = %d, want 2", s.Seeks)
	}
	d.ResetStats()
	if s := d.Stats(); s.Reads != 0 {
		t.Errorf("reset stats = %+v", s)
	}
}

func TestMemClosed(t *testing.T) {
	d := NewMem(MemOptions{BlockSize: 128, Capacity: 4})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendBlock(fill(128, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: %v", err)
	}
	if err := d.ReadBlock(0, make([]byte, 128)); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close: %v", err)
	}
}

func TestFindEndReported(t *testing.T) {
	d := NewMem(MemOptions{BlockSize: 128, Capacity: 64})
	for i := 0; i < 10; i++ {
		if _, err := d.AppendBlock(fill(128, 1)); err != nil {
			t.Fatal(err)
		}
	}
	end, err := FindEnd(d)
	if err != nil || end != 10 {
		t.Fatalf("FindEnd = %d, %v; want 10", end, err)
	}
}

func TestFindEndBinarySearch(t *testing.T) {
	for _, written := range []int{0, 1, 5, 63, 64} {
		d := NewMem(MemOptions{BlockSize: 128, Capacity: 64, ReportEndUnknown: true})
		for i := 0; i < written; i++ {
			if _, err := d.AppendBlock(fill(128, 1)); err != nil {
				t.Fatal(err)
			}
		}
		if d.Written() != EndUnknown {
			t.Fatal("device reports end despite ReportEndUnknown")
		}
		end, err := FindEnd(d)
		if err != nil {
			t.Fatalf("written=%d: %v", written, err)
		}
		if end != written {
			t.Errorf("written=%d: FindEnd = %d", written, end)
		}
	}
}

func TestFindEndProbeCountLogarithmic(t *testing.T) {
	d := NewMem(MemOptions{BlockSize: 128, Capacity: 1 << 12, ReportEndUnknown: true})
	for i := 0; i < 1000; i++ {
		if _, err := d.AppendBlock(fill(128, 1)); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()
	if _, err := FindEnd(d); err != nil {
		t.Fatal(err)
	}
	if reads := d.Stats().Reads; reads > 14 { // log2(4096)=12 probes + first + slack
		t.Errorf("binary search used %d reads for 4096-block volume", reads)
	}
}

func TestFindEndProperty(t *testing.T) {
	f := func(w uint16) bool {
		written := int(w % 200)
		d := NewMem(MemOptions{BlockSize: 128, Capacity: 200, ReportEndUnknown: true})
		for i := 0; i < written; i++ {
			if _, err := d.AppendBlock(fill(128, 1)); err != nil {
				return false
			}
		}
		end, err := FindEnd(d)
		return err == nil && end == written
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFileDeviceRoundTrip(t *testing.T) {
	path := t.TempDir() + "/vol0"
	d, err := OpenFile(path, FileOptions{BlockSize: 256, Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := d.AppendBlock(fill(256, byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Invalidate(2); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: written portion persists; invalidated block stays invalid.
	d2, err := OpenFile(path, FileOptions{BlockSize: 256, Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Written() != 5 {
		t.Fatalf("reopened Written = %d, want 5", d2.Written())
	}
	buf := make([]byte, 256)
	if err := d2.ReadBlock(1, buf); err != nil || !bytes.Equal(buf, fill(256, 2)) {
		t.Fatalf("block 1 after reopen: %v", err)
	}
	if err := d2.ReadBlock(2, buf); !errors.Is(err, ErrInvalidated) {
		t.Fatalf("invalidated block after reopen: %v", err)
	}
	if err := d2.ReadBlock(5, buf); !errors.Is(err, ErrUnwritten) {
		t.Fatalf("unwritten after reopen: %v", err)
	}
	// Write-once still enforced across reopen.
	if err := d2.WriteAt(1, fill(256, 9)); !errors.Is(err, ErrRewrite) {
		t.Fatalf("rewrite after reopen: %v", err)
	}
}

func TestFileDeviceTornBlockTruncated(t *testing.T) {
	path := t.TempDir() + "/vol0"
	d, err := OpenFile(path, FileOptions{BlockSize: 256, Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendBlock(fill(256, 1)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write by appending a partial block to the file.
	if err := appendBytes(path, fill(100, 9)); err != nil {
		t.Fatal(err)
	}
	d2, err := OpenFile(path, FileOptions{BlockSize: 256, Capacity: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Written() != 1 {
		t.Errorf("Written after torn block = %d, want 1", d2.Written())
	}
}

func TestFileDeviceRejectsAllOnesPayload(t *testing.T) {
	d, err := OpenFile(t.TempDir()+"/v", FileOptions{BlockSize: 128, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.AppendBlock(fill(128, 0xFF)); err == nil {
		t.Error("all-ones payload accepted; reserved for invalidation marker")
	}
}

func TestFaultyGarbageEvery(t *testing.T) {
	mem := NewMem(MemOptions{BlockSize: 128, Capacity: 64})
	f := NewFaulty(mem, 42)
	f.SetGarbageEvery(3)
	for i := 0; i < 9; i++ {
		if _, err := f.AppendBlock(fill(128, byte(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	damaged := f.Damaged()
	if len(damaged) != 3 {
		t.Fatalf("damaged %v, want 3 blocks", damaged)
	}
	buf := make([]byte, 128)
	for _, idx := range damaged {
		if err := f.ReadBlock(idx, buf); err != nil {
			t.Fatalf("damaged read: %v", err)
		}
		if bytes.Equal(buf, fill(128, byte(idx+1))) {
			t.Errorf("block %d not actually damaged", idx)
		}
	}
}

func appendBytes(path string, b []byte) error {
	f, err := osOpenAppend(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(b)
	return err
}

func osOpenAppend(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}
