package clio_test

import (
	"fmt"
	"io"

	"clio"
)

// Example demonstrates the basic lifecycle: create a store on an in-memory
// write-once device, write entries, and read them back.
func Example() {
	svc, err := clio.New(clio.NewMemDevice(1024, 4096), clio.Options{})
	if err != nil {
		panic(err)
	}
	defer svc.Close()

	id, err := svc.CreateLog("/events", 0o644, "example")
	if err != nil {
		panic(err)
	}
	for _, line := range []string{"first", "second", "third"} {
		if _, err := svc.Append(id, []byte(line), clio.AppendOptions{}); err != nil {
			panic(err)
		}
	}

	cur, err := svc.OpenCursor("/events")
	if err != nil {
		panic(err)
	}
	for {
		e, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			panic(err)
		}
		fmt.Println(string(e.Data))
	}
	// Output:
	// first
	// second
	// third
}

// ExampleCursor_Prev reads a log backwards from the end — "access can be
// provided to the sequence of entries in the file either subsequent to, or
// prior to, any previous point in time".
func ExampleCursor_Prev() {
	svc, _ := clio.New(clio.NewMemDevice(1024, 4096), clio.Options{})
	defer svc.Close()
	id, _ := svc.CreateLog("/l", 0, "")
	for i := 1; i <= 3; i++ {
		svc.Append(id, []byte(fmt.Sprintf("entry %d", i)), clio.AppendOptions{})
	}
	cur, _ := svc.OpenCursor("/l")
	cur.SeekEnd()
	for {
		e, err := cur.Prev()
		if err == io.EOF {
			break
		}
		fmt.Println(string(e.Data))
	}
	// Output:
	// entry 3
	// entry 2
	// entry 1
}

// ExampleService_CreateLog shows the sublog hierarchy: a log file is also a
// directory of sublogs, and reading a parent includes its sublogs' entries.
func ExampleService_CreateLog() {
	svc, _ := clio.New(clio.NewMemDevice(1024, 4096), clio.Options{})
	defer svc.Close()
	svc.CreateLog("/mail", 0o755, "postmaster")
	smith, _ := svc.CreateLog("/mail/smith", 0o600, "smith")
	jones, _ := svc.CreateLog("/mail/jones", 0o600, "jones")
	svc.Append(smith, []byte("to smith"), clio.AppendOptions{})
	svc.Append(jones, []byte("to jones"), clio.AppendOptions{})

	names, _ := svc.List("/mail")
	fmt.Println(names)

	cur, _ := svc.OpenCursor("/mail") // parent: both sublogs' entries
	n := 0
	for {
		if _, err := cur.Next(); err == io.EOF {
			break
		}
		n++
	}
	fmt.Println(n, "entries")
	// Output:
	// [jones smith]
	// 2 entries
}

// ExampleCursor_SeekTime retrieves entries written at or after a moment.
func ExampleCursor_SeekTime() {
	var now int64
	svc, _ := clio.New(clio.NewMemDevice(1024, 4096), clio.Options{
		Now: func() int64 { now += 1000; return now },
	})
	defer svc.Close()
	id, _ := svc.CreateLog("/t", 0, "")
	svc.Append(id, []byte("early"), clio.AppendOptions{Timestamped: true})
	cut, _ := svc.Append(id, []byte("middle"), clio.AppendOptions{Timestamped: true})
	svc.Append(id, []byte("late"), clio.AppendOptions{Timestamped: true})

	cur, _ := svc.OpenCursor("/t")
	cur.SeekTime(cut)
	for {
		e, err := cur.Next()
		if err == io.EOF {
			break
		}
		fmt.Println(string(e.Data))
	}
	// Output:
	// middle
	// late
}

// ExampleService_AppendMulti writes one entry into several log files at
// once — §2.1's multi-membership ("the logging service allows a log entry
// to be a member of more than one log file").
func ExampleService_AppendMulti() {
	svc, _ := clio.New(clio.NewMemDevice(1024, 4096), clio.Options{})
	defer svc.Close()
	alerts, _ := svc.CreateLog("/alerts", 0, "")
	audit, _ := svc.CreateLog("/audit", 0, "")
	svc.AppendMulti([]uint16{alerts, audit}, []byte("disk failure on vol 3"), clio.AppendOptions{})

	for _, path := range []string{"/alerts", "/audit"} {
		cur, _ := svc.OpenCursor(path)
		e, _ := cur.Next()
		fmt.Printf("%s: %s\n", path, e.Data)
	}
	// Output:
	// /alerts: disk failure on vol 3
	// /audit: disk failure on vol 3
}
