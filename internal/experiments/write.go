package experiments

import (
	"io"

	"clio/internal/core"
	"clio/internal/vclock"
	"clio/internal/wodev"
	"clio/internal/workload"
)

// WriteRow is one line of the §3.2 log-writing experiment.
type WriteRow struct {
	Case       string
	PaperMs    float64 // the paper's measured value; 0 = not reported
	MeasuredMs float64 // virtual time under the calibrated cost model
}

// RunWrite reproduces §3.2: the time for a client to synchronously write a
// log entry (null and 50-byte), plus the component costs the paper calls
// out (timestamp generation ~400 µs, entrymap maintenance ~70 µs/entry).
// The paper's configuration: both ends on one machine, N=16, 1 KiB blocks,
// complete 14-byte timestamped header; the device write is asynchronous
// (absorbed by the NVRAM tail here).
func RunWrite(entries int) ([]WriteRow, error) {
	if entries <= 0 {
		entries = 2000
	}
	measure := func(size int, remote bool) (perOp, tsCost, emCost float64, err error) {
		clk := vclock.New(vclock.DefaultModel())
		dev := wodev.NewMem(wodev.MemOptions{BlockSize: 1024, Capacity: 1 << 16})
		svc, err := core.New(dev, core.Options{
			BlockSize: 1024, Degree: 16, CacheBlocks: -1,
			Clock: clk, NVRAM: core.NewMemNVRAM(), Now: testNow(),
			RemoteIPC: remote, CommitWindow: -1,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		defer svc.Close()
		id, err := svc.CreateLog("/w", 0, "")
		if err != nil {
			return 0, 0, 0, err
		}
		payload := make([]byte, size)
		clk.Reset()
		for i := 0; i < entries; i++ {
			if _, err := svc.Append(id, payload, core.AppendOptions{Timestamped: true, Forced: true}); err != nil {
				return 0, 0, 0, err
			}
		}
		total := ms(clk.Elapsed()) / float64(entries)
		tsDur, _ := clk.CategoryTotal(vclock.CatTimestamp)
		emDur, _ := clk.CategoryTotal(vclock.CatEntrymap)
		return total, ms(tsDur) / float64(entries), ms(emDur) / float64(entries), nil
	}
	null, tsCost, emCost, err := measure(0, false)
	if err != nil {
		return nil, err
	}
	fifty, _, _, err := measure(50, false)
	if err != nil {
		return nil, err
	}
	// The paper's footnote 9 gives 2.5–3 ms for cross-machine IPC; a remote
	// null write is therefore the local one plus the IPC difference.
	remoteNull, _, _, err := measure(0, true)
	if err != nil {
		return nil, err
	}
	return []WriteRow{
		{Case: "null entry (timestamped header only)", PaperMs: 2.0, MeasuredMs: null},
		{Case: "50-byte entry", PaperMs: 2.9, MeasuredMs: fifty},
		{Case: "null entry, cross-machine IPC", PaperMs: 4.05, MeasuredMs: remoteNull},
		{Case: "timestamp generation (per entry)", PaperMs: 0.4, MeasuredMs: tsCost},
		{Case: "entrymap maintenance (per entry)", PaperMs: 0.07, MeasuredMs: emCost},
	}, nil
}

// PrintWrite renders the §3.2 rows.
func PrintWrite(w io.Writer, rows []WriteRow) {
	fprintf(w, "§3.2 Log writing (synchronous, same machine, N=16, 1 KiB blocks)\n")
	fprintf(w, "%-42s %10s %12s\n", "case", "paper(ms)", "measured(ms)")
	for _, r := range rows {
		fprintf(w, "%-42s %10.2f %12.3f\n", r.Case, r.PaperMs, r.MeasuredMs)
	}
}

// NVRAMRow is one line of the forced-write internal-fragmentation ablation
// (§2.3.1: "on a (purely) write-once log device, frequent forced writes can
// lead to considerable internal fragmentation ... ideally the tail end of
// the log device is implemented as rewriteable non-volatile storage").
type NVRAMRow struct {
	Mode          string
	Entries       int
	BlocksUsed    int
	BytesPerEntry float64
	PaddingPct    float64 // fraction of written bytes that is padding
}

// RunNVRAM measures device consumption for a transaction-commit workload
// (50-byte records, every one forced) with and without the NVRAM tail, and
// with group commit every 10 records.
func RunNVRAM(entries int) ([]NVRAMRow, error) {
	if entries <= 0 {
		entries = 2000
	}
	run := func(mode string, nv core.NVRAM, forceEvery int) (NVRAMRow, error) {
		svc, dev, err := newService(1024, 16, 1<<16, nil, nv)
		if err != nil {
			return NVRAMRow{}, err
		}
		defer svc.Close()
		tr := workload.NewTxnTrace(1, 50)
		if _, err := svc.CreateLog("/txnlog", 0, ""); err != nil {
			return NVRAMRow{}, err
		}
		id, _ := svc.Resolve("/txnlog")
		for i := 0; i < entries; i++ {
			op := tr.Next()
			forced := forceEvery > 0 && (i+1)%forceEvery == 0
			if _, err := svc.Append(id, op.Data, core.AppendOptions{Timestamped: true, Forced: forced}); err != nil {
				return NVRAMRow{}, err
			}
		}
		st := svc.Stats()
		blocks := int(dev.Written()) - 1 // minus the volume header
		if svc.End() > blocks {
			blocks = svc.End() // count the staged tail too
		}
		written := float64(blocks * 1024)
		return NVRAMRow{
			Mode:          mode,
			Entries:       entries,
			BlocksUsed:    blocks,
			BytesPerEntry: written / float64(entries),
			PaddingPct:    100 * float64(st.PaddingBytes) / written,
		}, nil
	}
	var rows []NVRAMRow
	r, err := run("NVRAM tail, force every entry", core.NewMemNVRAM(), 1)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)
	r, err = run("no NVRAM, force every entry", nil, 1)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)
	r, err = run("no NVRAM, group commit of 10", nil, 10)
	if err != nil {
		return nil, err
	}
	rows = append(rows, r)
	return rows, nil
}

// PrintNVRAM renders the ablation.
func PrintNVRAM(w io.Writer, rows []NVRAMRow) {
	fprintf(w, "§2.3.1 ablation: forced 50-byte commits, device consumption\n")
	fprintf(w, "%-34s %8s %10s %14s %10s\n", "mode", "entries", "blocks", "bytes/entry", "padding%")
	for _, r := range rows {
		fprintf(w, "%-34s %8d %10d %14.1f %10.1f\n",
			r.Mode, r.Entries, r.BlocksUsed, r.BytesPerEntry, r.PaddingPct)
	}
}
