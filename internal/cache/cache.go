// Package cache implements the file server's main-memory block cache (the
// buffer pool the paper's log service shares with the conventional file
// server, §1 and §3.3).
//
// The cache maps (volume, block index) to immutable block images. Log-device
// blocks are written once and never change, so the cache never needs a dirty
// list or write-back: a block enters the cache either when it is read from
// the device or at the moment the writer seals it (write-through on append),
// and is evicted purely by LRU.
//
// The cache is sharded N ways by key hash so concurrent readers of disjoint
// blocks never contend on one lock. Recency is tracked with a single global
// access stamp (an atomic counter); eviction removes the entry whose stamp is
// globally smallest, so the replacement order is exactly the same as a
// single-list LRU — in particular, a single-threaded access sequence evicts
// byte-identically to the unsharded cache the experiments were calibrated
// against.
//
// The Table 1 experiments depend on the distinction between a cached block
// access (~0.6 ms to access and interpret) and a device read (~150 ms seek);
// Get charges the virtual clock accordingly.
package cache

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"clio/internal/vclock"
	"clio/internal/wodev"
)

// Key identifies a block: a volume tag plus a volume-relative block index.
type Key struct {
	// Volume is a small integer identifying the mounted volume.
	Volume int
	// Block is the volume-relative block index.
	Block int
}

// Stats reports cache effectiveness.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Inserts   int64
}

// HitRatio returns hits/(hits+misses), or 0 when no accesses occurred.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type entry struct {
	key   Key
	data  []byte
	stamp int64 // global access stamp at last touch
	elem  *list.Element
	// dec holds an optional decoded form of data, attached by the reader the
	// first time it interprets the block (see Attach). It rides the entry's
	// lifetime: replacing or removing the entry discards it.
	dec any
}

// numShards must be a power of two.
const numShards = 16

// shard is one lock domain of the cache. Its LRU list is ordered by access
// stamp (front = most recent), since every touch both assigns a fresh global
// stamp and moves the element to the front.
type shard struct {
	mu      sync.Mutex
	lru     *list.List
	entries map[Key]*entry
	stats   Stats
}

// Cache is a sharded LRU block cache. It is safe for concurrent use.
type Cache struct {
	capacity int // max blocks; <= 0 means unbounded
	shards   [numShards]shard
	size     atomic.Int64 // total cached blocks across shards
	stamp    atomic.Int64 // global access clock
	clock    atomic.Pointer[vclock.Clock]
}

// New returns a cache bounded to capacity blocks (<= 0 for unbounded). The
// clock may be nil; if set, every Get charges either a cached-block access
// or a device read.
func New(capacity int, clk *vclock.Clock) *Cache {
	c := &Cache{capacity: capacity}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].entries = make(map[Key]*entry)
	}
	if clk != nil {
		c.clock.Store(clk)
	}
	return c
}

// SetClock replaces the cache's virtual clock.
func (c *Cache) SetClock(clk *vclock.Clock) {
	c.clock.Store(clk)
}

func (c *Cache) clk() *vclock.Clock {
	return c.clock.Load() // nil-safe: vclock methods accept a nil receiver
}

func (c *Cache) shardOf(key Key) *shard {
	h := uint64(key.Block)*0x9E3779B97F4A7C15 ^ uint64(key.Volume)*0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	return &c.shards[h&(numShards-1)]
}

// Capacity returns the block capacity the cache was built with (<= 0 means
// unbounded).
func (c *Cache) Capacity() int {
	if c == nil {
		return 0
	}
	return c.capacity
}

// Len returns the number of cached blocks.
func (c *Cache) Len() int {
	return int(c.size.Load())
}

// Stats returns a snapshot of the counters, aggregated across shards.
func (c *Cache) Stats() Stats {
	var out Stats
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		out.Hits += sh.stats.Hits
		out.Misses += sh.stats.Misses
		out.Evictions += sh.stats.Evictions
		out.Inserts += sh.stats.Inserts
		sh.mu.Unlock()
	}
	return out
}

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.stats = Stats{}
		sh.mu.Unlock()
	}
}

// Lookup returns the cached image for key and promotes it, or nil on a
// miss. It counts a hit or miss but charges no virtual time; callers that
// model costs charge separately (see Get).
func (c *Cache) Lookup(key Key) []byte {
	return c.lookup(key)
}

// lookup returns the cached image for key and promotes it, or nil.
func (c *Cache) lookup(key Key) []byte {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		sh.stats.Misses++
		return nil
	}
	sh.stats.Hits++
	e.stamp = c.stamp.Add(1)
	sh.lru.MoveToFront(e.elem)
	return e.data
}

// LookupDecoded returns the cached image for key together with any decoded
// form previously attached to it (nil when none), promoting the entry and
// counting a hit or miss exactly like Lookup. It lets a warm reader skip
// re-parsing a block it has interpreted before.
func (c *Cache) LookupDecoded(key Key) ([]byte, any) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		sh.stats.Misses++
		return nil, nil
	}
	sh.stats.Hits++
	e.stamp = c.stamp.Add(1)
	sh.lru.MoveToFront(e.elem)
	return e.data, e.dec
}

// Attach records a decoded form for the block image img, previously returned
// by Lookup or LookupDecoded for key. The attach succeeds only if the entry
// still holds that exact slice — a concurrent Put (the staged tail being
// re-sealed) replaces the slice and must not inherit a decode of the older
// image. The identity check makes a stale attach a harmless no-op.
func (c *Cache) Attach(key Key, img []byte, dec any) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok || len(e.data) != len(img) || len(img) == 0 || &e.data[0] != &img[0] {
		return
	}
	e.dec = dec
}

// Peek reports whether key is cached without promoting it or charging time.
func (c *Cache) Peek(key Key) bool {
	sh := c.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.entries[key]
	return ok
}

// Put inserts an immutable block image (the cache keeps its own copy).
func (c *Cache) Put(key Key, data []byte) {
	cp := make([]byte, len(data))
	copy(cp, data)
	sh := c.shardOf(key)
	sh.mu.Lock()
	if e, ok := sh.entries[key]; ok {
		// Blocks are immutable; replacing is tolerated for the staged tail
		// block, which is re-put each time it is re-sealed. Any decoded form
		// describes the old image and is discarded with it.
		e.data = cp
		e.dec = nil
		e.stamp = c.stamp.Add(1)
		sh.lru.MoveToFront(e.elem)
		sh.mu.Unlock()
		return
	}
	e := &entry{key: key, data: cp, stamp: c.stamp.Add(1)}
	e.elem = sh.lru.PushFront(e)
	sh.entries[key] = e
	sh.stats.Inserts++
	sh.mu.Unlock()
	c.size.Add(1)
	if c.capacity > 0 {
		c.evictOver()
	}
}

// evictOver removes globally least-recently-used entries until the cache is
// back within capacity. Each round scans the shard tails (each shard's list
// is stamp-ordered, so its back element is its oldest) and evicts the entry
// with the smallest stamp — the exact global LRU victim.
func (c *Cache) evictOver() {
	for c.size.Load() > int64(c.capacity) {
		var victim *shard
		minStamp := int64(-1)
		for i := range c.shards {
			sh := &c.shards[i]
			sh.mu.Lock()
			if back := sh.lru.Back(); back != nil {
				st := back.Value.(*entry).stamp
				if minStamp < 0 || st < minStamp {
					minStamp = st
					victim = sh
				}
			}
			sh.mu.Unlock()
		}
		if victim == nil {
			return // emptied concurrently
		}
		victim.mu.Lock()
		back := victim.lru.Back()
		// The tail may have been promoted or removed between the scan and
		// this lock; evicting whatever is oldest in the chosen shard now is
		// still a valid LRU victim under concurrency, and single-threaded it
		// is exactly the entry the scan chose.
		if back == nil {
			victim.mu.Unlock()
			continue
		}
		old := back.Value.(*entry)
		victim.lru.Remove(back)
		delete(victim.entries, old.key)
		victim.stats.Evictions++
		victim.mu.Unlock()
		c.size.Add(-1)
	}
}

// Invalidate drops a cached block (used when a block is invalidated on the
// medium or a staged tail block is superseded).
func (c *Cache) Invalidate(key Key) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if ok {
		sh.lru.Remove(e.elem)
		delete(sh.entries, key)
	}
	sh.mu.Unlock()
	if ok {
		c.size.Add(-1)
	}
}

// DropVolume drops every cached block of the given volume (unmount).
func (c *Cache) DropVolume(volume int) {
	var dropped int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			if k.Volume == volume {
				sh.lru.Remove(e.elem)
				delete(sh.entries, k)
				dropped++
			}
		}
		sh.mu.Unlock()
	}
	c.size.Add(-dropped)
}

// Flush empties the cache entirely (used by experiments to force the
// no-caching worst case of §3.3.1).
func (c *Cache) Flush() {
	var dropped int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		dropped += int64(sh.lru.Len())
		sh.lru.Init()
		sh.entries = make(map[Key]*entry)
		sh.mu.Unlock()
	}
	c.size.Add(-dropped)
}

// Get returns the block image for key, reading through to dev on a miss.
// The returned slice is the cache's copy and must not be modified. Device
// errors (ErrUnwritten, ErrInvalidated, damage surfaced by the parser later)
// pass through unwrapped; error reads are not cached.
func (c *Cache) Get(key Key, dev wodev.Device) ([]byte, error) {
	if data := c.lookup(key); data != nil {
		c.clk().ChargeCachedBlock()
		return data, nil
	}
	if dev == nil {
		return nil, fmt.Errorf("cache: miss on %v with no device", key)
	}
	buf := make([]byte, dev.BlockSize())
	c.clk().ChargeDeviceRead(dev.BlockSize())
	if err := dev.ReadBlock(key.Block, buf); err != nil {
		return nil, err
	}
	c.Put(key, buf)
	// Interpreting the freshly read block costs a cached-block access too.
	c.clk().ChargeCachedBlock()
	return buf, nil
}
