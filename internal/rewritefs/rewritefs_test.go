package rewritefs

import (
	"bytes"
	"errors"
	"testing"
)

func newFS(t *testing.T) *FS {
	t.Helper()
	return New(NewStore(1024, 1<<20))
}

func TestCreateAppendRead(t *testing.T) {
	fs := newFS(t)
	if err := fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("f"); err == nil {
		t.Error("duplicate create accepted")
	}
	data := []byte("hello rewriteable world")
	if err := fs.Append("f", data); err != nil {
		t.Fatal(err)
	}
	if sz, _ := fs.Size("f"); sz != len(data) {
		t.Errorf("size = %d", sz)
	}
	got := make([]byte, len(data))
	if err := fs.ReadAt("f", 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("read back %q", got)
	}
	if err := fs.ReadAt("f", 10, make([]byte, 100)); !errors.Is(err, ErrRange) {
		t.Errorf("read past end: %v", err)
	}
	if err := fs.ReadAt("missing", 0, got); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing: %v", err)
	}
}

func TestLargeFileThroughIndirection(t *testing.T) {
	fs := newFS(t)
	if err := fs.Create("big"); err != nil {
		t.Fatal(err)
	}
	bs := fs.Store().BlockSize()
	// Past the direct blocks and the single indirect: into double indirect.
	blocks := NumDirect + bs/4 + 10
	chunk := make([]byte, bs)
	for i := 0; i < blocks; i++ {
		for j := range chunk {
			chunk[j] = byte(i)
		}
		if err := fs.Append("big", chunk); err != nil {
			t.Fatalf("append block %d: %v", i, err)
		}
	}
	// Spot-check each region.
	got := make([]byte, bs)
	for _, i := range []int{0, NumDirect, NumDirect + 5, NumDirect + bs/4, blocks - 1} {
		if err := fs.ReadAt("big", i*bs, got); err != nil {
			t.Fatalf("read block %d: %v", i, err)
		}
		if got[0] != byte(i) || got[bs-1] != byte(i) {
			t.Fatalf("block %d contents wrong: %d", i, got[0])
		}
	}
}

func TestTailAccessCostGrows(t *testing.T) {
	// §1: "blocks at the tail end of such files become increasingly
	// expensive to read and write."
	fs := newFS(t)
	if err := fs.Create("log"); err != nil {
		t.Fatal(err)
	}
	bs := fs.Store().BlockSize()
	chunk := make([]byte, bs)

	costOfNextAppend := func() int64 {
		fs.Store().ResetStats()
		if err := fs.Append("log", chunk); err != nil {
			t.Fatal(err)
		}
		s := fs.Store().Stats()
		return s.Reads + s.Writes
	}
	earlyCost := costOfNextAppend() // in the direct region
	// Grow well into the double-indirect region.
	for i := 0; i < NumDirect+bs/4+5; i++ {
		if err := fs.Append("log", chunk); err != nil {
			t.Fatal(err)
		}
	}
	lateCost := costOfNextAppend()
	if lateCost <= earlyCost {
		t.Errorf("tail append cost did not grow: early %d, late %d", earlyCost, lateCost)
	}

	// Cold tail read costs more I/Os deep in the file than at the front.
	buf := make([]byte, bs)
	fs.Store().ResetStats()
	if err := fs.ReadAt("log", 0, buf); err != nil {
		t.Fatal(err)
	}
	frontReads := fs.Store().Stats().Reads
	sz, _ := fs.Size("log")
	fs.Store().ResetStats()
	if err := fs.ReadAt("log", sz-bs, buf); err != nil {
		t.Fatal(err)
	}
	tailReads := fs.Store().Stats().Reads
	if tailReads <= frontReads {
		t.Errorf("tail read %d reads <= front read %d", tailReads, frontReads)
	}
}

func TestBackupReadsWholeFile(t *testing.T) {
	fs := newFS(t)
	if err := fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	bs := fs.Store().BlockSize()
	for i := 0; i < 20; i++ {
		if err := fs.Append("f", make([]byte, bs)); err != nil {
			t.Fatal(err)
		}
	}
	reads, err := fs.BackupReads("f")
	if err != nil {
		t.Fatal(err)
	}
	if reads < 20 {
		t.Errorf("backup reads = %d, want >= file blocks", reads)
	}
}

func TestScatteredAllocationSeeks(t *testing.T) {
	// Two files appended alternately end up interleaved: sequential reads of
	// one file seek on every block.
	fs := newFS(t)
	_ = fs.Create("a")
	_ = fs.Create("b")
	bs := fs.Store().BlockSize()
	for i := 0; i < 40; i++ {
		_ = fs.Append("a", make([]byte, bs))
		_ = fs.Append("b", make([]byte, bs))
	}
	buf := make([]byte, bs)
	fs.Store().ResetStats()
	for i := 8; i < 40; i++ { // past the direct region for realism
		if err := fs.ReadAt("a", i*bs, buf); err != nil {
			t.Fatal(err)
		}
	}
	s := fs.Store().Stats()
	if s.Seeks < 32 {
		t.Errorf("interleaved file read seeks = %d, want ~1 per block", s.Seeks)
	}
}

func TestMaxFileSize(t *testing.T) {
	fs := newFS(t)
	bs := fs.Store().BlockSize()
	want := (NumDirect + bs/4 + (bs/4)*(bs/4)) * bs
	if fs.MaxFileSize() != want {
		t.Errorf("MaxFileSize = %d", fs.MaxFileSize())
	}
}

func TestRewriteInPlace(t *testing.T) {
	fs := newFS(t)
	if err := fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Append("f", []byte("original content here")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rewrite("f", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if sz, _ := fs.Size("f"); sz != 3 {
		t.Errorf("size after rewrite = %d", sz)
	}
	got := make([]byte, 3)
	if err := fs.ReadAt("f", 0, got); err != nil || string(got) != "new" {
		t.Fatalf("read after rewrite: %q, %v", got, err)
	}
	// Growing rewrite allocates.
	big := bytes.Repeat([]byte{7}, 5000)
	if err := fs.Rewrite("f", big); err != nil {
		t.Fatal(err)
	}
	back := make([]byte, 5000)
	if err := fs.ReadAt("f", 0, back); err != nil || !bytes.Equal(back, big) {
		t.Fatalf("grown rewrite: %v", err)
	}
	if err := fs.Rewrite("missing", nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("rewrite missing: %v", err)
	}
}
