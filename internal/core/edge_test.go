package core

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"clio/internal/volume"
	"clio/internal/wodev"
)

func TestDisplacedEntrymapEntryStillLocates(t *testing.T) {
	// Damage the unwritten device block where the next entrymap boundary
	// would land. The writer invalidates it and slides forward, so the
	// boundary's entrymap entry is displaced (§2.3.2); locates must still
	// work and still use the entrymap (not raw scans everywhere).
	tc := &testClock{}
	opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, CacheBlocks: -1}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	s, err := New(dev, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	a := mustCreate(t, s, "/a")
	b := mustCreate(t, s, "/b")

	// Fill up to just before a level-1 boundary (data block 8 = device 9),
	// then damage the boundary block while unwritten.
	fillers := 0
	for s.End() < 7 {
		mustAppend(t, s, a, "filler-filler-filler", AppendOptions{Forced: true})
		fillers++
	}
	if err := dev.Damage(9, nil); err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 120; i++ {
		p := fmt.Sprintf("b-%03d", i)
		mustAppend(t, s, b, p, AppendOptions{Forced: true})
		want = append(want, p)
	}
	if s.Stats().DeadBlocks != 1 {
		t.Fatalf("DeadBlocks = %d", s.Stats().DeadBlocks)
	}
	if got := datas(readAll(t, s, "/b")); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("entries across displaced boundary: %d vs %d", len(datas(readAll(t, s, "/b"))), len(want))
	}
	// Backwards iteration exercises FindPrev over the displaced entry.
	cur, _ := s.OpenCursor("/a")
	cur.SeekEnd()
	n := 0
	for {
		if _, err := cur.Prev(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != fillers {
		t.Errorf("backwards over /a: %d entries, want %d", n, fillers)
	}
}

func TestFragmentChainAcrossVolumes(t *testing.T) {
	// An entry large enough to straddle a volume boundary must reassemble.
	alloc := func(_ volume.SeqID, _ uint32, _ uint64, blockSize int) (wodev.Device, error) {
		return wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: 8}), nil
	}
	tc := &testClock{}
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 8})
	s, err := New(dev, Options{BlockSize: 256, Degree: 4, Now: tc.Now, Allocate: alloc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id := mustCreate(t, s, "/big")
	big := make([]byte, 3000) // ~13 fragments over 7-data-block volumes
	for i := range big {
		big[i] = byte(i * 7)
	}
	mustAppend(t, s, id, string(big), AppendOptions{Timestamped: true})
	mustAppend(t, s, id, "tail-entry", AppendOptions{})
	if len(s.Volumes()) < 2 {
		t.Fatalf("entry did not span volumes (%d)", len(s.Volumes()))
	}
	got := readAll(t, s, "/big")
	if len(got) != 2 || !bytes.Equal(got[0].Data, big) || string(got[1].Data) != "tail-entry" {
		t.Fatalf("cross-volume reassembly failed: %d entries", len(got))
	}
	// And backwards.
	cur, _ := s.OpenCursor("/big")
	cur.SeekEnd()
	if e, err := cur.Prev(); err != nil || string(e.Data) != "tail-entry" {
		t.Fatal(err)
	}
	if e, err := cur.Prev(); err != nil || !bytes.Equal(e.Data, big) {
		t.Fatalf("Prev over chain: %v", err)
	}
}

func TestRandomizedWorkloadMatchesModel(t *testing.T) {
	// Property: for random interleavings of appends across log files with
	// random sizes and forced flags, every log reads back exactly its own
	// writes, in order, forwards and backwards.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tc := &testClock{}
		dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 13})
		s, err := New(dev, Options{BlockSize: 256, Degree: 4, Now: tc.Now})
		if err != nil {
			return false
		}
		defer s.Close()
		const logs = 3
		ids := make([]uint16, logs)
		model := make([][]string, logs)
		for i := range ids {
			id, err := s.CreateLog(fmt.Sprintf("/l%d", i), 0, "")
			if err != nil {
				return false
			}
			ids[i] = id
		}
		for op := 0; op < 250; op++ {
			w := rng.Intn(logs)
			size := rng.Intn(400)
			payload := fmt.Sprintf("%d-%d-", w, op)
			for len(payload) < size {
				payload += "x"
			}
			opts := AppendOptions{
				Timestamped: rng.Intn(2) == 0,
				Forced:      rng.Intn(5) == 0,
			}
			if _, err := s.Append(ids[w], []byte(payload), opts); err != nil {
				return false
			}
			model[w] = append(model[w], payload)
		}
		for i := range ids {
			got := datas(readAll(t, s, fmt.Sprintf("/l%d", i)))
			if fmt.Sprint(got) != fmt.Sprint(model[i]) {
				return false
			}
			// Backwards.
			cur, err := s.OpenCursorID(ids[i])
			if err != nil {
				return false
			}
			cur.SeekEnd()
			for j := len(model[i]) - 1; j >= 0; j-- {
				e, err := cur.Prev()
				if err != nil || string(e.Data) != model[i][j] {
					return false
				}
			}
			if _, err := cur.Prev(); err != io.EOF {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestRandomizedCrashRecoveryProperty(t *testing.T) {
	// Property: after a crash at a random point, the recovered service
	// holds exactly the forced prefix per log (prefix durability), and
	// continues accepting writes.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := NewMemNVRAM()
		tc := &testClock{}
		opt := Options{BlockSize: 256, Degree: 4, Now: tc.Now, NVRAM: nv}
		dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 13})
		s, err := New(dev, opt)
		if err != nil {
			return false
		}
		id, err := s.CreateLog("/p", 0, "")
		if err != nil {
			return false
		}
		var durable []string
		var pendingSince int // index of first entry not yet forced
		total := 50 + rng.Intn(150)
		var all []string
		for i := 0; i < total; i++ {
			p := fmt.Sprintf("e%04d", i)
			forced := rng.Intn(4) == 0
			if _, err := s.Append(id, []byte(p), AppendOptions{Forced: forced}); err != nil {
				return false
			}
			all = append(all, p)
			if forced {
				durable = all[:len(all):len(all)]
				pendingSince = len(all)
			}
		}
		_ = pendingSince
		s.Crash()
		s2, err := Open([]wodev.Device{dev}, opt)
		if err != nil {
			return false
		}
		defer s2.Close()
		got := datas(readAll(t, s2, "/p"))
		// The recovered log must be a prefix of all writes, at least as
		// long as the durable prefix (seals may have persisted more).
		if len(got) < len(durable) || len(got) > len(all) {
			return false
		}
		for i, g := range got {
			if g != all[i] {
				return false
			}
		}
		// Still writable.
		if _, err := s2.Append(id, []byte("post"), AppendOptions{Forced: true}); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestRetiredLogStillReadable(t *testing.T) {
	s, _ := newTestService(t, Options{})
	defer s.Close()
	id := mustCreate(t, s, "/r")
	mustAppend(t, s, id, "kept", AppendOptions{})
	if err := s.Retire("/r"); err != nil {
		t.Fatal(err)
	}
	if got := datas(readAll(t, s, "/r")); fmt.Sprint(got) != "[kept]" {
		t.Errorf("retired log: %v", got)
	}
}

func TestVolumeSequenceLogSeesEverything(t *testing.T) {
	// Invariant 5: "/" contains every entry, including system entries.
	s, _ := newTestService(t, Options{BlockSize: 256, Degree: 4})
	defer s.Close()
	id := mustCreate(t, s, "/x")
	for i := 0; i < 40; i++ {
		mustAppend(t, s, id, fmt.Sprintf("e%d", i), AppendOptions{})
	}
	all := readAll(t, s, "/")
	var client, system int
	for _, e := range all {
		if e.LogID == id {
			client++
		}
		if e.LogID < 4 {
			system++
		}
	}
	if client != 40 {
		t.Errorf("client entries in '/': %d", client)
	}
	if system == 0 {
		t.Error("no system entries visible in the volume sequence log")
	}
}
