package wodev

import (
	"math/rand"
	"sync"
	"time"
)

// Flaky wraps a Device with a *transient*-fault model: individual reads and
// appends fail with ErrTransient (or stall for a latency spike) according to
// a seeded schedule, but the underlying media is untouched — a retry of the
// same operation can succeed. This is the soft-failure complement to Faulty,
// which models permanent media damage.
//
// Injection happens *before* delegating, so a failed operation truly did not
// execute: retrying an append cannot double-write, which is what makes the
// core retry loop safe to layer on top.
type Flaky struct {
	Device
	mu sync.Mutex

	rng    *rand.Rand
	paused bool

	// Probabilities in [0,1] of a transient error per operation.
	readErrProb   float64
	appendErrProb float64

	// Latency-spike schedule: with spikeProb, an operation sleeps spikeDur
	// (through the Sleep hook) before proceeding.
	spikeProb float64
	spikeDur  time.Duration

	// maxConsecutive bounds runs of injected failures so a bounded retry
	// policy is guaranteed to eventually get through (0 = unbounded).
	maxConsecutive int
	consecutive    int

	// Sleep is called for latency spikes; nil means time.Sleep.
	Sleep func(time.Duration)

	stats FlakyStats
}

// FlakyStats counts what the wrapper injected.
type FlakyStats struct {
	ReadFaults   int64
	AppendFaults int64
	Spikes       int64
}

// NewFlaky wraps dev with a seeded transient-fault schedule. All
// probabilities start at zero; arm with FailReads/FailAppends/Spike.
func NewFlaky(dev Device, seed int64) *Flaky {
	return &Flaky{Device: dev, rng: rand.New(rand.NewSource(seed))}
}

// FailReads sets the per-read transient-error probability.
func (f *Flaky) FailReads(prob float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.readErrProb = prob
}

// FailAppends sets the per-append/write transient-error probability.
func (f *Flaky) FailAppends(prob float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.appendErrProb = prob
}

// Spike makes a fraction of operations stall for d before executing.
func (f *Flaky) Spike(prob float64, d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.spikeProb = prob
	f.spikeDur = d
}

// MaxConsecutive bounds runs of injected failures: after n consecutive
// injections the next operation is let through, so a retry policy with more
// than n attempts always converges. 0 removes the bound.
func (f *Flaky) MaxConsecutive(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.maxConsecutive = n
}

// Pause suspends all injection (recovery code paths — FindEnd probing,
// catalog replay — read the device without retry, so chaos tests pause the
// schedule around Open).
func (f *Flaky) Pause() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.paused = true
}

// Resume re-enables injection.
func (f *Flaky) Resume() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.paused = false
}

// Stats returns injection counters.
func (f *Flaky) FaultStats() FlakyStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// inject decides, under the lock, whether this operation fails or stalls.
// It returns (fail, spike duration).
func (f *Flaky) inject(prob float64, counter *int64) (bool, time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.paused {
		return false, 0
	}
	var spike time.Duration
	if f.spikeProb > 0 && f.rng.Float64() < f.spikeProb {
		spike = f.spikeDur
		f.stats.Spikes++
	}
	if prob > 0 && f.rng.Float64() < prob {
		if f.maxConsecutive > 0 && f.consecutive >= f.maxConsecutive {
			f.consecutive = 0
			return false, spike
		}
		f.consecutive++
		*counter++
		return true, spike
	}
	f.consecutive = 0
	return false, spike
}

func (f *Flaky) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if f.Sleep != nil {
		f.Sleep(d)
		return
	}
	time.Sleep(d)
}

// ReadBlock implements Device with pre-delegation fault injection.
func (f *Flaky) ReadBlock(idx int, dst []byte) error {
	fail, spike := f.inject(f.readErrProb, &f.stats.ReadFaults)
	f.sleep(spike)
	if fail {
		return ErrTransient
	}
	return f.Device.ReadBlock(idx, dst)
}

// ReadValidated delegates validated reads (Mirror) with injection.
func (f *Flaky) ReadValidated(idx int, dst []byte, valid func([]byte) bool) error {
	fail, spike := f.inject(f.readErrProb, &f.stats.ReadFaults)
	f.sleep(spike)
	if fail {
		return ErrTransient
	}
	if m, ok := f.Device.(interface {
		ReadValidated(int, []byte, func([]byte) bool) error
	}); ok {
		return m.ReadValidated(idx, dst, valid)
	}
	if err := f.Device.ReadBlock(idx, dst); err != nil {
		return err
	}
	if !valid(dst) {
		return ErrCorrupt
	}
	return nil
}

// AppendBlock implements Device with pre-delegation fault injection.
func (f *Flaky) AppendBlock(data []byte) (int, error) {
	fail, spike := f.inject(f.appendErrProb, &f.stats.AppendFaults)
	f.sleep(spike)
	if fail {
		return -1, ErrTransient
	}
	return f.Device.AppendBlock(data)
}

// WriteAt implements Device with pre-delegation fault injection.
func (f *Flaky) WriteAt(idx int, data []byte) error {
	fail, spike := f.inject(f.appendErrProb, &f.stats.AppendFaults)
	f.sleep(spike)
	if fail {
		return ErrTransient
	}
	return f.Device.WriteAt(idx, data)
}
