package blockfmt

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuildParseRoundTrip(t *testing.T) {
	b, err := NewBuilder(1024, 42)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{LogID: 4, Form: FormFull, AttrFlags: AttrForced, Timestamp: 1000, Data: []byte("first entry")},
		{LogID: 5, Form: FormMinimal, Data: []byte("second")},
		{LogID: 4, Form: FormMinimal, Data: nil}, // null entry
		{LogID: 6, Form: FormFull, Timestamp: 2000, Data: bytes.Repeat([]byte{7}, 100), Continues: true},
	}
	for i, r := range recs {
		if err := b.Append(r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	img := b.Seal()
	if len(img) != 1024 {
		t.Fatalf("sealed image %d bytes", len(img))
	}
	p, err := Parse(img)
	if err != nil {
		t.Fatal(err)
	}
	if p.BlockIndex != 42 {
		t.Errorf("BlockIndex = %d", p.BlockIndex)
	}
	if p.FirstTimestamp != 1000 {
		t.Errorf("FirstTimestamp = %d", p.FirstTimestamp)
	}
	if len(p.Records) != len(recs) {
		t.Fatalf("parsed %d records, want %d", len(p.Records), len(recs))
	}
	for i, want := range recs {
		got := p.Records[i]
		if got.LogID != want.LogID || got.Form != want.Form ||
			got.Continued != want.Continued || got.Continues != want.Continues {
			t.Errorf("record %d meta: %+v", i, got)
		}
		if want.Form == FormFull && (got.Timestamp != want.Timestamp || got.AttrFlags != want.AttrFlags) {
			t.Errorf("record %d full header: %+v", i, got)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Errorf("record %d data mismatch", i)
		}
	}
}

func TestHeaderSizesMatchPaper(t *testing.T) {
	// §2.2: minimal header is 4 bytes (2 in payload + 2-byte size slot);
	// §3.2: the complete timestamped header is 14 bytes.
	min := Record{LogID: 1, Form: FormMinimal}
	if got := min.Overhead(); got != 4 {
		t.Errorf("minimal header overhead = %d, want 4", got)
	}
	full := Record{LogID: 1, Form: FormFull, Timestamp: 1}
	if got := full.Overhead(); got != 14 {
		t.Errorf("full header overhead = %d, want 14", got)
	}
}

func TestBuilderCapacityAccounting(t *testing.T) {
	b, _ := NewBuilder(256, 0)
	free := b.Free()
	if free != 256-FooterSize-2 {
		t.Errorf("initial Free = %d", free)
	}
	if b.FreeData(FormMinimal) != free-2 {
		t.Errorf("FreeData minimal = %d", b.FreeData(FormMinimal))
	}
	if b.FreeData(FormFull) != free-12 {
		t.Errorf("FreeData full = %d", b.FreeData(FormFull))
	}
	// Fill exactly.
	data := make([]byte, b.FreeData(FormMinimal))
	if err := b.Append(Record{LogID: 1, Form: FormMinimal, Data: data}); err != nil {
		t.Fatalf("exact fill: %v", err)
	}
	if b.Free() != 0 {
		t.Errorf("Free after exact fill = %d", b.Free())
	}
	if err := b.Append(Record{LogID: 1, Form: FormMinimal}); !errors.Is(err, ErrNoSpace) {
		t.Errorf("append to full block: %v", err)
	}
	p, err := Parse(b.Seal())
	if err != nil || len(p.Records) != 1 || len(p.Records[0].Data) != len(data) {
		t.Fatalf("parse exact-fill block: %v", err)
	}
}

func TestMaxData(t *testing.T) {
	if MaxData(1024, FormMinimal) != 1024-FooterSize-4 {
		t.Errorf("MaxData minimal = %d", MaxData(1024, FormMinimal))
	}
	b, _ := NewBuilder(1024, 0)
	if b.FreeData(FormMinimal) != MaxData(1024, FormMinimal) {
		t.Error("MaxData disagrees with empty builder FreeData")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	garbage := make([]byte, 1024)
	rand.New(rand.NewSource(1)).Read(garbage)
	if _, err := Parse(garbage); err == nil {
		t.Error("garbage block parsed")
	}
	if _, err := Parse(make([]byte, 64)); err == nil {
		t.Error("undersized block parsed")
	}
	// All-ones (invalidated) block must not parse.
	ones := bytes.Repeat([]byte{0xFF}, 1024)
	if _, err := Parse(ones); !errors.Is(err, ErrBadMagic) {
		t.Errorf("invalidated block: %v", err)
	}
}

func TestParseDetectsBitFlips(t *testing.T) {
	b, _ := NewBuilder(512, 3)
	if err := b.Append(Record{LogID: 9, Form: FormFull, Timestamp: 5, Data: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	img := b.Seal()
	for _, off := range []int{0, 5, 100, 511 - FooterSize, 500} {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0x10
		if _, err := Parse(bad); err == nil {
			t.Errorf("bit flip at %d undetected", off)
		}
	}
}

func TestSealIdempotentForStagedTail(t *testing.T) {
	// The NVRAM tail re-seals the same builder as entries arrive; sealing
	// must not consume or corrupt builder state.
	b, _ := NewBuilder(512, 7)
	if err := b.Append(Record{LogID: 4, Form: FormMinimal, Data: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	img1 := b.Seal()
	if err := b.Append(Record{LogID: 4, Form: FormMinimal, Data: []byte("b")}); err != nil {
		t.Fatal(err)
	}
	img2 := b.Seal()
	p1, err := Parse(img1)
	if err != nil || len(p1.Records) != 1 {
		t.Fatalf("img1: %v", err)
	}
	p2, err := Parse(img2)
	if err != nil || len(p2.Records) != 2 {
		t.Fatalf("img2: %v", err)
	}
	if !bytes.Equal(p2.Records[1].Data, []byte("b")) {
		t.Error("second record corrupted by reseal")
	}
}

func TestBuilderReset(t *testing.T) {
	b, _ := NewBuilder(512, 1)
	b.SetFlags(FlagEntrymapBoundary)
	if err := b.Append(Record{LogID: 4, Form: FormMinimal, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	b.Reset(2)
	if b.Count() != 0 || b.Used() != 0 || b.Flags() != 0 {
		t.Error("Reset left state")
	}
	if _, ok := b.FirstTimestamp(); ok {
		t.Error("Reset left timestamp")
	}
	if err := b.Append(Record{LogID: 5, Form: FormMinimal, Data: []byte("y")}); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(b.Seal())
	if err != nil || p.BlockIndex != 2 || len(p.Records) != 1 {
		t.Fatalf("post-reset block: %+v, %v", p, err)
	}
}

func TestFooterTimestampFromMinimalEntries(t *testing.T) {
	b, _ := NewBuilder(512, 0)
	b.SetFirstTimestamp(777)
	if err := b.Append(Record{LogID: 4, Form: FormMinimal, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(b.Seal())
	if err != nil || p.FirstTimestamp != 777 {
		t.Fatalf("footer ts = %d, %v", p.FirstTimestamp, err)
	}
}

func TestFlagsRoundTrip(t *testing.T) {
	b, _ := NewBuilder(256, 0)
	b.SetFlags(FlagEntrymapBoundary | FlagSealedByForce)
	b.SetFirstTimestamp(1)
	p, err := Parse(b.Seal())
	if err != nil {
		t.Fatal(err)
	}
	if p.Flags != FlagEntrymapBoundary|FlagSealedByForce {
		t.Errorf("flags = %x", p.Flags)
	}
}

func TestBlockSizeBounds(t *testing.T) {
	if _, err := NewBuilder(64, 0); err == nil {
		t.Error("64-byte block accepted")
	}
	if _, err := NewBuilder(32768, 0); err == nil {
		t.Error("32K block accepted")
	}
	if _, err := NewBuilder(MinBlockSize, 0); err != nil {
		t.Errorf("min block size rejected: %v", err)
	}
	if _, err := NewBuilder(MaxBlockSize, 0); err != nil {
		t.Errorf("max block size rejected: %v", err)
	}
}

func TestEmptyBlock(t *testing.T) {
	b, _ := NewBuilder(256, 9)
	p, err := Parse(b.Seal())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Records) != 0 || p.BlockIndex != 9 {
		t.Errorf("empty block: %+v", p)
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := []int{128, 512, 1024, 4096}[rng.Intn(4)]
		b, err := NewBuilder(size, uint32(rng.Intn(1000)))
		if err != nil {
			return false
		}
		type expect struct {
			rec Record
		}
		var want []expect
		for {
			form := uint8(FormMinimal)
			if rng.Intn(2) == 0 {
				form = FormFull
			}
			avail := b.FreeData(form)
			if avail <= 0 {
				break
			}
			n := rng.Intn(avail + 1)
			data := make([]byte, n)
			rng.Read(data)
			rec := Record{
				LogID:     uint16(rng.Intn(4096)),
				Form:      form,
				AttrFlags: uint8(rng.Intn(4)),
				Timestamp: rng.Int63(),
				Continued: rng.Intn(4) == 0,
				Continues: rng.Intn(4) == 0,
				Data:      data,
			}
			if err := b.Append(rec); err != nil {
				return false
			}
			want = append(want, expect{rec})
			if rng.Intn(5) == 0 {
				break
			}
		}
		p, err := Parse(b.Seal())
		if err != nil || len(p.Records) != len(want) {
			return false
		}
		for i, w := range want {
			g := p.Records[i]
			if g.LogID != w.rec.LogID || g.Form != w.rec.Form ||
				g.Continued != w.rec.Continued || g.Continues != w.rec.Continues ||
				!bytes.Equal(g.Data, w.rec.Data) {
				return false
			}
			if w.rec.Form == FormFull && g.Timestamp != w.rec.Timestamp {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSpaceOverheadFigure(t *testing.T) {
	// §2.2: with the minimal header, overhead for a d-byte entry is
	// 400/(d+4) percent — under 10% for entries above 36 bytes.
	d := 36
	rec := Record{LogID: 1, Form: FormMinimal, Data: make([]byte, d)}
	overheadPct := float64(rec.Overhead()-d) / float64(d+4) * 100
	if overheadPct > 10.0 {
		t.Errorf("overhead for 36-byte entry = %.1f%%, paper says <10%%", overheadPct)
	}
}

func TestFormMultiRoundTrip(t *testing.T) {
	b, _ := NewBuilder(512, 5)
	rec := Record{
		LogID:     7,
		Form:      FormMulti,
		AttrFlags: AttrForced,
		Timestamp: 12345,
		Data:      []byte("shared entry"),
		ExtraIDs:  []uint16{9, 4000, 42},
	}
	if got, want := rec.Overhead(), 12+6+12+2; got != want {
		t.Errorf("multi overhead = %d, want %d", got, want)
	}
	if err := b.Append(rec); err != nil {
		t.Fatal(err)
	}
	// A minimal record after it parses fine too.
	if err := b.Append(Record{LogID: 8, Form: FormMinimal, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	p, err := Parse(b.Seal())
	if err != nil {
		t.Fatal(err)
	}
	got := p.Records[0]
	if got.Form != FormMulti || got.Timestamp != 12345 || got.AttrFlags != AttrForced {
		t.Errorf("multi header: %+v", got)
	}
	if len(got.ExtraIDs) != 3 || got.ExtraIDs[0] != 9 || got.ExtraIDs[1] != 4000 || got.ExtraIDs[2] != 42 {
		t.Errorf("extra ids: %v", got.ExtraIDs)
	}
	if string(got.Data) != "shared entry" {
		t.Errorf("data: %q", got.Data)
	}
	if p.Records[1].LogID != 8 {
		t.Errorf("following record: %+v", p.Records[1])
	}
	if p.FirstTimestamp != 12345 {
		t.Errorf("footer ts: %d", p.FirstTimestamp)
	}
}

func TestFormMultiLimits(t *testing.T) {
	b, _ := NewBuilder(512, 0)
	too := make([]uint16, MaxExtraIDs+1)
	if err := b.Append(Record{LogID: 1, Form: FormMulti, ExtraIDs: too}); err == nil {
		t.Error("oversized extra-id list accepted")
	}
	bad := Record{LogID: 1, Form: FormMulti, ExtraIDs: []uint16{0xFFFF}}
	if err := b.Append(bad); err == nil {
		t.Error("13-bit extra id accepted")
	}
}

func TestReindex(t *testing.T) {
	b, err := NewBuilder(512, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Append(Record{LogID: 3, Form: FormFull, Timestamp: 99, Data: []byte("payload")}); err != nil {
		t.Fatal(err)
	}
	img := b.Seal()
	orig := append([]byte(nil), img...)

	moved, err := Reindex(img, 19, FlagVolumeSealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img, orig) {
		t.Fatal("Reindex mutated its input image")
	}
	if !Validate(moved) {
		t.Fatal("reindexed image fails Validate")
	}
	p, err := Parse(moved)
	if err != nil {
		t.Fatal(err)
	}
	if p.BlockIndex != 19 {
		t.Fatalf("BlockIndex = %d, want 19", p.BlockIndex)
	}
	if p.Flags&FlagVolumeSealed == 0 {
		t.Fatal("FlagVolumeSealed not or'ed in")
	}
	if len(p.Records) != 1 || string(p.Records[0].Data) != "payload" {
		t.Fatalf("records corrupted by Reindex: %+v", p.Records)
	}

	// No-op reindex keeps the image byte-identical.
	same, err := Reindex(img, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(same, orig) {
		t.Fatal("no-op Reindex changed the image")
	}

	// A damaged image is refused.
	bad := append([]byte(nil), img...)
	bad[0] ^= 1
	if _, err := Reindex(bad, 3, 0); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("Reindex(damaged) = %v, want ErrBadChecksum", err)
	}
}
