package core

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"clio/internal/blockfmt"
	"clio/internal/cache"
	"clio/internal/catalog"
	"clio/internal/entrymap"
	"clio/internal/wire"
	"clio/internal/wodev"
)

// RecoveryReport describes the work server initialization performed, for
// the Figure 4 experiments (§2.3.1 / §3.4).
type RecoveryReport struct {
	// SealedBlocks is the located end of the written portion.
	SealedBlocks int
	// EndProbes counts device reads used to find the end (binary search).
	EndProbes int64
	// EntrymapBlocksScanned counts raw blocks examined to reconstruct
	// missing entrymap information.
	EntrymapBlocksScanned int
	// EntrymapEntriesRead counts entrymap entries read back.
	EntrymapEntriesRead int
	// CatalogEntries counts replayed catalog records.
	CatalogEntries int
	// TailRestored reports whether an NVRAM-staged tail block was restored.
	TailRestored bool
	// BadBlocks lists the known corrupted block indices from the bad-block
	// log file.
	BadBlocks []int
	// StagedSeals counts sealed block images replayed from the staging
	// NVRAM — blocks that were acked durable but whose pipelined device
	// write the crash cut off (see pipeline.go).
	StagedSeals int
	// CheckpointUsed reports whether recovery restored from an in-log
	// checkpoint instead of reconstructing from scratch.
	CheckpointUsed bool
	// BlocksReplayed counts the sealed blocks replayed after the
	// checkpoint; zero when CheckpointUsed is false.
	BlocksReplayed int
	// VolumesRelocated counts volumes the compactor has copied forward
	// (the compaction sidecar's committed volumes), VolumesDemoted those
	// already archived to the cold tier and released locally.
	VolumesRelocated int
	VolumesDemoted   int
}

// LastRecovery returns the report from the service's Open.
func (s *Service) LastRecovery() RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// recover performs server initialization (§2.3.1):
//
//  1. locate the most recently written block (binary search if the device
//     cannot be queried directly);
//  2. examine recently-written blocks to reconstruct entrymap information
//     that was only in volatile memory at the crash;
//  3. read the catalog log file to rebuild the log-file table;
//
// plus, in this implementation, restoring the NVRAM-staged tail block and
// the bad-block list.
//
// When the checkpoint policy is active (Options.CheckpointInterval > 0),
// steps 2 and 3 restore from the newest valid in-log checkpoint instead and
// replay only the blocks after it, bounding reopen cost by the tail length
// rather than the volume size. A missing, torn or checksum-failed
// checkpoint falls back to the full path below — on write-once media an
// invalid checkpoint is garbage to skip, never corruption to repair.
func (s *Service) recover() error {
	probesBefore := s.DeviceStats().Probes
	end, err := s.set.GlobalEnd()
	if err != nil {
		return fmt.Errorf("clio: locate end of written portion: %w", err)
	}
	s.sealedEnd = end
	s.publishTail(nil) // entrymap reconstruction reads through the snapshot
	s.recovery.SealedBlocks = end
	s.recovery.EndProbes = s.DeviceStats().Probes - probesBefore

	// Replay sealed block images the crash left in the staging NVRAM before
	// anything examines the sealed prefix: the replayed blocks can hold
	// checkpoint, entrymap and catalog records themselves.
	if err := s.replayStagedSeals(); err != nil {
		return err
	}
	end = s.sealedEnd
	s.recovery.SealedBlocks = end

	if cp := s.findCheckpoint(end); cp != nil {
		err := s.restoreFromCheckpoint(cp, end)
		if err == nil {
			// Everything through end is now reflected in memory, so the next
			// checkpoint is owed only after CheckpointInterval *new* blocks.
			// (Using cp.coveredEnd here would make every idle close/reopen
			// cycle burn a block on a fresh checkpoint, since the previous
			// checkpoint's own blocks always sit past its coveredEnd.)
			s.ckptAt = end
			s.badBlocks = append([]int(nil), s.recovery.BadBlocks...)
			s.mergeReplayBadLocked()
			s.restoreLastTS()
			return nil
		}
		// The snapshot could not be applied: reset what the partial
		// restore touched and reconstruct from scratch.
		s.cat = catalog.NewTable()
		s.recovery = RecoveryReport{
			SealedBlocks: s.recovery.SealedBlocks,
			EndProbes:    s.recovery.EndProbes,
			StagedSeals:  s.recovery.StagedSeals,
		}
		s.lastBound = 0
		s.lastTS = 0
	}

	// Step 2: reconstruct the entrymap accumulator from the sealed blocks.
	acc, rstats, err := entrymap.Reconstruct((*locatorSource)(s), s.opt.Degree, s.sealedEnd)
	if err != nil {
		return fmt.Errorf("clio: reconstruct entrymap state: %w", err)
	}
	s.acc = acc
	s.recovery.EntrymapBlocksScanned = rstats.BlocksScanned
	s.recovery.EntrymapEntriesRead = rstats.EntriesRead
	if s.sealedEnd > 0 {
		s.lastBound = ((s.sealedEnd - 1) / s.opt.Degree) * s.opt.Degree
	}

	// Restore the NVRAM-staged tail block, if it is current.
	if err := s.restoreTail(); err != nil {
		return err
	}

	// Step 3: replay the catalog log file.
	if err := s.replayCatalog(); err != nil {
		return err
	}

	// Load the bad-block list (§2.3.2).
	if err := s.replayBadBlocks(); err != nil {
		return err
	}
	s.badBlocks = append([]int(nil), s.recovery.BadBlocks...)
	s.mergeReplayBadLocked()

	// Re-arm the timestamp clock past anything already written.
	s.restoreLastTS()
	return nil
}

// replayStagedSeals writes out sealed block images that were staged to the
// NVRAM (and acked durable) but whose background device writes a crash cut
// off (pipeline.go). The pipeline completes strictly in order, so at most
// the oldest staged image can already be on the device — only its DropSealed
// was lost; every other image is appended at the current end, sliding past
// damaged blocks exactly as a live seal would.
func (s *Service) replayStagedSeals() error {
	nv, ok := s.opt.NVRAM.(StagingNVRAM)
	if !ok {
		return nil
	}
	globals, images, err := nv.LoadSealed()
	if err != nil {
		return fmt.Errorf("clio: nvram load sealed: %w", err)
	}
	if len(globals) == 0 {
		return nil
	}
	order := make([]int, len(globals))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return globals[order[a]] < globals[order[b]] })
	for i, oi := range order {
		g, img := globals[oi], images[oi]
		if i == 0 && g > s.sealedEnd {
			return fmt.Errorf("clio: staged seal for block %d but device end is %d (missing volume?)", g, s.sealedEnd)
		}
		if i == 0 && s.sealedEnd > 0 && s.deviceHoldsImage(s.sealedEnd-1, img) {
			// Already written just before the crash; nothing to replay.
		} else if err := s.writeStagedImageLocked(img); err != nil {
			return err
		}
		if err := nv.DropSealed(g); err != nil {
			return fmt.Errorf("clio: nvram drop sealed: %w", err)
		}
		s.recovery.StagedSeals++
		s.stagedTailFrom = g + 1
	}
	return nil
}

// deviceHoldsImage reports whether the device block at pos holds the staged
// image's contents. The device copy may legitimately differ in block index
// (damaged-block slides renumber), the volume-sealed flag (decided at write
// time) and therefore the trailing CRC; the payload, magic, record count and
// first timestamp must match byte for byte.
func (s *Service) deviceHoldsImage(pos int, staged []byte) bool {
	dev, err := s.readBlock(pos)
	if err != nil || len(dev) != len(staged) || !blockfmt.Validate(dev) {
		return false
	}
	n := len(dev)
	if !bytes.Equal(dev[:n-blockfmt.FooterSize], staged[:n-blockfmt.FooterSize]) {
		return false
	}
	df := dev[n-blockfmt.FooterSize:]
	sf := staged[n-blockfmt.FooterSize:]
	return bytes.Equal(df[:3], sf[:3]) && bytes.Equal(df[4:14], sf[4:14]) &&
		df[3]&^byte(blockfmt.FlagVolumeSealed) == sf[3]&^byte(blockfmt.FlagVolumeSealed)
}

// writeStagedImageLocked appends one staged sealed image at the current end,
// handling damaged blocks and full volumes as the live seal path does. Bad
// blocks discovered here queue in pendingBad: their log records ride out
// with the first post-recovery append.
func (s *Service) writeStagedImageLocked(img []byte) error {
	target := s.sealedEnd
	for {
		v, local, err := s.locateForWriteLocked(target)
		if err != nil {
			return err
		}
		var orFlags uint8
		if local == v.DataCapacity()-1 {
			orFlags = blockfmt.FlagVolumeSealed
		}
		out := img
		if orFlags != 0 || imageBlockIndex(img) != uint32(target) {
			out, err = blockfmt.Reindex(img, uint32(target), orFlags)
			if err != nil {
				return fmt.Errorf("clio: staged seal image for block %d: %w", target, err)
			}
		}
		devIdx := v.DeviceBlock(local)
		werr := s.writeTailBlockLocked(v, devIdx, out)
		switch {
		case werr == nil:
			s.sealedEnd = target + 1
			s.publishTail(nil)
			s.blockCache().Put(cache.Key{Block: target}, out)
			return nil
		case errors.Is(werr, wodev.ErrCorrupt) || transientExhausted(werr):
			if ierr := v.Dev.Invalidate(devIdx); ierr != nil {
				return fmt.Errorf("clio: invalidate damaged block: %w", ierr)
			}
			s.pendingBad = append(s.pendingBad, target)
			s.stats.DeadBlocks++
			target++
		case errors.Is(werr, wodev.ErrFull):
			if err := s.extendLocked(); err != nil {
				return err
			}
		default:
			return fmt.Errorf("clio: replay staged seal at block %d: %w", target, werr)
		}
	}
}

// mergeReplayBadLocked folds bad blocks discovered while replaying staged
// seals into the recovery report and live list (their log records are still
// queued in pendingBad).
func (s *Service) mergeReplayBadLocked() {
	for _, b := range s.pendingBad {
		s.recovery.BadBlocks = append(s.recovery.BadBlocks, b)
		s.badBlocks = append(s.badBlocks, b)
	}
}

// restoreTail re-stages an NVRAM-held tail block whose position matches the
// device's written end, rebuilding the block builder from its records and
// re-running the boundary accumulator work the dead server had done.
func (s *Service) restoreTail() error {
	nv := s.opt.NVRAM
	if nv == nil {
		return nil
	}
	g, img, err := nv.Load()
	if err != nil {
		return fmt.Errorf("clio: nvram load: %w", err)
	}
	if img == nil {
		return nil
	}
	renumbered := false
	if s.stagedTailFrom >= 0 && g >= s.stagedTailFrom {
		// The tail was staged after the pipelined seals just replayed; its
		// stored position reflects the dead server's numbering (possibly
		// slid), but its place is wherever the replay left the frontier.
		renumbered = g != s.sealedEnd
		g = s.sealedEnd
	}
	if g < s.sealedEnd {
		// Stale: the block was sealed to the device before the crash.
		return nv.Clear()
	}
	if g > s.sealedEnd {
		return fmt.Errorf("clio: nvram holds block %d but device end is %d (missing volume?)", g, s.sealedEnd)
	}
	parsed, err := blockfmt.Parse(img)
	if err != nil {
		// A torn NVRAM image: discard; the unsynced tail entries are lost.
		return nv.Clear()
	}
	if n := len(parsed.Records); n > 0 && parsed.Records[n-1].Continues {
		// The image ends mid-chain, which a consistent staging never does:
		// treat as torn.
		return nv.Clear()
	}
	b, err := blockfmt.NewBuilder(s.opt.BlockSize, uint32(g))
	if err != nil {
		return err
	}
	if fts := parsed.FirstTimestamp; fts != 0 {
		b.SetFirstTimestamp(fts)
	}
	b.SetFlags(parsed.Flags)
	s.tailIDs = make(map[uint16]bool)
	for _, r := range parsed.Records {
		rec := blockfmt.Record{
			LogID:     r.LogID,
			Form:      r.Form,
			AttrFlags: r.AttrFlags,
			Timestamp: r.Timestamp,
			Continued: r.Continued,
			Continues: r.Continues,
			Data:      r.Data,
			ExtraIDs:  r.ExtraIDs,
		}
		if err := b.Append(rec); err != nil {
			return fmt.Errorf("clio: rebuild staged tail: %w", err)
		}
		s.tailIDs[r.LogID] = true
		for _, ex := range r.ExtraIDs {
			s.tailIDs[ex] = true
		}
	}
	s.builder = b
	s.tailGlobal = g
	if renumbered {
		// The stored image carries the dead server's block index; publish a
		// reserialization under the restored position instead.
		img = b.Seal()
	}
	s.publishTail(img)
	s.blockCache().Put(cache.Key{Block: g}, img)
	s.recovery.TailRestored = true

	// Re-run the accumulator for boundaries the dead server had already
	// emitted when it started this block; entries it had physically written
	// are in the image, the rest must be queued again.
	var due []*entrymap.Entry
	n := s.opt.Degree
	for bnd := (s.lastBound/n + 1) * n; bnd <= g; bnd += n {
		due = append(due, s.acc.EntriesDue(bnd)...)
		s.lastBound = bnd
	}
	for _, e := range due {
		if !s.tailHasEntrymapEntry(parsed, e.Level, e.Boundary) {
			s.pendingDue = append(s.pendingDue, e)
		}
	}
	return nil
}

// tailHasEntrymapEntry reports whether the staged image already contains the
// entrymap entry for (level, boundary).
func (s *Service) tailHasEntrymapEntry(parsed *blockfmt.Parsed, level, boundary int) bool {
	for _, r := range parsed.Records {
		if r.LogID != entrymap.EntrymapID || r.Continued || r.Continues {
			continue
		}
		e, err := entrymap.Decode(r.Data)
		if err != nil {
			continue
		}
		if e.Level == level && e.Boundary == boundary {
			return true
		}
	}
	return false
}

// replayCatalog rebuilds the log-file table by reading the catalog log file
// from the beginning of the sequence.
func (s *Service) replayCatalog() error {
	return s.replayCatalogFrom(0)
}

// replayCatalogFrom applies the catalog records found in blocks at or after
// `from` (checkpoint recovery replays only the suffix past the snapshot).
func (s *Service) replayCatalogFrom(from int) error {
	b, err := s.loc.FindNext(entrymap.CatalogID, from)
	if err != nil {
		return err
	}
	for b >= 0 {
		parsed, perr := s.parseBlock(b)
		if perr == nil {
			for i, r := range parsed.Records {
				if r.LogID != entrymap.CatalogID || r.Continued {
					continue
				}
				data, aerr := s.assemble(b, i, parsed)
				if aerr != nil {
					continue // lost catalog record: the files it described
					// are recoverable only via their entries
				}
				rec, derr := catalog.DecodeRecord(data)
				if derr != nil {
					continue
				}
				if err := s.cat.Apply(rec); err != nil {
					return fmt.Errorf("clio: catalog replay: %w", err)
				}
				s.recovery.CatalogEntries++
			}
		}
		b, err = s.loc.FindNext(entrymap.CatalogID, b+1)
		if err != nil {
			return err
		}
	}
	return nil
}

// replayBadBlocks loads the bad-block log file (§2.3.2).
func (s *Service) replayBadBlocks() error {
	got, err := s.readBadBlocksFrom(0)
	if err != nil {
		return err
	}
	s.recovery.BadBlocks = append(s.recovery.BadBlocks, got...)
	return nil
}

// readBadBlocksFrom returns the bad-block indices logged in blocks at or
// after `from`.
func (s *Service) readBadBlocksFrom(from int) ([]int, error) {
	var out []int
	b, err := s.loc.FindNext(entrymap.BadBlockID, from)
	if err != nil {
		return nil, err
	}
	for b >= 0 {
		parsed, perr := s.parseBlock(b)
		if perr == nil {
			for i, r := range parsed.Records {
				if r.LogID != entrymap.BadBlockID || r.Continued {
					continue
				}
				data, aerr := s.assemble(b, i, parsed)
				if aerr != nil {
					continue
				}
				if idx, _, uerr := wire.Uvarint(data); uerr == nil {
					out = append(out, int(idx))
				}
			}
		}
		b, err = s.loc.FindNext(entrymap.BadBlockID, b+1)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// restoreLastTS arms the timestamp clock past every written timestamp by
// examining the newest readable blocks.
func (s *Service) restoreLastTS() {
	end := s.endLocked()
	const scanLimit = 64
	for b := end - 1; b >= 0 && b >= end-scanLimit; b-- {
		parsed, err := s.parseBlock(b)
		if err != nil {
			continue
		}
		max := parsed.FirstTimestamp
		for _, r := range parsed.Records {
			if r.Form == blockfmt.FormFull && r.Timestamp > max {
				max = r.Timestamp
			}
		}
		if max > s.lastTS {
			s.lastTS = max
		}
		return // the newest readable block suffices: timestamps are monotone
	}
}
