package server

import (
	"sort"

	"clio/internal/obs"
	"clio/internal/wire"
)

// opNames maps opcodes to the stable names used in metric labels and trace
// operation fields.
var opNames = map[byte]string{
	OpCreate:      "create",
	OpResolve:     "resolve",
	OpList:        "list",
	OpStat:        "stat",
	OpSetPerms:    "setperms",
	OpRetire:      "retire",
	OpAppend:      "append",
	OpCursorOpen:  "cursor_open",
	OpNext:        "next",
	OpPrev:        "prev",
	OpSeekTime:    "seek_time",
	OpSeekStart:   "seek_start",
	OpSeekEnd:     "seek_end",
	OpCursorEnd:   "cursor_end",
	OpReadAt:      "read_at",
	OpPing:        "ping",
	OpStats:       "stats",
	OpAppendMulti: "append_multi",
	OpSeekPos:     "seek_pos",
	OpHello:       "hello",
	OpForce:       "force",

	wire.OpReplHello:      "repl_hello",
	wire.OpReplWrite:      "repl_write",
	wire.OpReplInvalidate: "repl_invalidate",
	wire.OpReplTail:       "repl_tail",
	wire.OpReplTailClear:  "repl_tail_clear",
	wire.OpReplAck:        "repl_ack",
	wire.OpReplSessions:   "repl_sessions",
	wire.OpReplBase:       "repl_base",
	wire.OpReplReset:      "repl_reset",
	wire.OpPromote:        "promote",
	wire.OpReplStatus:     "repl_status",

	wire.OpStreamSubscribe:   "stream_subscribe",
	wire.OpStreamDeliver:     "stream_deliver",
	wire.OpStreamCredit:      "stream_credit",
	wire.OpStreamUnsubscribe: "stream_unsubscribe",
	wire.OpStreamEnd:         "stream_end",
	wire.OpStreamAck:         "stream_ack",
	wire.OpStreamRebalance:   "stream_rebalance",
}

func opName(op byte) string {
	if n, ok := opNames[op]; ok {
		return n
	}
	return "unknown"
}

// serverMetrics holds the server's registered instruments. Requests index
// the per-op counter table directly by opcode, so the hot path performs no
// map lookup or allocation.
type serverMetrics struct {
	requests  [256]*obs.Counter // per-op; nil slots fall through to unknown
	unknown   *obs.Counter
	reqLat    *obs.Histogram
	dedupHits *obs.Counter
}

// zeroServerMetrics is what met returns before RegisterMetrics: its
// instruments are all nil, and obs methods no-op on nil receivers, so
// un-instrumented servers record nothing without branching at every site.
var zeroServerMetrics serverMetrics

func (s *Server) met() *serverMetrics {
	if m := s.obsM.Load(); m != nil {
		return m
	}
	return &zeroServerMetrics
}

func (m *serverMetrics) countReq(op byte) {
	if m == nil {
		return
	}
	if c := m.requests[op]; c != nil {
		c.Inc()
		return
	}
	m.unknown.Inc()
}

// RegisterMetrics registers the server's request counters and latency
// histogram in reg and enables recording. Call once, before serving.
func (s *Server) RegisterMetrics(reg *obs.Registry) {
	m := &serverMetrics{
		unknown: reg.Counter("clio_server_requests_total",
			"Requests handled by the server, by operation.", obs.L("op", "unknown")),
		reqLat: reg.Histogram("clio_server_request_seconds",
			"Wall-clock latency of request handling, read to response written.", nil),
		dedupHits: reg.Counter("clio_server_dedup_hits_total",
			"Requests answered from the duplicate-suppression window without re-executing."),
	}
	for op, name := range opNames {
		m.requests[op] = reg.Counter("clio_server_requests_total",
			"Requests handled by the server, by operation.", obs.L("op", name))
	}
	reg.GaugeFunc("clio_server_connections",
		"Currently open client connections.", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.conns))
		})
	reg.GaugeFunc("clio_server_sessions",
		"Client sessions the server is holding state for.", func() int64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return int64(len(s.sessions))
		})
	s.obsReg.Store(reg)
	// Tenants installed before the registry arrived register now; the two
	// calls are order-independent (registration is idempotent).
	if tm := s.tenants.Load(); tm != nil {
		for _, ts := range *tm {
			ts.register(reg)
		}
	}
	s.obsM.Store(m)
}

// SessionStatus is one session's row in the server status report.
type SessionStatus struct {
	ID      uint64 `json:"id"`
	MaxSeq  uint64 `json:"max_seq"`
	Cursors int    `json:"cursors"`
	Window  int    `json:"dedup_window"`
}

// TenantStatus is one tenant's row in the server status report: the live
// usage counters next to the configured limits (0 = unlimited).
type TenantStatus struct {
	Name        string `json:"name"`
	Sessions    int64  `json:"sessions"`
	MaxSessions int64  `json:"max_sessions,omitempty"`
	Logs        int64  `json:"logs"`
	MaxLogs     int64  `json:"max_logs,omitempty"`
	Bytes       int64  `json:"bytes_appended"`
	MaxBytes    int64  `json:"max_bytes,omitempty"`
}

// ServerStatus is the server section of /statusz.
type ServerStatus struct {
	Epoch    uint64          `json:"epoch"`
	Conns    int             `json:"connections"`
	Draining bool            `json:"draining,omitempty"`
	Sessions []SessionStatus `json:"sessions"`
	Tenants  []TenantStatus  `json:"tenants,omitempty"`
}

// Status reports the server's connection and session state for /statusz.
func (s *Server) Status() ServerStatus {
	s.mu.Lock()
	st := ServerStatus{Epoch: s.epoch, Conns: len(s.conns), Draining: s.draining.Load()}
	sessions := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		sessions = append(sessions, ss)
	}
	s.mu.Unlock()
	for _, ss := range sessions {
		ss.mu.Lock()
		st.Sessions = append(st.Sessions, SessionStatus{
			ID:      ss.id,
			MaxSeq:  ss.maxSeq,
			Cursors: len(ss.cursors),
			Window:  len(ss.window),
		})
		ss.mu.Unlock()
	}
	sort.Slice(st.Sessions, func(i, j int) bool { return st.Sessions[i].ID < st.Sessions[j].ID })
	if tm := s.tenants.Load(); tm != nil {
		for _, ts := range *tm {
			cfg := ts.cfg.Load()
			st.Tenants = append(st.Tenants, TenantStatus{
				Name:        ts.name,
				Sessions:    ts.sessions.Load(),
				MaxSessions: cfg.MaxSessions,
				Logs:        ts.logs.Load(),
				MaxLogs:     cfg.MaxLogs,
				Bytes:       ts.bytes.Load(),
				MaxBytes:    cfg.MaxBytes,
			})
		}
		sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Name < st.Tenants[j].Name })
	}
	return st
}
