package server

import (
	"net"
	"strings"
	"testing"
	"time"

	"clio/internal/core"
	"clio/internal/wire"
	"clio/internal/wodev"
)

func testServer(t *testing.T) (*Server, net.Conn) {
	t.Helper()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 12})
	now := int64(0)
	svc, err := core.New(dev, core.Options{
		BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(svc)
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	t.Cleanup(func() { cConn.Close(); srv.Close(); svc.Close() })
	return srv, cConn
}

// roundTrip sends one raw frame and returns the response.
func roundTrip(t *testing.T, conn net.Conn, op byte, payload []byte) (byte, []byte) {
	t.Helper()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := WriteFrame(conn, op, payload); err != nil {
		t.Fatal(err)
	}
	status, resp, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	return status, resp
}

func TestMalformedPayloadsReturnErrors(t *testing.T) {
	_, conn := testServer(t)
	cases := []struct {
		name    string
		op      byte
		payload []byte
	}{
		{"unknown op", 200, nil},
		{"create empty", OpCreate, nil},
		{"create truncated", OpCreate, PutString(nil, "/x")},
		{"append no body", OpAppend, []byte{1}},
		{"append truncated data", OpAppend, append(wire.PutUint16(nil, 4), 0, 255)},
		{"next bad handle varint", OpNext, []byte{0xFF}},
		{"next unknown handle", OpNext, wire.PutUvarint(nil, 999)},
		{"seek missing ts", OpSeekTime, wire.PutUvarint(nil, 1)},
		{"stat empty", OpStat, nil},
		{"readat empty", OpReadAt, nil},
	}
	for _, c := range cases {
		status, resp := roundTrip(t, conn, c.op, c.payload)
		if status != StatusErr {
			t.Errorf("%s: status %d, want error", c.name, status)
			continue
		}
		d := NewDecoder(resp)
		if msg, err := d.String(); err != nil || msg == "" {
			t.Errorf("%s: bad error message %q %v", c.name, msg, err)
		}
	}
	// The connection remains usable after every malformed request.
	if status, _ := roundTrip(t, conn, OpPing, nil); status != StatusOK {
		t.Error("connection dead after malformed requests")
	}
}

func TestServerCursorLifecycle(t *testing.T) {
	_, conn := testServer(t)
	p := PutString(nil, "/l")
	p = wire.PutUint16(p, 0)
	p = PutString(p, "")
	if status, _ := roundTrip(t, conn, OpCreate, p); status != StatusOK {
		t.Fatal("create failed")
	}
	status, resp := roundTrip(t, conn, OpCursorOpen, PutString(nil, "/l"))
	if status != StatusOK {
		t.Fatal("cursor open failed")
	}
	handle, err := NewDecoder(resp).Uint32()
	if err != nil {
		t.Fatal(err)
	}
	// Empty log: EOF.
	if status, _ := roundTrip(t, conn, OpNext, wire.PutUvarint(nil, uint64(handle))); status != StatusEOF {
		t.Errorf("Next on empty: %d", status)
	}
	// Close then reuse: error.
	if status, _ := roundTrip(t, conn, OpCursorEnd, wire.PutUvarint(nil, uint64(handle))); status != StatusOK {
		t.Error("cursor close failed")
	}
	status, resp = roundTrip(t, conn, OpNext, wire.PutUvarint(nil, uint64(handle)))
	if status != StatusErr {
		t.Errorf("Next after close: %d", status)
	}
	msg, _ := NewDecoder(resp).String()
	if !strings.Contains(msg, "unknown cursor") {
		t.Errorf("error = %q", msg)
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 256})
	now := int64(0)
	svc, err := core.New(dev, core.Options{BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := New(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if err := srv.Serve(ln); err == nil {
		t.Error("Serve after Close accepted")
	}
}
