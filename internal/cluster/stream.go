package cluster

import (
	"sync"

	"clio/internal/core"
	"clio/internal/wire"
	"clio/internal/wodev"
)

// frame is one replication stream element: a totally ordered record of one
// device-level mutation (or session ack) with its stream position.
type frame struct {
	pos     uint64
	op      byte
	payload []byte
}

type subscriber struct {
	ch chan frame
}

// stream is the leader's totally ordered mutation log, existing only as a
// position counter and live fan-out: frames are not retained, because every
// prefix of the stream is equivalent to the device state that produced it.
// queue is each subscriber's frame buffer (Config.StreamQueue): a sender
// that falls this far behind is cut loose and restarts with a fresh
// device-level catch-up — cheaper than retaining unbounded history
// centrally, and correct because a follower's state is always
// reconstructible from the devices themselves. The sender keeps the peer
// counted live across that restart (see errFellBehind), so a merely slow
// follower does not flap the pre-gate's quorum estimate.
type stream struct {
	queue int

	mu   sync.Mutex
	pos  uint64
	subs map[*subscriber]struct{}
}

func newStream(queue int) *stream {
	return &stream{queue: queue, subs: make(map[*subscriber]struct{})}
}

// emit assigns the next position and delivers to every live subscriber. A
// subscriber with a full queue is dropped on the spot (its channel closed);
// blocking here would stall the group-commit path on the slowest replica.
func (st *stream) emit(op byte, payload []byte) uint64 {
	st.mu.Lock()
	st.pos++
	f := frame{pos: st.pos, op: op, payload: payload}
	for sub := range st.subs {
		select {
		case sub.ch <- f:
		default:
			delete(st.subs, sub)
			close(sub.ch)
		}
	}
	pos := st.pos
	st.mu.Unlock()
	return pos
}

// subscribe registers a new consumer and returns the current position: the
// caller owns catching the follower up to it by other means (device suffix
// copy); everything after arrives on the channel.
func (st *stream) subscribe() (*subscriber, uint64) {
	sub := &subscriber{ch: make(chan frame, st.queue)}
	st.mu.Lock()
	st.subs[sub] = struct{}{}
	pos := st.pos
	st.mu.Unlock()
	return sub, pos
}

func (st *stream) unsubscribe(sub *subscriber) {
	st.mu.Lock()
	if _, ok := st.subs[sub]; ok {
		delete(st.subs, sub)
		close(sub.ch)
	}
	st.mu.Unlock()
}

func (st *stream) Pos() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.pos
}

// tapDevice wraps a leader's device and emits a stream frame after every
// successful mutation — after, so a frame never describes a write the local
// media rejected. The core serializes writes per device, so per-device
// frame order matches device order; cross-device interleaving is harmless
// because frames address (shard, dev, index) explicitly.
//
// One deliberate gap: a write that succeeds only via the core's
// ErrRewrite read-back path (the device wrote but reported failure) emits
// no frame. The follower detects the resulting index gap on the next frame
// for that device, drops the stream, and the reconnect's suffix catch-up
// repairs it.
type tapDevice struct {
	wodev.Device
	n     *Node
	shard uint32
	dev   uint32
}

func (t *tapDevice) AppendBlock(data []byte) (int, error) {
	idx, err := t.Device.AppendBlock(data)
	if err == nil {
		t.n.emitFrame(wire.OpReplWrite,
			(&wire.ReplWrite{Shard: t.shard, Dev: t.dev, Index: uint64(idx), Data: data}).Encode(nil))
	}
	return idx, err
}

func (t *tapDevice) WriteAt(idx int, data []byte) error {
	err := t.Device.WriteAt(idx, data)
	if err == nil {
		t.n.emitFrame(wire.OpReplWrite,
			(&wire.ReplWrite{Shard: t.shard, Dev: t.dev, Index: uint64(idx), Data: data}).Encode(nil))
	}
	return err
}

func (t *tapDevice) Invalidate(idx int) error {
	err := t.Device.Invalidate(idx)
	if err == nil {
		t.n.emitFrame(wire.OpReplInvalidate,
			(&wire.ReplInvalidate{Shard: t.shard, Dev: t.dev, Index: uint64(idx)}).Encode(nil))
	}
	return err
}

// tapNVRAM mirrors the forced-tail staging writes: replicating these frames
// is what extends the paper's NVRAM crash guarantee across machines — a
// follower holds the exact partial-block image a leader crash would have
// recovered from locally.
type tapNVRAM struct {
	core.NVRAM
	n     *Node
	shard uint32
}

func (t *tapNVRAM) Store(global int, image []byte) error {
	err := t.NVRAM.Store(global, image)
	if err == nil {
		t.n.emitFrame(wire.OpReplTail,
			(&wire.ReplTail{Shard: t.shard, Global: uint64(global), Image: image}).Encode(nil))
	}
	return err
}

func (t *tapNVRAM) Clear() error {
	err := t.NVRAM.Clear()
	if err == nil {
		t.n.emitFrame(wire.OpReplTailClear,
			(&wire.ReplTailClear{Shard: t.shard}).Encode(nil))
	}
	return err
}

func (n *Node) emitFrame(op byte, payload []byte) uint64 {
	n.framesEmitted.Add(1)
	return n.stream.emit(op, payload)
}
