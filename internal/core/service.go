// Package core implements the Clio log service itself — the paper's primary
// contribution. It glues the substrates together: write-once devices
// (internal/wodev) carrying volumes (internal/volume), the block format
// (internal/blockfmt), the server block cache (internal/cache), the entrymap
// search tree (internal/entrymap) and the catalog (internal/catalog).
//
// A Service owns one volume sequence and exposes the log-file abstraction:
// readable, append-only files named in a directory hierarchy, written with
// optional timestamps and forced (synchronous) durability, and read through
// cursors that iterate forwards or backwards and seek by time (§2.1).
//
// # Write path
//
// Entries are packed into the current tail block. With an NVRAM tail
// (§2.3.1) the partial block is staged in rewriteable non-volatile storage
// and re-staged on each forced write; the write-once device only ever
// receives full blocks. Without an NVRAM tail a forced write must seal the
// partial block to the device immediately, padding the remainder — the
// internal fragmentation the paper warns about.
//
// At every Nth block boundary the entrymap accumulator emits its due entries
// (highest level first), which are appended to the entrymap log file at the
// boundary block, or displaced slightly when a fragmented entry straddles
// the boundary or the boundary block is damaged (§2.3.2).
//
// # Read path
//
// Cursors locate blocks via the entrymap locator and reassemble fragmented
// entries. Reads of recent data are served from the block cache; distant
// reads cost O(log_N d) block fetches (§3.3).
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"clio/internal/blockfmt"
	"clio/internal/cache"
	"clio/internal/catalog"
	"clio/internal/entrymap"
	"clio/internal/faults"
	"clio/internal/obs"
	"clio/internal/vclock"
	"clio/internal/volume"
	"clio/internal/wodev"
)

// Errors.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("clio: service closed")
	// ErrEntryTooLarge is returned for entries above MaxEntrySize.
	ErrEntryTooLarge = errors.New("clio: entry exceeds maximum size")
	// ErrNoAllocator is returned when the active volume fills and no
	// successor-volume allocator was configured.
	ErrNoAllocator = errors.New("clio: volume full and no allocator configured")
	// ErrSystemLog is returned for client appends to reserved log files.
	ErrSystemLog = errors.New("clio: cannot append to a system log file")
	// ErrLost is returned when an entry's block was damaged or invalidated
	// and its contents cannot be recovered (§2.3.2).
	ErrLost = errors.New("clio: entry lost to media damage")
)

// Allocator provides a fresh, unwritten device for the next volume of a
// sequence when the active volume fills up.
type Allocator func(seq volume.SeqID, index uint32, startOffset uint64, blockSize int) (wodev.Device, error)

// Options configures a Service.
type Options struct {
	// BlockSize is the device block size; defaults to 1024 (§3.2).
	BlockSize int
	// Degree is the entrymap tree degree N; defaults to 16 (§3.2).
	Degree int
	// CacheBlocks bounds the block cache; 0 means unbounded; defaults to
	// 4096 blocks (4 MiB at the default block size).
	CacheBlocks int
	// Clock, when set, charges the paper's cost model for every operation so
	// experiments can report deterministic virtual times. Nil charges
	// nothing.
	Clock *vclock.Clock
	// NVRAM, when non-nil, stages the partial tail block in rewriteable
	// non-volatile storage so forced writes need not pad out blocks
	// (§2.3.1). Nil disables the tail: forced writes seal immediately.
	NVRAM NVRAM
	// Now supplies timestamps (Unix nanoseconds); defaults to time.Now.
	// The service enforces strictly increasing timestamps.
	Now func() int64
	// Allocate provides successor volumes; nil limits the sequence to the
	// initially mounted volumes.
	Allocate Allocator
	// MaxEntrySize bounds a single entry's data; defaults to 1 MiB.
	MaxEntrySize int
	// DisplacementLimit bounds how far an entrymap entry may be displaced
	// from its nominal boundary block before the locator gives up and falls
	// back to lower levels; defaults to the degree N.
	DisplacementLimit int
	// RemoteIPC selects the cross-machine IPC charge for the cost model.
	RemoteIPC bool
	// Retry bounds the retry-with-backoff schedule applied to device reads,
	// tail-block writes and NVRAM stores when they fail with a transient
	// fault (wodev.ErrTransient and friends); nil uses
	// faults.DefaultDevicePolicy(). Retries run while the service lock is
	// held, so the schedule should stay short.
	Retry *faults.RetryPolicy
	// Faults is the named fault/crash injection registry (FaultReadBlock,
	// FaultSealWrite, FaultNVRAMStore); nil injects nothing.
	Faults *faults.Registry
	// CheckpointInterval, when positive, emits a recovery checkpoint to
	// the reserved checkpoint log file every time that many blocks have
	// been sealed since the last one (and on clean Close), and makes Open
	// restore from the newest valid checkpoint instead of reconstructing
	// from scratch — bounding reopen cost by the interval rather than the
	// written portion. 0 (the default) disables both sides; a store
	// written with checkpoints remains fully openable without them.
	CheckpointInterval int
	// CommitWindow controls the group-commit gather window for forced
	// appends. 0 (the default) sizes the window adaptively from EWMAs of
	// the arrival rate and the observed commit latency — a lone writer
	// commits immediately, a storm coalesces into large batches. A positive
	// duration pins a fixed gather window (the escape hatch for
	// reproducibility). A negative value disables both the window and the
	// pipelined sealer, restoring the original leader/rider-only path; it
	// is also what experiments pin to keep vclock charges deterministic.
	//
	// When the configured NVRAM implements StagingNVRAM and CommitWindow is
	// non-negative, full-block seals are pipelined: the sealed image is
	// made durable in NVRAM, the force acks, and the write-once device
	// write proceeds on a background sealer while the next batch
	// accumulates (bounded in-flight window, in-order completion).
	CommitWindow time.Duration
	// Cold, when non-nil, enables the space-reclamation compactor and the
	// cold storage tier: CompactOnce copies the live entries of old sealed
	// volumes forward, demotes the emptied volumes to the configured archive
	// backend, and reads of demoted blocks transparently fetch from the
	// backend at archival latency. Nil disables compaction and cold reads.
	Cold *ColdTier
}

func (o Options) withDefaults() Options {
	if o.BlockSize <= 0 {
		o.BlockSize = wodev.DefaultBlockSize
	}
	if o.Degree <= 0 {
		o.Degree = entrymap.DefaultDegree
	}
	if o.CacheBlocks == 0 {
		o.CacheBlocks = 4096
	} else if o.CacheBlocks < 0 {
		o.CacheBlocks = 0 // explicit "unbounded"
	}
	if o.Now == nil {
		o.Now = func() int64 { return time.Now().UnixNano() }
	}
	if o.MaxEntrySize <= 0 {
		o.MaxEntrySize = 1 << 20
	}
	if o.DisplacementLimit <= 0 {
		o.DisplacementLimit = o.Degree
	}
	return o
}

// Stats aggregates service activity, including the space-overhead accounting
// used by the §3.5 experiment.
type Stats struct {
	EntriesAppended int64
	ForcedWrites    int64
	BlocksSealed    int64
	DeadBlocks      int64 // blocks invalidated due to damage
	ClientBytes     int64 // client data bytes appended
	HeaderBytes     int64 // entry header + size-slot bytes (client entries)
	EntrymapBytes   int64 // entrymap entry bytes incl. their headers
	CatalogBytes    int64 // catalog entry bytes incl. their headers
	PaddingBytes    int64 // block bytes wasted by force-sealing
	FooterBytes     int64 // per-block footer bytes
	GroupCommits    int64 // batch commits that served two or more forced appends
	BatchedForces   int64 // forced appends that shared their commit with others
	Checkpoints     int64 // recovery checkpoints emitted
	CheckpointBytes int64 // checkpoint payload bytes incl. their headers
	AdaptiveWaits   int64 // commit leaders that opened an adaptive gather window
	PipelinedSeals  int64 // sealed blocks whose device write completed off the ack path

	// Compaction / cold tier.
	EntriesRelocated int64 // live entries copied forward by the compactor
	BytesRelocated   int64 // their data bytes
	ColdFetches      int64 // block reads served from the cold backend

	// Gauges sampled at Stats() time (not cumulative; zeroed by reset only
	// in the sense that they re-derive from live state).
	CommitWindowNanos int64 // current adaptive gather window (ns)
	InflightSeals     int64 // seals staged durable but not yet on device
	StagedBytes       int64 // bytes held by in-flight staged seals
	VolumesRelocated  int64 // volumes whose live entries have been copied forward
	VolumesDemoted    int64 // volumes archived cold and released locally
}

// Service is the Clio log service for one volume sequence.
//
// Locking discipline: s.mu is the WRITER lock — it serializes every mutation
// of tail state, the accumulator, the catalog write path and the stats.
// Readers never take it. Sealed blocks are immutable (write-once storage),
// so the read path works lock-free from the published tail snapshot
// (s.tailState): cache and device reads synchronize only inside their own
// components. idxMu guards the entrymap accumulator, which readers consult
// through the locator for the in-progress span; locMu serializes the
// (stat-counting, hence stateful) locator itself. Lock order: s.mu > idxMu;
// locMu > idxMu; neither idxMu nor locMu is ever held when acquiring s.mu.
type Service struct {
	mu  sync.Mutex
	opt Options

	set    *volume.Set
	cacheP atomic.Pointer[cache.Cache]
	cat    *catalog.Table
	acc    *entrymap.Accumulator
	loc    *entrymap.Locator

	// Tail state (s.mu).
	builder    *blockfmt.Builder
	tailGlobal int             // global data index of the staged tail; -1 when none
	tailIDs    map[uint16]bool // ids with records in the staged tail
	sealedEnd  int             // global data blocks durably on device (incl. dead)
	midChain   bool            // a fragmented entry is incomplete
	tailDirty  bool            // the staged tail holds records not yet forced
	pendingDue []*entrymap.Entry

	// tailState is the reader-visible snapshot of {sealedEnd, tail block,
	// tail image}; the writer republishes it at every tail transition.
	tailState atomic.Pointer[tailSnap]

	// Tail-publish notifier for streaming subscribers. pubSeq counts tail
	// publishes; tailWake holds the broadcast channel the current waiters
	// share, nil when nobody is waiting. The publish hook is a single
	// atomic load in that (common) case — subscribing must never tax the
	// force path of a store nobody is tailing.
	pubSeq   atomic.Uint64
	tailWake atomic.Pointer[chan struct{}]

	// idxMu guards s.acc against concurrent locator reads; locMu serializes
	// locator use by the lock-free read path.
	idxMu sync.Mutex
	locMu sync.Mutex

	// Group commit (§2.3.1 amortization): concurrently arriving forced
	// appends queue in forceQ; whoever holds leaderMu drains the queue,
	// appends every queued entry and performs ONE seal/NVRAM store for the
	// whole batch.
	forceQMu      sync.Mutex
	forceQ        []*forceReq
	leaderMu      sync.Mutex
	groupCommits  atomic.Int64
	batchedForces atomic.Int64

	// Adaptive commit window (see gatherWindow): EWMAs, in nanoseconds, of
	// forced-append inter-arrival time and commit duration, the previous
	// arrival stamp, and the window the current/most recent leader chose.
	// forceSig wakes a leader sleeping in its gather window early when a
	// new request arrives (capacity 1, non-blocking send).
	arrivalEWMA    atomic.Int64
	commitEWMA     atomic.Int64
	lastArrival    atomic.Int64
	windowNanos    atomic.Int64
	adaptiveWaits  atomic.Int64
	pipelinedSeals atomic.Int64
	forceSig       chan struct{}
	batchHist      [9]atomic.Int64 // pow-2 batch-size buckets 1,2,4,...,≥256

	// Pipelined sealer (s.mu + sealCond). pipe holds sealed blocks whose
	// images are durable in staging NVRAM but whose in-order device writes
	// have not completed; the background sealer drains it head-first.
	// pipeErr parks a hard device-write failure until a foreground
	// operation absorbs it (drainPipeLocked). staging is set at Open when
	// the NVRAM supports StagingNVRAM and CommitWindow >= 0.
	sealCond       *sync.Cond
	pipe           []*pendingSeal
	pipeErr        error
	sealerOn       bool
	sealerStop     bool
	staging        bool
	pendingBad     []int // bad-block records queued by pipeline slides
	stagedTailFrom int   // recovery: NVRAM tail renumber key (replayStagedSeals)

	lastTS          int64
	lastBound       int   // last boundary EntriesDue has been called for
	ckptAt          int   // sealedEnd as of the last emitted/restored checkpoint
	badBlocks       []int // full known bad-block list (recovery + live slides)
	pendingSnapshot []*catalog.Record
	closedFlag      atomic.Bool
	stats           Stats
	recovery        RecoveryReport

	// Fault tolerance: the effective retry schedule, and the blocks the
	// current client operation had to relocate past (reported back as a
	// DegradedError on completion).
	retry           faults.RetryPolicy
	opDegraded      []int
	opDegradedCause error
	// Relocations by the background sealer, reported on the next operation.
	pendingDegraded      []int
	pendingDegradedCause error

	// Compaction / cold tier (Options.Cold non-nil). cmpMu serializes
	// CompactOnce passes; cmpState is the sidecar-backed state, mutated only
	// under cmpMu (and read at Open before concurrency starts); cmpView is
	// the lock-free reader view republished at every sidecar commit;
	// compactHook is a test-only stage callback; coldFetches counts reads
	// served from the cold backend.
	cmpMu       sync.Mutex
	cmpState    *compactState
	cmpView     atomic.Pointer[compactView]
	compactHook func(stage string) error
	coldFetches atomic.Int64

	// Observability: obsM holds the registered latency instruments (nil
	// until RegisterMetrics — the same swap-able pattern as cacheP); tr is
	// the trace of the operation currently holding s.mu, set so deep
	// writer-path sites (seal, NVRAM store) can attach spans without
	// threading a parameter through every call.
	obsM atomic.Pointer[coreMetrics]
	tr   *obs.Trace

	nextTag int // next cache volume tag
}

// tailSnap is the immutable reader view of the service's write frontier.
// Write-once blocks below sealedEnd never change, so a reader holding a
// snapshot can resolve any block: sealed blocks via cache/device, the staged
// tail from the embedded image.
type tailSnap struct {
	sealedEnd  int
	tailGlobal int             // -1 when no tail is staged
	tailImage  []byte          // sealed image of the staged tail (nil when none)
	tailIDs    map[uint16]bool // ids present in the staged tail (never mutated)
	// pipe mirrors the in-flight pipelined seals, in global order just
	// above sealedEnd: readers resolve those blocks from the staged images
	// exactly like the tail, since the device copies may not exist yet.
	pipe []pipeSnap
}

// pipeSnap is the reader view of one in-flight pipelined seal.
type pipeSnap struct {
	global int
	img    []byte
	ids    map[uint16]bool
}

// end returns the snapshot's readable-block count (sealed + in-flight +
// staged tail).
func (sn *tailSnap) end() int {
	if sn.tailGlobal >= 0 {
		return sn.tailGlobal + 1
	}
	if n := len(sn.pipe); n > 0 {
		return sn.pipe[n-1].global + 1
	}
	return sn.sealedEnd
}

// publishTail publishes the current tail state for lock-free readers; s.mu
// held. img must be the current sealed tail image when a tail is staged
// (callers that just produced one pass it to avoid re-sealing), or nil to
// have publishTail derive it from the builder.
func (s *Service) publishTail(img []byte) {
	sn := &tailSnap{sealedEnd: s.sealedEnd, tailGlobal: s.tailGlobal}
	if len(s.pipe) > 0 {
		sn.pipe = make([]pipeSnap, len(s.pipe))
		for i, ps := range s.pipe {
			// ps.img and ps.idSet are never mutated after enqueue (slides
			// replace the image wholesale), so aliasing them is safe.
			sn.pipe[i] = pipeSnap{global: ps.global, img: ps.img, ids: ps.idSet}
		}
	}
	if s.tailGlobal >= 0 {
		if img == nil {
			img = s.builder.Seal()
		}
		sn.tailImage = img
		ids := make(map[uint16]bool, len(s.tailIDs))
		for id := range s.tailIDs {
			ids[id] = true
		}
		sn.tailIDs = ids
	}
	s.tailState.Store(sn)
	// Publish-order matters for the no-lost-wakeup protocol: the sequence
	// bump happens after the snapshot store, the broadcast after the bump,
	// so a subscriber that re-reads the sequence after installing a waiter
	// cannot miss the state this publish made visible.
	s.pubSeq.Add(1)
	s.wakeTail()
}

// wakeTail broadcasts a tail publish to any waiters. The idle path — no
// subscriber blocked at the tail — is a single atomic load.
func (s *Service) wakeTail() {
	if s.tailWake.Load() == nil {
		return
	}
	if ch := s.tailWake.Swap(nil); ch != nil {
		close(*ch)
	}
}

// TailSeq returns the current tail-publish sequence number. A subscriber
// reads it before scanning for new entries; if the scan comes up empty,
// TailNotify(seq) supplies a wake channel for anything published since.
func (s *Service) TailSeq() uint64 { return s.pubSeq.Load() }

// closedChan is the permanently closed channel TailNotify returns when the
// awaited publish has already happened.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// TailNotify returns a channel that is closed at the first tail publish
// after the given sequence (taken from TailSeq before the caller's scan).
// If a publish already happened — or the service closed — the returned
// channel is already closed, so a bare receive never loses a wakeup:
//
//	seq := s.TailSeq()
//	// ... cursor scan hits io.EOF ...
//	<-s.TailNotify(seq) // or select against ctx.Done()
//
// Waiters share one broadcast channel; a publish closes it for all of them.
func (s *Service) TailNotify(seq uint64) <-chan struct{} {
	for {
		if s.pubSeq.Load() != seq || s.closedFlag.Load() {
			return closedChan
		}
		ch := s.tailWake.Load()
		if ch == nil {
			nc := make(chan struct{})
			if !s.tailWake.CompareAndSwap(nil, &nc) {
				continue
			}
			ch = &nc
		}
		// Re-check after installing the waiter: a publish that raced ahead
		// of the install may have missed it.
		if s.pubSeq.Load() != seq || s.closedFlag.Load() {
			return closedChan
		}
		return *ch
	}
}

// snap returns the published tail snapshot (never nil after Open).
func (s *Service) snap() *tailSnap { return s.tailState.Load() }

// blockCache returns the current block cache (replaceable by experiments).
func (s *Service) blockCache() *cache.Cache { return s.cacheP.Load() }

// endShared is the reader-side endLocked: readable blocks per the snapshot.
func (s *Service) endShared() int {
	return s.snap().end()
}

// New creates a brand-new volume sequence on the given fresh device and
// returns the running service. The sequence id is derived from the creation
// time and the device geometry.
func New(dev wodev.Device, opt Options) (*Service, error) {
	opt = opt.withDefaults()
	if dev.BlockSize() != opt.BlockSize {
		return nil, fmt.Errorf("clio: device block size %d != option %d", dev.BlockSize(), opt.BlockSize)
	}
	now := opt.Now()
	var seq volume.SeqID
	for i := 0; i < 8; i++ {
		seq[i] = byte(now >> (8 * i))
	}
	seq[8] = byte(opt.Degree)
	seq[9] = byte(opt.BlockSize >> 8)
	hdr := volume.Header{
		Seq:         seq,
		Index:       0,
		StartOffset: 0,
		BlockSize:   uint32(opt.BlockSize),
		N:           uint16(opt.Degree),
		Created:     now,
	}
	if err := volume.Format(dev, hdr); err != nil {
		return nil, err
	}
	return Open([]wodev.Device{dev}, opt)
}

// Open mounts the given devices (the volumes of one sequence, any order;
// the newest must be present) and recovers the service state: locate the end
// of the written portion, reconstruct entrymap information, replay the
// catalog, and restore any NVRAM-staged tail block (§2.3.1).
func Open(devs []wodev.Device, opt Options) (*Service, error) {
	opt = opt.withDefaults()
	if len(devs) == 0 {
		return nil, errors.New("clio: no devices to mount")
	}
	s := &Service{
		opt:            opt,
		cat:            catalog.NewTable(),
		tailGlobal:     -1,
		retry:          faults.DefaultDevicePolicy(),
		forceSig:       make(chan struct{}, 1),
		stagedTailFrom: -1,
	}
	s.sealCond = sync.NewCond(&s.mu)
	if _, ok := opt.NVRAM.(StagingNVRAM); ok && opt.CommitWindow >= 0 {
		s.staging = true
	}
	s.cacheP.Store(cache.New(opt.CacheBlocks, opt.Clock))
	s.publishTail(nil)
	if opt.Retry != nil {
		s.retry = *opt.Retry
	}
	// Mount all volumes; adopt the sequence id from the first header.
	var vols []*volume.Volume
	for _, dev := range devs {
		v, err := volume.Mount(dev, s.nextTag)
		if err != nil {
			return nil, err
		}
		s.nextTag++
		vols = append(vols, v)
	}
	s.set = volume.NewSet(vols[0].Hdr.Seq)
	for _, v := range vols {
		if int(v.Hdr.BlockSize) != opt.BlockSize {
			return nil, fmt.Errorf("clio: volume %d block size %d != option %d",
				v.Hdr.Index, v.Hdr.BlockSize, opt.BlockSize)
		}
		if int(v.Hdr.N) != opt.Degree {
			return nil, fmt.Errorf("clio: volume %d degree %d != option %d",
				v.Hdr.Index, v.Hdr.N, opt.Degree)
		}
		if err := s.set.Add(v); err != nil {
			return nil, err
		}
	}
	acc, err := entrymap.NewAccumulator(opt.Degree)
	if err != nil {
		return nil, err
	}
	s.acc = acc
	loc, err := entrymap.NewLocator((*locatorSource)(s), opt.Degree)
	if err != nil {
		return nil, err
	}
	s.loc = loc
	// The compaction sidecar must load before recovery: replay may need to
	// read blocks of already-demoted volumes through the cold backend.
	if err := s.loadColdState(); err != nil {
		return nil, err
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	// Finish demotions a crash interrupted, then surface the compaction
	// state in the recovery report (recover() may have rebuilt s.recovery
	// from a checkpoint, so the counts are set afterwards).
	if err := s.sweepDemoted(); err != nil {
		return nil, err
	}
	if s.cmpState != nil {
		for _, v := range s.cmpState.Vols {
			s.recovery.VolumesRelocated++
			if v.Demoted {
				s.recovery.VolumesDemoted++
			}
		}
	}
	return s, nil
}

// Options returns the service's effective options.
func (s *Service) Options() Options { return s.opt }

// Degree returns the entrymap tree degree N.
func (s *Service) Degree() int { return s.opt.Degree }

// BlockSize returns the block size in bytes.
func (s *Service) BlockSize() int { return s.opt.BlockSize }

// Stats returns a snapshot of the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.stats
	out.GroupCommits = s.groupCommits.Load()
	out.BatchedForces = s.batchedForces.Load()
	out.AdaptiveWaits = s.adaptiveWaits.Load()
	out.PipelinedSeals = s.pipelinedSeals.Load()
	out.CommitWindowNanos = s.windowNanos.Load()
	out.InflightSeals = int64(len(s.pipe))
	for _, ps := range s.pipe {
		out.StagedBytes += int64(len(ps.img))
	}
	out.ColdFetches = s.coldFetches.Load()
	if cv := s.cmpView.Load(); cv != nil {
		out.VolumesRelocated = int64(len(cv.vols))
		for _, v := range cv.vols {
			if v.Demoted {
				out.VolumesDemoted++
			}
		}
	}
	return out
}

// BatchSizeHistogram returns the distribution of group-commit batch sizes
// in power-of-two buckets: index i counts batches of 2^i..2^(i+1)-1 entries
// (the last bucket is unbounded).
func (s *Service) BatchSizeHistogram() [9]int64 {
	var out [9]int64
	for i := range s.batchHist {
		out[i] = s.batchHist[i].Load()
	}
	return out
}

// CacheStats returns the block cache counters.
func (s *Service) CacheStats() cache.Stats { return s.blockCache().Stats() }

// ResetCounters zeroes service, cache and device counters (experiments).
func (s *Service) ResetCounters() {
	s.mu.Lock()
	s.stats = Stats{}
	s.mu.Unlock()
	s.groupCommits.Store(0)
	s.batchedForces.Store(0)
	s.adaptiveWaits.Store(0)
	s.pipelinedSeals.Store(0)
	for i := range s.batchHist {
		s.batchHist[i].Store(0)
	}
	s.blockCache().ResetStats()
	for _, v := range s.set.Volumes() {
		v.Dev.ResetStats()
	}
}

// SetCacheCapacity replaces the block cache with one bounded to the given
// number of blocks (negative = unbounded), used by the §4 cache-economics
// experiment. The staged tail block is restaged so the service remains
// readable.
func (s *Service) SetCacheCapacity(blocks int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if blocks == 0 {
		blocks = 4096
	} else if blocks < 0 {
		blocks = 0
	}
	s.cacheP.Store(cache.New(blocks, s.opt.Clock))
	if s.tailGlobal >= 0 {
		s.stageTailLocked(false)
	}
}

// FlushCache empties the block cache (the §3.3.1 no-caching worst case).
// The staged tail block, if any, is restored afterwards so the service
// remains readable.
func (s *Service) FlushCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blockCache().Flush()
	if s.tailGlobal >= 0 {
		s.stageTailLocked(false)
	}
}

// End returns the number of readable data blocks (sealed plus staged tail).
func (s *Service) End() int {
	return s.endShared()
}

func (s *Service) endLocked() int {
	if s.tailGlobal >= 0 {
		return s.tailGlobal + 1
	}
	if n := len(s.pipe); n > 0 {
		return s.pipe[n-1].global + 1
	}
	return s.sealedEnd
}

// DeviceStats sums the device counters across mounted volumes.
func (s *Service) DeviceStats() wodev.Stats {
	var out wodev.Stats
	for _, v := range s.set.Volumes() {
		st := v.Dev.Stats()
		out.Reads += st.Reads
		out.Appends += st.Appends
		out.Invalidations += st.Invalidations
		out.Seeks += st.Seeks
		out.Probes += st.Probes
	}
	return out
}

// LocateStats returns the cumulative entrymap locator counters.
func (s *Service) LocateStats() entrymap.LocateStats {
	s.locMu.Lock()
	defer s.locMu.Unlock()
	return s.loc.Stats
}

// ResetLocateStats zeroes the locator counters.
func (s *Service) ResetLocateStats() {
	s.locMu.Lock()
	defer s.locMu.Unlock()
	s.loc.Stats = entrymap.LocateStats{}
}

// locFindNext, locFindPrev and locFindByTime run the shared locator under
// locMu: the locator keeps LocateStats and the accumulator view must not be
// interleaved between concurrent searches. Each search (lock wait included)
// lands in the locate latency histogram when metrics are registered.
func (s *Service) locFindNext(id uint16, from int) (int, error) {
	if m := s.met(); m != nil {
		defer m.locateLat.ObserveSince(time.Now())
	}
	s.locMu.Lock()
	defer s.locMu.Unlock()
	return s.loc.FindNext(id, from)
}

func (s *Service) locFindPrev(id uint16, before int) (int, error) {
	if m := s.met(); m != nil {
		defer m.locateLat.ObserveSince(time.Now())
	}
	s.locMu.Lock()
	defer s.locMu.Unlock()
	return s.loc.FindPrev(id, before)
}

func (s *Service) locFindByTime(ts int64) (int, error) {
	if m := s.met(); m != nil {
		defer m.locateLat.ObserveSince(time.Now())
	}
	s.locMu.Lock()
	defer s.locMu.Unlock()
	return s.loc.FindByTime(ts)
}

// Close flushes the tail and stops the service. With an NVRAM tail the
// partial block stays staged (it survives restarts); without one it is
// sealed to the device, padding the remainder. The devices themselves are
// owned by the caller and remain open.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closedFlag.Load() {
		return nil
	}
	// A clean close with the checkpoint policy active emits a final
	// checkpoint covering everything written, so the next Open replays
	// (almost) nothing. The emit seals the tail itself.
	if s.opt.CheckpointInterval > 0 && s.endLocked() > s.ckptAt {
		if err := s.emitCheckpointLocked(); err != nil {
			return err
		}
	}
	if s.tailGlobal >= 0 {
		if s.opt.NVRAM != nil {
			if err := s.stageTailLocked(true); err != nil {
				s.stopSealerLocked()
				return err
			}
		} else {
			if err := s.sealTailLocked(false); err != nil {
				s.stopSealerLocked()
				return err
			}
		}
	}
	// Completion barrier: every in-flight pipelined seal reaches the device
	// (or its hard error surfaces here) before the service reports closed.
	err := s.drainPipeLocked()
	s.stopSealerLocked()
	s.closedFlag.Store(true)
	s.wakeTail()
	return err
}

// Crash simulates a power failure: the service is abandoned without
// flushing anything. Only NVRAM-staged and device-sealed state survives for
// a subsequent Open. The devices are left open for reuse by the test.
func (s *Service) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Stop the background sealer without draining: in-flight staged seals
	// are abandoned exactly where the power cut caught them (a device
	// write already underway may still land — indistinguishable from the
	// cut arriving a moment later). The wait is only so the sealer cannot
	// keep touching devices a test is about to hand to a new Open.
	s.stopSealerLocked()
	s.closedFlag.Store(true)
	s.wakeTail()
}

// Volumes returns the mounted volumes.
func (s *Service) Volumes() []*volume.Volume { return s.set.Volumes() }

// MountVolume brings a previously offline volume of this sequence online
// for reading ("previous volumes ... may be made available on demand,
// either automatically or manually", §2.1).
func (s *Service) MountVolume(dev wodev.Device) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closedFlag.Load() {
		return ErrClosed
	}
	v, err := volume.Mount(dev, s.nextTag)
	if err != nil {
		return err
	}
	if v.Hdr.Seq != s.set.Seq() {
		return volume.ErrSequenceMismatch
	}
	s.nextTag++
	return s.set.Add(v)
}

// UnmountVolume takes a non-active volume offline; its blocks become
// unreadable until it is mounted again.
func (s *Service) UnmountVolume(index uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.set.Remove(index)
	return err
}

// Catalog surface.

// CreateLog creates a log file at the given absolute path; the parent path
// must already exist ("/" for top-level log files). The new log file is a
// sublog of its parent (§2.1). The catalog record is logged durably before
// CreateLog returns.
func (s *Service) CreateLog(path string, perms uint16, owner string) (uint16, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closedFlag.Load() {
		return 0, ErrClosed
	}
	if len(path) == 0 || path[0] != '/' {
		return 0, fmt.Errorf("clio: %w: path %q must be absolute", catalog.ErrBadName, path)
	}
	dir, name := splitPath(path)
	parent, err := s.cat.Resolve(dir)
	if err != nil {
		return 0, err
	}
	s.awaitChainLocked()
	ts := s.nextTS(false)
	d, rec, err := s.cat.Create(parent, name, perms, owner, ts)
	if err != nil {
		return 0, err
	}
	if err := s.appendCatalogLocked(rec, ts); err != nil {
		return 0, err
	}
	return d.ID, nil
}

// Resolve maps an absolute path to a log-file id. Catalog lookups are served
// lock-free: the table synchronizes internally.
func (s *Service) Resolve(path string) (uint16, error) {
	return s.cat.Resolve(path)
}

// PathOf maps an id back to its absolute path.
func (s *Service) PathOf(id uint16) (string, error) {
	return s.cat.PathOf(id)
}

// List returns the sublog names beneath the given path, sorted.
func (s *Service) List(path string) ([]string, error) {
	id, err := s.cat.Resolve(path)
	if err != nil {
		return nil, err
	}
	return s.cat.List(id)
}

// Stat returns the catalog descriptor for a path.
func (s *Service) Stat(path string) (catalog.Descriptor, error) {
	id, err := s.cat.Resolve(path)
	if err != nil {
		return catalog.Descriptor{}, err
	}
	d, err := s.cat.Get(id)
	if err != nil {
		return catalog.Descriptor{}, err
	}
	return *d, nil
}

// SetPerms logs and applies a permissions change (§2.2: every attribute
// change is itself logged in the catalog log file).
func (s *Service) SetPerms(path string, perms uint16) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, err := s.cat.Resolve(path)
	if err != nil {
		return err
	}
	rec, err := s.cat.SetPerms(id, perms)
	if err != nil {
		return err
	}
	s.awaitChainLocked()
	return s.appendCatalogLocked(rec, s.nextTS(false))
}

// Retire closes a log file for further appends. Its entries remain readable
// until a compaction pass (Options.Cold) reclaims the space; without a cold
// tier they remain readable forever.
func (s *Service) Retire(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	id, err := s.cat.Resolve(path)
	if err != nil {
		return err
	}
	rec, err := s.cat.Retire(id)
	if err != nil {
		return err
	}
	s.awaitChainLocked()
	return s.appendCatalogLocked(rec, s.nextTS(false))
}

// splitPath separates an absolute path into its parent directory and final
// component ("/mail/smith" → "/mail", "smith").
func splitPath(path string) (dir, name string) {
	if path == "" {
		return "/", ""
	}
	last := -1
	for i := 0; i < len(path); i++ {
		if path[i] == '/' {
			last = i
		}
	}
	if last <= 0 {
		return "/", path[last+1:]
	}
	return path[:last], path[last+1:]
}

// nextTS returns a strictly increasing timestamp, charging the cost model
// when the timestamp is client-visible.
func (s *Service) nextTS(charge bool) int64 {
	ts := s.opt.Now()
	if ts <= s.lastTS {
		ts = s.lastTS + 1
	}
	s.lastTS = ts
	if charge {
		s.opt.Clock.ChargeTimestamp()
	}
	return ts
}
