package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"clio/internal/core"
	"clio/internal/faults"
	"clio/internal/server"
	"clio/internal/wodev"
)

// TestBackoffCarriedAcrossAddresses pins the failover pacing contract: when
// every address in the rotation is down, the backoff schedule keeps growing
// across the whole rotation instead of restarting at the base delay each
// time the client moves to the next address (which would turn an N-address
// client into an N-times-faster hammer on a down cluster).
func TestBackoffCarriedAcrossAddresses(t *testing.T) {
	// One live server for the initial dial, two dead addresses.
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	svc, err := core.New(dev, core.Options{BlockSize: 512, Degree: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := server.New(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	addrs := []string{ln.Addr().String()}
	for i := 0; i < 2; i++ {
		dead, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, dead.Addr().String())
		dead.Close()
	}

	var mu sync.Mutex
	var dialed []string
	var slept []time.Duration
	pol := faults.RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Multiplier:  2,
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
	}
	cl, err := DialContext(bg, addrs[0], Options{
		Addrs: addrs[1:],
		Retry: &pol,
		DialAddr: func(ctx context.Context, addr string) (net.Conn, error) {
			mu.Lock()
			dialed = append(dialed, addr)
			mu.Unlock()
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(bg); err != nil {
		t.Fatalf("ping with live server: %v", err)
	}

	// Take the whole cluster down and record what one failing call does.
	ln.Close()
	srv.Close()
	mu.Lock()
	dialed, slept = nil, nil
	mu.Unlock()
	if err := cl.Ping(bg); err == nil {
		t.Fatal("ping succeeded against a dead cluster")
	}

	mu.Lock()
	defer mu.Unlock()
	// Attempts 2..MaxAttempts each pause first, indexed by the cross-address
	// failure streak: the schedule must be Backoff(1), Backoff(2), ... with
	// no reset at an address boundary.
	want := make([]time.Duration, 0, pol.MaxAttempts-1)
	for i := 1; i < pol.MaxAttempts; i++ {
		want = append(want, pol.Backoff(i))
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %d times (%v), want %d pauses", len(slept), slept, len(want))
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("pause %d = %v, want %v (schedule %v)", i, slept[i], want[i], slept)
		}
		if i > 0 && slept[i] <= slept[i-1] && slept[i] != pol.MaxDelay {
			t.Errorf("backoff restarted mid-rotation: pause %d (%v) <= pause %d (%v)",
				i, slept[i], i-1, slept[i-1])
		}
	}
	// The failing call must actually have rotated through every address.
	seen := map[string]bool{}
	for _, a := range dialed {
		seen[a] = true
	}
	for _, a := range addrs {
		if !seen[a] {
			t.Errorf("address %s never dialed during failover (dials: %v)", a, dialed)
		}
	}
}

// TestErrNotLeaderType pins the typed redirect error: callers must be able
// to extract the leader address with errors.As from a wrapped chain.
func TestErrNotLeaderType(t *testing.T) {
	base := &ErrNotLeader{LeaderAddr: "10.0.0.7:4444"}
	wrapped := fmt.Errorf("append: %w", base)
	var nl *ErrNotLeader
	if !errors.As(wrapped, &nl) {
		t.Fatal("errors.As failed to extract *ErrNotLeader")
	}
	if nl.LeaderAddr != "10.0.0.7:4444" {
		t.Fatalf("LeaderAddr = %q", nl.LeaderAddr)
	}
	if msg := base.Error(); msg == "" {
		t.Fatal("empty error message")
	}
	if (&ErrNotLeader{}).Error() == "" {
		t.Fatal("empty no-leader message")
	}
}
