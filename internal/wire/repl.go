package wire

import (
	"errors"
	"fmt"
)

// Replication and promotion opcodes, an extension of the sessioned frame
// protocol (internal/server: u32 len | u8 op | u64 seq | u64 traceID |
// payload). They live above 0x40 so they can never collide with the client
// ops. The leader dials each follower and drives one replication stream per
// connection; the seq field of a streamed frame carries the stream position
// and the follower's per-frame response echoes it as a cumulative ack
// ("position p acked" means every frame at or below p has been durably
// applied).
const (
	// OpReplHello opens a replication stream (leader → follower). Payload:
	// ReplHello. The response payload is a ReplHelloResp carrying the
	// follower's per-device written extents, which the leader uses to send
	// only the missing suffix.
	OpReplHello = 0x40
	// OpReplWrite carries one sealed block image. Payload: ReplWrite.
	OpReplWrite = 0x41
	// OpReplInvalidate mirrors a block invalidation. Payload: ReplInvalidate.
	OpReplInvalidate = 0x42
	// OpReplTail carries an NVRAM-staged partial tail block. Payload:
	// ReplTail.
	OpReplTail = 0x43
	// OpReplTailClear mirrors an NVRAM clear (the tail was sealed). Payload:
	// ReplTailClear.
	OpReplTailClear = 0x44
	// OpReplAck replicates one session duplicate-suppression record, so a
	// promoted follower answers replayed requests with the original result.
	// Payload: ReplAck.
	OpReplAck = 0x45
	// OpReplSessions carries a full session-table snapshot during catch-up.
	// Payload: ReplSessions.
	OpReplSessions = 0x46
	// OpReplBase marks the end of catch-up: everything at or below the
	// carried stream position is covered by the state already sent. Payload:
	// ReplBase.
	OpReplBase = 0x47
	// OpReplReset orders the follower to discard a diverged device and
	// re-sync it from block zero. Payload: ReplReset.
	OpReplReset = 0x48
	// OpPromote orders a follower to promote itself to leader (sent by an
	// operator or failover controller, not by the old leader). Empty
	// payload; the response carries the new term (u64).
	OpPromote = 0x49
	// OpReplStatus asks any node for its replication role and progress.
	// Empty payload; the response is a ReplStatusResp.
	OpReplStatus = 0x4A
)

// Replication role codes (ReplStatusResp.Role).
const (
	RoleFollower = 0
	RoleLeader   = 1
)

// ErrReplPayload is wrapped by every replication payload decode failure.
var ErrReplPayload = errors.New("wire: malformed replication payload")

// ReplHello is the stream handshake sent by a leader.
type ReplHello struct {
	// Term is the leader's election term. A follower accepts streams only
	// from the highest term it has seen; a leader that learns of a higher
	// term steps down.
	Term uint64
	// Epoch is the cluster epoch: the server epoch minted by the first
	// leader and carried across promotions, so clients keep their sessions
	// through a failover.
	Epoch uint64
	// LeaderAddr is the address clients should be redirected to.
	LeaderAddr string
	// Shards and BlockSize describe the store geometry; a mismatch refuses
	// the stream.
	Shards    uint32
	BlockSize uint32
}

// ReplDevState is one device's extent in a hello response or status report.
type ReplDevState struct {
	Shard uint32
	Dev   uint32
	// Written is the device's written-block count.
	Written uint64
	// LastCRC is the CRC-32C of the highest written block (0 when none),
	// used to detect divergence: a follower whose last block differs from
	// the leader's copy cannot be caught up by a suffix.
	LastCRC uint32
}

// ReplHelloResp is the follower's answer to a ReplHello.
type ReplHelloResp struct {
	// Accept reports whether the stream may proceed; Reason explains a
	// refusal.
	Accept bool
	Reason string
	// Term is the highest term the follower has seen (so a stale leader
	// learns it must step down).
	Term uint64
	// Devs lists the follower's device extents, one entry per (shard, dev).
	Devs []ReplDevState
}

// ReplWrite is one replicated block write.
type ReplWrite struct {
	Shard uint32
	Dev   uint32
	Index uint64
	Data  []byte
}

// ReplInvalidate is one replicated block invalidation.
type ReplInvalidate struct {
	Shard uint32
	Dev   uint32
	Index uint64
}

// ReplTail is one replicated NVRAM tail staging.
type ReplTail struct {
	Shard  uint32
	Global uint64
	Image  []byte
}

// ReplTailClear is one replicated NVRAM clear.
type ReplTailClear struct {
	Shard uint32
}

// ReplAck is one replicated session duplicate-suppression record: the
// response the leader is about to return for (Session, Seq).
type ReplAck struct {
	Session uint64
	Seq     uint64
	Status  byte
	Resp    []byte
}

// ReplResp is one cached response inside a ReplSession.
type ReplResp struct {
	Seq    uint64
	Status byte
	Resp   []byte
}

// ReplSession is one session's replicable duplicate-suppression state.
type ReplSession struct {
	ID     uint64
	MaxSeq uint64
	Resps  []ReplResp
}

// ReplSessions is a session-table snapshot.
type ReplSessions struct {
	Sessions []ReplSession
}

// ReplBase marks the end of catch-up at the given stream position.
type ReplBase struct {
	Pos uint64
}

// ReplReset orders one device discarded and re-synced from scratch.
type ReplReset struct {
	Shard uint32
	Dev   uint32
}

// ReplStatusResp reports a node's replication role and progress.
type ReplStatusResp struct {
	Role       byte
	Term       uint64
	Epoch      uint64
	LeaderAddr string
	// Applied is the highest stream position this node has durably applied
	// (followers); Pos is the highest position a leader has enqueued and
	// Committed the highest position acked by a quorum.
	Applied   uint64
	Pos       uint64
	Committed uint64
	Devs      []ReplDevState
}

// maxReplDevs bounds the device lists a decoder will allocate for.
const maxReplDevs = 1 << 16

// replReader consumes a payload front to back with explicit bounds checks;
// every failure wraps ErrReplPayload, and no input can make it panic or
// allocate more than the payload's own length.
type replReader struct {
	buf []byte
}

func (r *replReader) fail(what string) error {
	return fmt.Errorf("%w: %s", ErrReplPayload, what)
}

func (r *replReader) uvarint(what string) (uint64, error) {
	v, n, err := Uvarint(r.buf)
	if err != nil {
		return 0, r.fail(what)
	}
	r.buf = r.buf[n:]
	return v, nil
}

func (r *replReader) u64(what string) (uint64, error) {
	v, err := Uint64(r.buf)
	if err != nil {
		return 0, r.fail(what)
	}
	r.buf = r.buf[8:]
	return v, nil
}

func (r *replReader) u32(what string) (uint32, error) {
	v, err := Uint32(r.buf)
	if err != nil {
		return 0, r.fail(what)
	}
	r.buf = r.buf[4:]
	return v, nil
}

func (r *replReader) byte(what string) (byte, error) {
	if len(r.buf) < 1 {
		return 0, r.fail(what)
	}
	b := r.buf[0]
	r.buf = r.buf[1:]
	return b, nil
}

func (r *replReader) bytes(what string) ([]byte, error) {
	n, err := r.uvarint(what)
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.buf)) {
		return nil, r.fail(what + " body")
	}
	out := make([]byte, n)
	copy(out, r.buf[:n])
	r.buf = r.buf[n:]
	return out, nil
}

func (r *replReader) str(what string) (string, error) {
	b, err := r.bytes(what)
	return string(b), err
}

func (r *replReader) devs() ([]ReplDevState, error) {
	n, err := r.uvarint("dev count")
	if err != nil {
		return nil, err
	}
	if n > maxReplDevs {
		return nil, r.fail("dev count range")
	}
	out := make([]ReplDevState, 0, min(int(n), len(r.buf)/4+1))
	for i := uint64(0); i < n; i++ {
		var d ReplDevState
		sh, err := r.uvarint("dev shard")
		if err != nil {
			return nil, err
		}
		dev, err := r.uvarint("dev ordinal")
		if err != nil {
			return nil, err
		}
		if d.Written, err = r.uvarint("dev written"); err != nil {
			return nil, err
		}
		if d.LastCRC, err = r.u32("dev crc"); err != nil {
			return nil, err
		}
		d.Shard, d.Dev = uint32(sh), uint32(dev)
		out = append(out, d)
	}
	return out, nil
}

func putDevs(b []byte, devs []ReplDevState) []byte {
	b = PutUvarint(b, uint64(len(devs)))
	for _, d := range devs {
		b = PutUvarint(b, uint64(d.Shard))
		b = PutUvarint(b, uint64(d.Dev))
		b = PutUvarint(b, d.Written)
		b = PutUint32(b, d.LastCRC)
	}
	return b
}

func putBytes(b, data []byte) []byte {
	b = PutUvarint(b, uint64(len(data)))
	return append(b, data...)
}

// Encode appends the hello's wire form.
func (h *ReplHello) Encode(b []byte) []byte {
	b = PutUint64(b, h.Term)
	b = PutUint64(b, h.Epoch)
	b = putBytes(b, []byte(h.LeaderAddr))
	b = PutUvarint(b, uint64(h.Shards))
	return PutUvarint(b, uint64(h.BlockSize))
}

// DecodeReplHello parses a ReplHello payload.
func DecodeReplHello(payload []byte) (*ReplHello, error) {
	r := &replReader{buf: payload}
	h := &ReplHello{}
	var err error
	if h.Term, err = r.u64("term"); err != nil {
		return nil, err
	}
	if h.Epoch, err = r.u64("epoch"); err != nil {
		return nil, err
	}
	if h.LeaderAddr, err = r.str("leader addr"); err != nil {
		return nil, err
	}
	sh, err := r.uvarint("shards")
	if err != nil {
		return nil, err
	}
	bs, err := r.uvarint("block size")
	if err != nil {
		return nil, err
	}
	if sh > maxReplDevs || bs > 1<<30 {
		return nil, r.fail("geometry range")
	}
	h.Shards, h.BlockSize = uint32(sh), uint32(bs)
	return h, nil
}

// Encode appends the hello response's wire form.
func (h *ReplHelloResp) Encode(b []byte) []byte {
	var acc byte
	if h.Accept {
		acc = 1
	}
	b = append(b, acc)
	b = putBytes(b, []byte(h.Reason))
	b = PutUint64(b, h.Term)
	return putDevs(b, h.Devs)
}

// DecodeReplHelloResp parses a ReplHelloResp payload.
func DecodeReplHelloResp(payload []byte) (*ReplHelloResp, error) {
	r := &replReader{buf: payload}
	h := &ReplHelloResp{}
	acc, err := r.byte("accept")
	if err != nil {
		return nil, err
	}
	h.Accept = acc != 0
	if h.Reason, err = r.str("reason"); err != nil {
		return nil, err
	}
	if h.Term, err = r.u64("term"); err != nil {
		return nil, err
	}
	if h.Devs, err = r.devs(); err != nil {
		return nil, err
	}
	return h, nil
}

// Encode appends the write's wire form.
func (w *ReplWrite) Encode(b []byte) []byte {
	b = PutUvarint(b, uint64(w.Shard))
	b = PutUvarint(b, uint64(w.Dev))
	b = PutUvarint(b, w.Index)
	return putBytes(b, w.Data)
}

// DecodeReplWrite parses a ReplWrite payload.
func DecodeReplWrite(payload []byte) (*ReplWrite, error) {
	r := &replReader{buf: payload}
	w := &ReplWrite{}
	sh, err := r.uvarint("shard")
	if err != nil {
		return nil, err
	}
	dev, err := r.uvarint("dev")
	if err != nil {
		return nil, err
	}
	if sh > maxReplDevs || dev > maxReplDevs {
		return nil, r.fail("shard range")
	}
	w.Shard, w.Dev = uint32(sh), uint32(dev)
	if w.Index, err = r.uvarint("index"); err != nil {
		return nil, err
	}
	if w.Data, err = r.bytes("data"); err != nil {
		return nil, err
	}
	return w, nil
}

// Encode appends the invalidation's wire form.
func (w *ReplInvalidate) Encode(b []byte) []byte {
	b = PutUvarint(b, uint64(w.Shard))
	b = PutUvarint(b, uint64(w.Dev))
	return PutUvarint(b, w.Index)
}

// DecodeReplInvalidate parses a ReplInvalidate payload.
func DecodeReplInvalidate(payload []byte) (*ReplInvalidate, error) {
	r := &replReader{buf: payload}
	w := &ReplInvalidate{}
	sh, err := r.uvarint("shard")
	if err != nil {
		return nil, err
	}
	dev, err := r.uvarint("dev")
	if err != nil {
		return nil, err
	}
	if sh > maxReplDevs || dev > maxReplDevs {
		return nil, r.fail("shard range")
	}
	w.Shard, w.Dev = uint32(sh), uint32(dev)
	if w.Index, err = r.uvarint("index"); err != nil {
		return nil, err
	}
	return w, nil
}

// Encode appends the tail staging's wire form.
func (t *ReplTail) Encode(b []byte) []byte {
	b = PutUvarint(b, uint64(t.Shard))
	b = PutUvarint(b, t.Global)
	return putBytes(b, t.Image)
}

// DecodeReplTail parses a ReplTail payload.
func DecodeReplTail(payload []byte) (*ReplTail, error) {
	r := &replReader{buf: payload}
	t := &ReplTail{}
	sh, err := r.uvarint("shard")
	if err != nil {
		return nil, err
	}
	if sh > maxReplDevs {
		return nil, r.fail("shard range")
	}
	t.Shard = uint32(sh)
	if t.Global, err = r.uvarint("global"); err != nil {
		return nil, err
	}
	if t.Image, err = r.bytes("image"); err != nil {
		return nil, err
	}
	return t, nil
}

// Encode appends the tail clear's wire form.
func (t *ReplTailClear) Encode(b []byte) []byte {
	return PutUvarint(b, uint64(t.Shard))
}

// DecodeReplTailClear parses a ReplTailClear payload.
func DecodeReplTailClear(payload []byte) (*ReplTailClear, error) {
	r := &replReader{buf: payload}
	sh, err := r.uvarint("shard")
	if err != nil {
		return nil, err
	}
	if sh > maxReplDevs {
		return nil, r.fail("shard range")
	}
	return &ReplTailClear{Shard: uint32(sh)}, nil
}

// Encode appends the ack record's wire form.
func (a *ReplAck) Encode(b []byte) []byte {
	b = PutUint64(b, a.Session)
	b = PutUint64(b, a.Seq)
	b = append(b, a.Status)
	return putBytes(b, a.Resp)
}

// DecodeReplAck parses a ReplAck payload.
func DecodeReplAck(payload []byte) (*ReplAck, error) {
	r := &replReader{buf: payload}
	a := &ReplAck{}
	var err error
	if a.Session, err = r.u64("session"); err != nil {
		return nil, err
	}
	if a.Seq, err = r.u64("seq"); err != nil {
		return nil, err
	}
	if a.Status, err = r.byte("status"); err != nil {
		return nil, err
	}
	if a.Resp, err = r.bytes("resp"); err != nil {
		return nil, err
	}
	return a, nil
}

// Encode appends the session snapshot's wire form.
func (s *ReplSessions) Encode(b []byte) []byte {
	b = PutUvarint(b, uint64(len(s.Sessions)))
	for _, ss := range s.Sessions {
		b = PutUint64(b, ss.ID)
		b = PutUint64(b, ss.MaxSeq)
		b = PutUvarint(b, uint64(len(ss.Resps)))
		for _, rr := range ss.Resps {
			b = PutUint64(b, rr.Seq)
			b = append(b, rr.Status)
			b = putBytes(b, rr.Resp)
		}
	}
	return b
}

// DecodeReplSessions parses a ReplSessions payload.
func DecodeReplSessions(payload []byte) (*ReplSessions, error) {
	r := &replReader{buf: payload}
	n, err := r.uvarint("session count")
	if err != nil {
		return nil, err
	}
	if n > uint64(len(payload)) { // each session costs ≥ 17 bytes
		return nil, r.fail("session count range")
	}
	out := &ReplSessions{}
	for i := uint64(0); i < n; i++ {
		var ss ReplSession
		if ss.ID, err = r.u64("session id"); err != nil {
			return nil, err
		}
		if ss.MaxSeq, err = r.u64("session maxseq"); err != nil {
			return nil, err
		}
		nr, err := r.uvarint("resp count")
		if err != nil {
			return nil, err
		}
		if nr > uint64(len(r.buf))+1 { // each resp costs ≥ 10 bytes
			return nil, r.fail("resp count range")
		}
		for j := uint64(0); j < nr; j++ {
			var rr ReplResp
			if rr.Seq, err = r.u64("resp seq"); err != nil {
				return nil, err
			}
			if rr.Status, err = r.byte("resp status"); err != nil {
				return nil, err
			}
			if rr.Resp, err = r.bytes("resp body"); err != nil {
				return nil, err
			}
			ss.Resps = append(ss.Resps, rr)
		}
		out.Sessions = append(out.Sessions, ss)
	}
	return out, nil
}

// Encode appends the base marker's wire form.
func (b *ReplBase) Encode(dst []byte) []byte {
	return PutUint64(dst, b.Pos)
}

// DecodeReplBase parses a ReplBase payload.
func DecodeReplBase(payload []byte) (*ReplBase, error) {
	r := &replReader{buf: payload}
	pos, err := r.u64("pos")
	if err != nil {
		return nil, err
	}
	return &ReplBase{Pos: pos}, nil
}

// Encode appends the reset order's wire form.
func (w *ReplReset) Encode(b []byte) []byte {
	b = PutUvarint(b, uint64(w.Shard))
	return PutUvarint(b, uint64(w.Dev))
}

// DecodeReplReset parses a ReplReset payload.
func DecodeReplReset(payload []byte) (*ReplReset, error) {
	r := &replReader{buf: payload}
	sh, err := r.uvarint("shard")
	if err != nil {
		return nil, err
	}
	dev, err := r.uvarint("dev")
	if err != nil {
		return nil, err
	}
	if sh > maxReplDevs || dev > maxReplDevs {
		return nil, r.fail("shard range")
	}
	return &ReplReset{Shard: uint32(sh), Dev: uint32(dev)}, nil
}

// Encode appends the status report's wire form.
func (s *ReplStatusResp) Encode(b []byte) []byte {
	b = append(b, s.Role)
	b = PutUint64(b, s.Term)
	b = PutUint64(b, s.Epoch)
	b = putBytes(b, []byte(s.LeaderAddr))
	b = PutUint64(b, s.Applied)
	b = PutUint64(b, s.Pos)
	b = PutUint64(b, s.Committed)
	return putDevs(b, s.Devs)
}

// DecodeReplStatusResp parses a ReplStatusResp payload.
func DecodeReplStatusResp(payload []byte) (*ReplStatusResp, error) {
	r := &replReader{buf: payload}
	s := &ReplStatusResp{}
	var err error
	if s.Role, err = r.byte("role"); err != nil {
		return nil, err
	}
	if s.Term, err = r.u64("term"); err != nil {
		return nil, err
	}
	if s.Epoch, err = r.u64("epoch"); err != nil {
		return nil, err
	}
	if s.LeaderAddr, err = r.str("leader addr"); err != nil {
		return nil, err
	}
	if s.Applied, err = r.u64("applied"); err != nil {
		return nil, err
	}
	if s.Pos, err = r.u64("pos"); err != nil {
		return nil, err
	}
	if s.Committed, err = r.u64("committed"); err != nil {
		return nil, err
	}
	if s.Devs, err = r.devs(); err != nil {
		return nil, err
	}
	return s, nil
}

// DecodeRepl parses any replication payload by opcode — the single entry
// point protocol handlers (and the fuzz harness) use, so every replication
// decoder shares the no-panic guarantee. Ops without a payload (OpPromote,
// OpReplStatus) decode to nil; unknown ops return an error.
func DecodeRepl(op byte, payload []byte) (any, error) {
	switch op {
	case OpReplHello:
		return DecodeReplHello(payload)
	case OpReplWrite:
		return DecodeReplWrite(payload)
	case OpReplInvalidate:
		return DecodeReplInvalidate(payload)
	case OpReplTail:
		return DecodeReplTail(payload)
	case OpReplTailClear:
		return DecodeReplTailClear(payload)
	case OpReplAck:
		return DecodeReplAck(payload)
	case OpReplSessions:
		return DecodeReplSessions(payload)
	case OpReplBase:
		return DecodeReplBase(payload)
	case OpReplReset:
		return DecodeReplReset(payload)
	case OpPromote, OpReplStatus:
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: unknown replication op %#x", ErrReplPayload, op)
	}
}

// IsReplOp reports whether op belongs to the replication extension.
func IsReplOp(op byte) bool { return op >= OpReplHello && op <= OpReplStatus }
