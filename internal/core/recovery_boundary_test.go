package core

import (
	"fmt"
	"testing"

	"clio/internal/entrymap"
	"clio/internal/wodev"
)

// entrymapEntriesIn returns the (level, boundary) pairs of all entrymap
// entries whose first fragment lies in data blocks [from, to).
func entrymapEntriesIn(t *testing.T, s *Service, from, to int) [][2]int {
	t.Helper()
	var out [][2]int
	for b := from; b < to; b++ {
		parsed, err := s.parseBlock(b)
		if err != nil {
			continue
		}
		for i, r := range parsed.Records {
			if r.LogID != entrymap.EntrymapID || r.Continued {
				continue
			}
			data, aerr := s.assemble(b, i, parsed)
			if aerr != nil {
				continue
			}
			e, derr := entrymap.Decode(data)
			if derr != nil {
				continue
			}
			out = append(out, [2]int{e.Level, e.Boundary})
		}
	}
	return out
}

// TestRecoveryLastBoundAtDegreeMultiples audits the post-recovery seed
//
//	s.lastBound = ((s.sealedEnd - 1) / s.opt.Degree) * s.opt.Degree
//
// at the suspicious points: sealedEnd an exact multiple of Degree, an exact
// multiple of Degree², and one past it. The site is CORRECT, and these
// tests pin why:
//
//   - Boundary kN is emitted when block kN *starts*, so a volume sealed at
//     exactly kN blocks has NOT yet emitted boundary kN — recovery must
//     seed lastBound = (k-1)N (which (kN-1)/N*N gives), so the next append
//     (starting block kN) emits it. Seeding kN would skip the boundary and
//     lose level-1 coverage for blocks [kN-N, kN).
//   - At sealedEnd = kN+1 the live writer already emitted boundary kN when
//     block kN began; (kN+1-1)/N*N = kN correctly marks it done, so the
//     next append emits nothing until block kN+N starts.
//   - The NVRAM-staged-tail case (tail block == sealedEnd) is handled
//     separately by restoreTail, which re-runs boundaries in
//     (lastBound, tail] and re-queues entries missing from the image.
func TestRecoveryLastBoundAtDegreeMultiples(t *testing.T) {
	const n = 4
	cases := []struct {
		name   string
		target int // sealed blocks at crash
		// entrymap entries that must appear in the blocks written by the
		// single post-recovery append (nil = none until a later boundary)
		emitted [][2]int
	}{
		// Sealed exactly at N: boundary N still owed; next append emits the
		// level-1 entry covering blocks [0, N).
		{"endN", n, [][2]int{{1, n}}},
		// Sealed exactly at N²: boundary N² still owed; next append emits
		// level 2 for [0, N²) then level 1 for [N²-N, N²) (higher levels
		// are written first).
		{"endN2", n * n, [][2]int{{2, n * n}, {1, n * n}}},
		// Sealed at N²+1: boundary N² was emitted before the crash (and is
		// on the device); nothing is owed until block N²+N starts.
		{"endN2plus1", n*n + 1, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &testClock{}
			opt := Options{BlockSize: 256, Degree: n, Now: clk.Now}
			dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 10})
			s, err := New(dev, opt)
			if err != nil {
				t.Fatal(err)
			}
			id := mustCreate(t, s, "/b")
			var want []string
			// Without NVRAM every forced append seals one padded block, so
			// the sealed count is steerable exactly.
			for s.End() < tc.target {
				p := fmt.Sprintf("x%03d", s.End())
				mustAppend(t, s, id, p, AppendOptions{Forced: true})
				want = append(want, p)
			}
			if s.End() != tc.target {
				t.Fatalf("overshot: sealed %d blocks, wanted exactly %d", s.End(), tc.target)
			}
			s2 := crashAndReopen(t, s, dev, opt)
			defer s2.Close()

			wantBound := ((tc.target - 1) / n) * n
			s2.mu.Lock()
			gotBound := s2.lastBound
			s2.mu.Unlock()
			if gotBound != wantBound {
				t.Fatalf("lastBound after recovery = %d, want %d", gotBound, wantBound)
			}

			// One post-recovery append: check exactly which entrymap
			// entries it emits.
			mustAppend(t, s2, id, "after", AppendOptions{Forced: true})
			want = append(want, "after")
			got := entrymapEntriesIn(t, s2, tc.target, s2.End())
			if fmt.Sprint(got) != fmt.Sprint(tc.emitted) {
				t.Errorf("entries emitted by next append = %v, want %v", got, tc.emitted)
			}
			if tc.target == n*n+1 {
				// The pre-crash blocks must already hold boundary N² at
				// levels 1 and 2 — that is what makes re-emitting wrong.
				pre := entrymapEntriesIn(t, s2, n*n, tc.target)
				if fmt.Sprint(pre) != fmt.Sprint([][2]int{{2, n * n}, {1, n * n}}) {
					t.Errorf("pre-crash boundary N² entries = %v", pre)
				}
			}

			if got := datas(readAll(t, s2, "/b")); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("read back %d entries, want %d", len(got), len(want))
			}
		})
	}
}
