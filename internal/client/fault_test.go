package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"syscall"
	"testing"
	"time"

	"clio/internal/core"
	"clio/internal/faults"
	"clio/internal/server"
	"clio/internal/wodev"
)

func quickNetRetry() *faults.RetryPolicy {
	return &faults.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond,
		MaxDelay: time.Microsecond, Sleep: func(time.Duration) {}}
}

// dropConn injects read failures into an otherwise working connection: the
// request reaches the server, but the response is lost — the classic
// retried-RPC ambiguity the session protocol resolves.
type dropConn struct {
	net.Conn
	mu        sync.Mutex
	failReads int
}

func (d *dropConn) FailNextRead() {
	d.mu.Lock()
	d.failReads++
	d.mu.Unlock()
}

func (d *dropConn) Read(p []byte) (int, error) {
	d.mu.Lock()
	fail := d.failReads > 0
	if fail {
		d.failReads--
	}
	d.mu.Unlock()
	if fail {
		return 0, syscall.ECONNRESET
	}
	return d.Conn.Read(p)
}

// faultHarness is a server reachable through a reconnecting dialer whose
// live connection the test can sabotage, and whose server the test can
// restart.
type faultHarness struct {
	mu   sync.Mutex
	srv  *server.Server
	svc  *core.Service
	last *dropConn
}

func newFaultHarness(t *testing.T) *faultHarness {
	t.Helper()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	now := int64(0)
	var nowMu sync.Mutex
	svc, err := core.New(dev, core.Options{
		BlockSize: 512, Degree: 8,
		Now: func() int64 { nowMu.Lock(); defer nowMu.Unlock(); now += 1000; return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &faultHarness{srv: server.New(svc), svc: svc}
	t.Cleanup(func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		h.srv.Close()
		svc.Close()
	})
	return h
}

func (h *faultHarness) dial(ctx context.Context) (net.Conn, error) {
	h.mu.Lock()
	srv := h.srv
	h.mu.Unlock()
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	dc := &dropConn{Conn: cConn}
	h.mu.Lock()
	h.last = dc
	h.mu.Unlock()
	return dc, nil
}

// restart replaces the server with a fresh instance (new epoch, no session
// state) over the same service, as a process restart would.
func (h *faultHarness) restart() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.srv.Close()
	h.srv = server.New(h.svc)
}

func (h *faultHarness) conn() *dropConn {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last
}

func (h *faultHarness) client(t *testing.T) *Client {
	t.Helper()
	cl, err := DialContext(bg, "", Options{Dialer: h.dial, Retry: quickNetRetry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestReconnectReplaysLostResponseOnce(t *testing.T) {
	h := newFaultHarness(t)
	cl := h.client(t)
	id, err := cl.CreateLog(bg, "/rc", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Append(bg, id, []byte("a"), AppendOptions{}); err != nil {
		t.Fatal(err)
	}

	// Lose the response to the next append: the request executes on the
	// server, the client reconnects and replays it under the same seq, and
	// the duplicate-suppression window returns the original result.
	h.conn().FailNextRead()
	ts, err := cl.Append(bg, id, []byte("b"), AppendOptions{})
	if err != nil || ts == 0 {
		t.Fatalf("replayed append: ts=%d, %v", ts, err)
	}
	if cl.Reconnects() != 2 {
		t.Fatalf("Reconnects = %d, want 2 (dial + one replay)", cl.Reconnects())
	}

	st, err := cl.Stats(bg)
	if err != nil {
		t.Fatal(err)
	}
	if st.EntriesAppended != 2 {
		t.Fatalf("EntriesAppended = %d, want 2 (no duplicate)", st.EntriesAppended)
	}
	cur, err := cl.OpenCursor(bg, "/rc")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for {
		e, err := cur.Next(bg)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(e.Data))
	}
	if fmt.Sprint(got) != "[a b]" {
		t.Fatalf("entries after replay: %v", got)
	}
}

func TestCursorSurvivesReconnect(t *testing.T) {
	h := newFaultHarness(t)
	cl := h.client(t)
	id, err := cl.CreateLog(bg, "/cur", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := cl.Append(bg, id, []byte(fmt.Sprintf("e%d", i)), AppendOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	cur, err := cl.OpenCursor(bg, "/cur")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cur.Next(bg); err != nil {
			t.Fatal(err)
		}
	}
	// The cursor's server-side state lives in the session, not the
	// connection: a dropped connection does not lose the position.
	h.conn().FailNextRead()
	e, err := cur.Next(bg)
	if err != nil || string(e.Data) != "e3" {
		t.Fatalf("Next across reconnect: %v %+v", err, e)
	}
}

func TestServerRestartMidAppendIsAmbiguous(t *testing.T) {
	h := newFaultHarness(t)
	cl := h.client(t)
	id, err := cl.CreateLog(bg, "/amb", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Append(bg, id, []byte("a"), AppendOptions{}); err != nil {
		t.Fatal(err)
	}

	// The response is lost AND the server restarts before the replay: the
	// new epoch means the duplicate-suppression window is gone, so the
	// client must refuse to replay the mutating request.
	h.conn().FailNextRead()
	h.restart()
	_, err = cl.Append(bg, id, []byte("b"), AppendOptions{})
	var amb *AmbiguousError
	if !errors.As(err, &amb) {
		t.Fatalf("append across restart: %v, want *AmbiguousError", err)
	}
	// The client remains usable on the new server.
	if err := cl.Ping(bg); err != nil {
		t.Fatalf("ping after ambiguity: %v", err)
	}
}

func TestServerRestartMidReadIsRetried(t *testing.T) {
	h := newFaultHarness(t)
	cl := h.client(t)
	if _, err := cl.CreateLog(bg, "/r", 0, ""); err != nil {
		t.Fatal(err)
	}
	// Reads are safe to replay across a restart: no ambiguity.
	h.conn().FailNextRead()
	h.restart()
	if _, err := cl.Resolve(bg, "/r"); err != nil {
		t.Fatalf("resolve across restart: %v", err)
	}
}

func TestDialTimeoutOnSilentServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() { // accept and say nothing
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	start := time.Now()
	_, err = DialOptions(ln.Addr().String(), Options{DialTimeout: 50 * time.Millisecond})
	if err == nil {
		t.Fatal("dial of a silent server succeeded")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("dial took %v, want ~50ms", d)
	}
}

func TestCallContextCancellation(t *testing.T) {
	h := newFaultHarness(t)
	cl := h.client(t)
	ctx, cancel := context.WithCancel(bg)
	go func() {
		time.Sleep(20 * time.Millisecond)
		// Stall the connection so the call blocks, then cancel.
		cancel()
	}()
	// Exhaust the pipe: no server reads are pending, so a huge write
	// blocks... instead simply issue calls until cancellation lands.
	for {
		if err := cl.Ping(ctx); err != nil {
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("canceled call returned %v", err)
			}
			return
		}
	}
}

func TestDegradedAppendSurfacesOverWire(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 12})
	now := int64(0)
	svc, err := core.New(dev, core.Options{
		BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(svc)
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	cl := New(cConn)
	t.Cleanup(func() { cl.Close(); srv.Close(); svc.Close() })

	id, err := cl.CreateLog(bg, "/deg", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Damage(dev.Written(), nil); err != nil {
		t.Fatal(err)
	}
	ts, err := cl.Append(bg, id, []byte("x"), AppendOptions{Forced: true})
	if !IsDegraded(err) {
		t.Fatalf("append over damaged block: %v, want degraded", err)
	}
	var d *DegradedError
	if !errors.As(err, &d) || d.Timestamp != ts || ts == 0 {
		t.Fatalf("DegradedError.Timestamp=%v, ts=%d", d, ts)
	}
	// The entry is durable despite the warning.
	cur, err := cl.OpenCursor(bg, "/deg")
	if err != nil {
		t.Fatal(err)
	}
	e, err := cur.Next(bg)
	if err != nil || string(e.Data) != "x" {
		t.Fatalf("degraded entry read back: %v", err)
	}
}
