package core

import (
	"fmt"

	"clio/internal/blockfmt"
	"clio/internal/cache"
	"clio/internal/catalog"
	"clio/internal/entrymap"
	"clio/internal/wire"
)

// RecoveryReport describes the work server initialization performed, for
// the Figure 4 experiments (§2.3.1 / §3.4).
type RecoveryReport struct {
	// SealedBlocks is the located end of the written portion.
	SealedBlocks int
	// EndProbes counts device reads used to find the end (binary search).
	EndProbes int64
	// EntrymapBlocksScanned counts raw blocks examined to reconstruct
	// missing entrymap information.
	EntrymapBlocksScanned int
	// EntrymapEntriesRead counts entrymap entries read back.
	EntrymapEntriesRead int
	// CatalogEntries counts replayed catalog records.
	CatalogEntries int
	// TailRestored reports whether an NVRAM-staged tail block was restored.
	TailRestored bool
	// BadBlocks lists the known corrupted block indices from the bad-block
	// log file.
	BadBlocks []int
	// CheckpointUsed reports whether recovery restored from an in-log
	// checkpoint instead of reconstructing from scratch.
	CheckpointUsed bool
	// BlocksReplayed counts the sealed blocks replayed after the
	// checkpoint; zero when CheckpointUsed is false.
	BlocksReplayed int
}

// LastRecovery returns the report from the service's Open.
func (s *Service) LastRecovery() RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// recover performs server initialization (§2.3.1):
//
//  1. locate the most recently written block (binary search if the device
//     cannot be queried directly);
//  2. examine recently-written blocks to reconstruct entrymap information
//     that was only in volatile memory at the crash;
//  3. read the catalog log file to rebuild the log-file table;
//
// plus, in this implementation, restoring the NVRAM-staged tail block and
// the bad-block list.
//
// When the checkpoint policy is active (Options.CheckpointInterval > 0),
// steps 2 and 3 restore from the newest valid in-log checkpoint instead and
// replay only the blocks after it, bounding reopen cost by the tail length
// rather than the volume size. A missing, torn or checksum-failed
// checkpoint falls back to the full path below — on write-once media an
// invalid checkpoint is garbage to skip, never corruption to repair.
func (s *Service) recover() error {
	probesBefore := s.DeviceStats().Probes
	end, err := s.set.GlobalEnd()
	if err != nil {
		return fmt.Errorf("clio: locate end of written portion: %w", err)
	}
	s.sealedEnd = end
	s.publishTail(nil) // entrymap reconstruction reads through the snapshot
	s.recovery.SealedBlocks = end
	s.recovery.EndProbes = s.DeviceStats().Probes - probesBefore

	if cp := s.findCheckpoint(end); cp != nil {
		err := s.restoreFromCheckpoint(cp, end)
		if err == nil {
			// Everything through end is now reflected in memory, so the next
			// checkpoint is owed only after CheckpointInterval *new* blocks.
			// (Using cp.coveredEnd here would make every idle close/reopen
			// cycle burn a block on a fresh checkpoint, since the previous
			// checkpoint's own blocks always sit past its coveredEnd.)
			s.ckptAt = end
			s.badBlocks = append([]int(nil), s.recovery.BadBlocks...)
			s.restoreLastTS()
			return nil
		}
		// The snapshot could not be applied: reset what the partial
		// restore touched and reconstruct from scratch.
		s.cat = catalog.NewTable()
		s.recovery = RecoveryReport{
			SealedBlocks: s.recovery.SealedBlocks,
			EndProbes:    s.recovery.EndProbes,
		}
		s.lastBound = 0
		s.lastTS = 0
	}

	// Step 2: reconstruct the entrymap accumulator from the sealed blocks.
	acc, rstats, err := entrymap.Reconstruct((*locatorSource)(s), s.opt.Degree, s.sealedEnd)
	if err != nil {
		return fmt.Errorf("clio: reconstruct entrymap state: %w", err)
	}
	s.acc = acc
	s.recovery.EntrymapBlocksScanned = rstats.BlocksScanned
	s.recovery.EntrymapEntriesRead = rstats.EntriesRead
	if s.sealedEnd > 0 {
		s.lastBound = ((s.sealedEnd - 1) / s.opt.Degree) * s.opt.Degree
	}

	// Restore the NVRAM-staged tail block, if it is current.
	if err := s.restoreTail(); err != nil {
		return err
	}

	// Step 3: replay the catalog log file.
	if err := s.replayCatalog(); err != nil {
		return err
	}

	// Load the bad-block list (§2.3.2).
	if err := s.replayBadBlocks(); err != nil {
		return err
	}
	s.badBlocks = append([]int(nil), s.recovery.BadBlocks...)

	// Re-arm the timestamp clock past anything already written.
	s.restoreLastTS()
	return nil
}

// restoreTail re-stages an NVRAM-held tail block whose position matches the
// device's written end, rebuilding the block builder from its records and
// re-running the boundary accumulator work the dead server had done.
func (s *Service) restoreTail() error {
	nv := s.opt.NVRAM
	if nv == nil {
		return nil
	}
	g, img, err := nv.Load()
	if err != nil {
		return fmt.Errorf("clio: nvram load: %w", err)
	}
	if img == nil {
		return nil
	}
	if g < s.sealedEnd {
		// Stale: the block was sealed to the device before the crash.
		return nv.Clear()
	}
	if g > s.sealedEnd {
		return fmt.Errorf("clio: nvram holds block %d but device end is %d (missing volume?)", g, s.sealedEnd)
	}
	parsed, err := blockfmt.Parse(img)
	if err != nil {
		// A torn NVRAM image: discard; the unsynced tail entries are lost.
		return nv.Clear()
	}
	if n := len(parsed.Records); n > 0 && parsed.Records[n-1].Continues {
		// The image ends mid-chain, which a consistent staging never does:
		// treat as torn.
		return nv.Clear()
	}
	b, err := blockfmt.NewBuilder(s.opt.BlockSize, uint32(g))
	if err != nil {
		return err
	}
	if fts := parsed.FirstTimestamp; fts != 0 {
		b.SetFirstTimestamp(fts)
	}
	b.SetFlags(parsed.Flags)
	s.tailIDs = make(map[uint16]bool)
	for _, r := range parsed.Records {
		rec := blockfmt.Record{
			LogID:     r.LogID,
			Form:      r.Form,
			AttrFlags: r.AttrFlags,
			Timestamp: r.Timestamp,
			Continued: r.Continued,
			Continues: r.Continues,
			Data:      r.Data,
			ExtraIDs:  r.ExtraIDs,
		}
		if err := b.Append(rec); err != nil {
			return fmt.Errorf("clio: rebuild staged tail: %w", err)
		}
		s.tailIDs[r.LogID] = true
		for _, ex := range r.ExtraIDs {
			s.tailIDs[ex] = true
		}
	}
	s.builder = b
	s.tailGlobal = g
	s.publishTail(img)
	s.blockCache().Put(cache.Key{Block: g}, img)
	s.recovery.TailRestored = true

	// Re-run the accumulator for boundaries the dead server had already
	// emitted when it started this block; entries it had physically written
	// are in the image, the rest must be queued again.
	var due []*entrymap.Entry
	n := s.opt.Degree
	for bnd := (s.lastBound/n + 1) * n; bnd <= g; bnd += n {
		due = append(due, s.acc.EntriesDue(bnd)...)
		s.lastBound = bnd
	}
	for _, e := range due {
		if !s.tailHasEntrymapEntry(parsed, e.Level, e.Boundary) {
			s.pendingDue = append(s.pendingDue, e)
		}
	}
	return nil
}

// tailHasEntrymapEntry reports whether the staged image already contains the
// entrymap entry for (level, boundary).
func (s *Service) tailHasEntrymapEntry(parsed *blockfmt.Parsed, level, boundary int) bool {
	for _, r := range parsed.Records {
		if r.LogID != entrymap.EntrymapID || r.Continued || r.Continues {
			continue
		}
		e, err := entrymap.Decode(r.Data)
		if err != nil {
			continue
		}
		if e.Level == level && e.Boundary == boundary {
			return true
		}
	}
	return false
}

// replayCatalog rebuilds the log-file table by reading the catalog log file
// from the beginning of the sequence.
func (s *Service) replayCatalog() error {
	return s.replayCatalogFrom(0)
}

// replayCatalogFrom applies the catalog records found in blocks at or after
// `from` (checkpoint recovery replays only the suffix past the snapshot).
func (s *Service) replayCatalogFrom(from int) error {
	b, err := s.loc.FindNext(entrymap.CatalogID, from)
	if err != nil {
		return err
	}
	for b >= 0 {
		parsed, perr := s.parseBlock(b)
		if perr == nil {
			for i, r := range parsed.Records {
				if r.LogID != entrymap.CatalogID || r.Continued {
					continue
				}
				data, aerr := s.assemble(b, i, parsed)
				if aerr != nil {
					continue // lost catalog record: the files it described
					// are recoverable only via their entries
				}
				rec, derr := catalog.DecodeRecord(data)
				if derr != nil {
					continue
				}
				if err := s.cat.Apply(rec); err != nil {
					return fmt.Errorf("clio: catalog replay: %w", err)
				}
				s.recovery.CatalogEntries++
			}
		}
		b, err = s.loc.FindNext(entrymap.CatalogID, b+1)
		if err != nil {
			return err
		}
	}
	return nil
}

// replayBadBlocks loads the bad-block log file (§2.3.2).
func (s *Service) replayBadBlocks() error {
	got, err := s.readBadBlocksFrom(0)
	if err != nil {
		return err
	}
	s.recovery.BadBlocks = append(s.recovery.BadBlocks, got...)
	return nil
}

// readBadBlocksFrom returns the bad-block indices logged in blocks at or
// after `from`.
func (s *Service) readBadBlocksFrom(from int) ([]int, error) {
	var out []int
	b, err := s.loc.FindNext(entrymap.BadBlockID, from)
	if err != nil {
		return nil, err
	}
	for b >= 0 {
		parsed, perr := s.parseBlock(b)
		if perr == nil {
			for i, r := range parsed.Records {
				if r.LogID != entrymap.BadBlockID || r.Continued {
					continue
				}
				data, aerr := s.assemble(b, i, parsed)
				if aerr != nil {
					continue
				}
				if idx, _, uerr := wire.Uvarint(data); uerr == nil {
					out = append(out, int(idx))
				}
			}
		}
		b, err = s.loc.FindNext(entrymap.BadBlockID, b+1)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// restoreLastTS arms the timestamp clock past every written timestamp by
// examining the newest readable blocks.
func (s *Service) restoreLastTS() {
	end := s.endLocked()
	const scanLimit = 64
	for b := end - 1; b >= 0 && b >= end-scanLimit; b-- {
		parsed, err := s.parseBlock(b)
		if err != nil {
			continue
		}
		max := parsed.FirstTimestamp
		for _, r := range parsed.Records {
			if r.Form == blockfmt.FormFull && r.Timestamp > max {
				max = r.Timestamp
			}
		}
		if max > s.lastTS {
			s.lastTS = max
		}
		return // the newest readable block suffices: timestamps are monotone
	}
}
