package core

import (
	"context"
	"errors"
	"fmt"

	"clio/internal/archive"
	"clio/internal/blockfmt"
	"clio/internal/cache"
	"clio/internal/entrymap"
	"clio/internal/volume"
	"clio/internal/wire"
	"clio/internal/wodev"
)

// locatorSource adapts the service's block storage to the entrymap locator's
// Source and RecoverSource interfaces. All methods read through the shared
// (lock-free) block path, so the locator can run without the writer lock;
// the accumulator is consulted under idxMu. Callers serialize the locator
// itself with locMu (or run single-threaded, as recovery does).
type locatorSource Service

func (ls *locatorSource) svc() *Service { return (*Service)(ls) }

// End implements entrymap.Source.
func (ls *locatorSource) End() int { return ls.svc().endShared() }

// EntryAt implements entrymap.Source and entrymap.RecoverSource: it reads
// the entrymap entry nominally due at the given boundary, scanning forward
// up to the displacement limit when the boundary block is unreadable or the
// entry was displaced by a fragment chain or a damaged block (§2.3.2).
// Entrymap entries are self-identifying (level, boundary), so the scan
// cannot mistake a neighbouring boundary's entry for the requested one.
// A nil result ("no information") makes the locator search conservatively,
// which keeps a race with the writer's boundary roll-up merely slower, never
// wrong.
func (ls *locatorSource) EntryAt(level, boundary int) (*entrymap.Entry, error) {
	s := ls.svc()
	end := s.endShared()
	limit := boundary + s.opt.DisplacementLimit
	for b := boundary; b <= limit && b < end; b++ {
		parsed, err := s.parseBlock(b)
		if err != nil {
			continue // unreadable: keep scanning forward
		}
		if b > boundary && parsed.Flags&blockfmt.FlagEntrymapBoundary == 0 {
			// Displaced entries always land in flagged blocks; skip the
			// unflagged block but keep scanning (a long fragment chain can
			// push the displaced entry several blocks past its boundary).
			continue
		}
		for i, rec := range parsed.Records {
			if rec.LogID != entrymap.EntrymapID || rec.Continued {
				continue
			}
			data, aerr := s.assemble(b, i, parsed)
			if aerr != nil {
				continue
			}
			e, derr := entrymap.Decode(data)
			if derr != nil {
				continue
			}
			if e.Level == level && e.Boundary == boundary {
				return e, nil
			}
		}
	}
	return nil, nil
}

// Pending implements entrymap.Source: the accumulator's in-progress bitmap,
// widened with the staged tail block's contents (the tail is readable but
// not yet noted in the accumulator — that happens at seal).
func (ls *locatorSource) Pending(level int, id uint16) wire.Bitmap {
	s := ls.svc()
	s.idxMu.Lock()
	live, _ := s.acc.Pending(level, id)
	// The accumulator mutates its bitmaps in place (NoteBlock, under idxMu)
	// and the locator reads the result after this call returns: hand out a
	// copy, never the live map.
	var bm wire.Bitmap
	if len(live) > 0 {
		bm = make(wire.Bitmap, len(live))
		copy(bm, live)
	}
	s.idxMu.Unlock()
	sn := s.snap()
	if level == 1 {
		n := s.opt.Degree
		grow := func() {
			if len(bm) < (n+7)/8 {
				eff := make(wire.Bitmap, (n+7)/8)
				copy(eff, bm)
				bm = eff
			}
		}
		// Pipelined seals are readable but, like the tail, not yet noted in
		// the accumulator (that happens when their device write completes).
		for i := range sn.pipe {
			if sn.pipe[i].ids[id] {
				grow()
				bm.Set(sn.pipe[i].global % n)
			}
		}
		if sn.tailGlobal >= 0 && sn.tailIDs[id] {
			grow()
			bm.Set(sn.tailGlobal % n)
		}
	}
	return bm
}

// BlockContains implements entrymap.Source. Fragments count: the entrymap
// marks every block holding any part of an entry.
func (ls *locatorSource) BlockContains(block int, id uint16) (bool, error) {
	parsed, err := ls.svc().parseBlock(block)
	if err != nil {
		return false, nil // unreadable blocks contribute nothing
	}
	for _, rec := range parsed.Records {
		if rec.LogID == id {
			return true, nil
		}
		for _, ex := range rec.ExtraIDs {
			if ex == id {
				return true, nil
			}
		}
	}
	return false, nil
}

// BlockFirstTS implements entrymap.Source.
func (ls *locatorSource) BlockFirstTS(block int) (int64, bool, error) {
	parsed, err := ls.svc().parseBlock(block)
	if err != nil {
		return 0, false, nil
	}
	return parsed.FirstTimestamp, true, nil
}

// BlockIDs implements entrymap.RecoverSource.
func (ls *locatorSource) BlockIDs(block int) ([]uint16, error) {
	parsed, err := ls.svc().parseBlock(block)
	if err != nil {
		return nil, nil // lost block: its entrymap info is simply absent
	}
	seen := make(map[uint16]bool)
	var out []uint16
	note := func(id uint16) {
		if id == entrymap.VolumeSeqID || id == entrymap.EntrymapID || seen[id] {
			return
		}
		seen[id] = true
		out = append(out, id)
	}
	for _, rec := range parsed.Records {
		note(rec.LogID)
		for _, ex := range rec.ExtraIDs {
			note(ex)
		}
	}
	return out, nil
}

// readBlock returns the raw image of a global data block, via the cache.
// It is safe without the writer lock: sealed blocks are immutable, the
// staged tail is served from the published snapshot, and cache, volume set
// and devices synchronize internally. Unreadable conditions (unwritten,
// invalidated, offline) surface as errors; damaged blocks surface later as
// parse errors.
func (s *Service) readBlock(global int) ([]byte, error) {
	key := cache.Key{Block: global}
	bc := s.blockCache()
	if img := bc.Lookup(key); img != nil {
		s.opt.Clock.ChargeCachedBlock()
		return img, nil
	}
	return s.readBlockMiss(global)
}

// readBlockMiss is readBlock after a cache miss: it serves the staged tail
// and pipelined seals from the published snapshot and reads everything else
// from the device, populating the cache either way.
func (s *Service) readBlockMiss(global int) ([]byte, error) {
	key := cache.Key{Block: global}
	bc := s.blockCache()
	sn := s.snap()
	if global == sn.tailGlobal {
		// The staged tail exists only in memory (and NVRAM); if the cache
		// evicted its image, re-publish the snapshot's copy.
		bc.Put(key, sn.tailImage)
		if s.snap() != sn {
			// The tail advanced while we were publishing: our image may
			// predate the seal, so drop it and let the next reader fetch
			// the durable block from the device.
			bc.Invalidate(key)
		}
		s.opt.Clock.ChargeCachedBlock()
		return sn.tailImage, nil
	}
	for i := range sn.pipe {
		if ps := &sn.pipe[i]; ps.global == global {
			// A pipelined seal awaiting its device write: serve the staged
			// image, with the same republication-race rule as the tail (a
			// slide can renumber in-flight blocks).
			bc.Put(key, ps.img)
			if s.snap() != sn {
				bc.Invalidate(key)
			}
			s.opt.Clock.ChargeCachedBlock()
			return ps.img, nil
		}
	}
	v, local, err := s.set.Locate(global)
	if err != nil {
		if errors.Is(err, volume.ErrOffline) {
			return s.readColdBlock(global)
		}
		return nil, err
	}
	buf := make([]byte, s.opt.BlockSize)
	s.opt.Clock.ChargeDeviceRead(s.opt.BlockSize)
	devIdx := v.DeviceBlock(local)
	// Transient faults are retried with backoff; mirrored devices (§5
	// footnote 11) additionally route around a silently corrupted primary
	// copy when a replica's copy still validates.
	if err := s.readDeviceBlock(v, devIdx, buf, blockfmt.Validate); err != nil {
		return nil, err
	}
	bc.Put(key, buf)
	s.opt.Clock.ChargeCachedBlock()
	return buf, nil
}

// readColdBlock serves a block of a demoted volume from the cold backend at
// archival latency, populating the block cache so a re-read of recently
// touched cold data is a hot cache hit. Blocks of volumes that are merely
// offline (unmounted, not demoted) stay unreadable.
func (s *Service) readColdBlock(global int) ([]byte, error) {
	view := s.compView()
	if view == nil {
		return nil, fmt.Errorf("clio: block %d: %w", global, volume.ErrOffline)
	}
	v := view.demotedAt(global)
	if v == nil {
		return nil, fmt.Errorf("clio: block %d: %w", global, volume.ErrOffline)
	}
	buf := make([]byte, s.opt.BlockSize)
	s.opt.Clock.ChargeColdFetch(s.opt.BlockSize)
	devBlock := (global - v.Start) + 1 // past the volume header
	if err := archive.ReadVolumeBlock(context.Background(), s.opt.Cold.Backend, v.Index, devBlock, buf); err != nil {
		return nil, err
	}
	s.coldFetches.Add(1)
	s.blockCache().Put(cache.Key{Block: global}, buf)
	return buf, nil
}

// validatedReader is implemented by mirrored devices.
type validatedReader interface {
	ReadValidated(idx int, dst []byte, valid func([]byte) bool) error
}

// decodedBlock is one block's interpreted form: its parse plus the derived
// per-record effective timestamps. For device-durable (hence immutable)
// blocks it is attached to the block's cache entry, so a warm read decodes
// each block once and every Entry.Data handed out is a subslice of the
// cache-owned image — the zero-copy read path.
type decodedBlock struct {
	p    *blockfmt.Parsed
	effs []int64
}

// decodeBlock returns the decoded form of a global data block, reusing a
// decode attached to the block's cache entry when present (lock-free, see
// readBlock).
func (s *Service) decodeBlock(global int) (*decodedBlock, error) {
	key := cache.Key{Block: global}
	bc := s.blockCache()
	img, dec := bc.LookupDecoded(key)
	if img != nil {
		s.opt.Clock.ChargeCachedBlock()
		if db, ok := dec.(*decodedBlock); ok {
			return db, nil
		}
	} else {
		var err error
		if img, err = s.readBlockMiss(global); err != nil {
			return nil, err
		}
	}
	p, err := blockfmt.Parse(img)
	if err != nil {
		return nil, err
	}
	db := &decodedBlock{p: p, effs: effectiveTimestamps(p)}
	if global < s.snap().sealedEnd {
		// Attach only for sealed, device-durable blocks: the staged tail and
		// pipelined seals are re-put as they change, and Attach's identity
		// check alone would still let a decode of a just-superseded tail
		// image linger until the next re-put. Sealed images never change, so
		// their decode is safe for the entry's whole lifetime.
		bc.Attach(key, img, db)
	}
	return db, nil
}

// parseBlock reads and decodes a global data block (lock-free, see
// readBlock).
func (s *Service) parseBlock(global int) (*blockfmt.Parsed, error) {
	db, err := s.decodeBlock(global)
	if err != nil {
		return nil, err
	}
	return db.p, nil
}

// assemble reassembles the full data of the entry whose first fragment is
// record idx of block `global` (already parsed as `parsed`). Fragmented
// entries continue as the first same-id continued record of each following
// block. A chain that runs off the readable end is torn (lost): ErrLost.
func (s *Service) assemble(global, idx int, parsed *blockfmt.Parsed) ([]byte, error) {
	rec := parsed.Records[idx]
	if !rec.Continues {
		return rec.Data, nil
	}
	out := append([]byte(nil), rec.Data...)
	id := rec.LogID
	end := s.endShared()
	for b := global + 1; ; b++ {
		if b >= end {
			return nil, ErrLost // torn chain: writer died mid-entry
		}
		p, err := s.parseBlock(b)
		if err != nil {
			if errors.Is(err, wodev.ErrInvalidated) {
				// The writer hit a damaged block here and slid the staged
				// contents to the next block (§2.3.2): the chain continues
				// past the invalidated block, it is not torn.
				continue
			}
			return nil, ErrLost // damaged or unwritten continuation block
		}
		found := false
		done := false
		for _, r := range p.Records {
			if r.LogID != id || !r.Continued {
				continue
			}
			out = append(out, r.Data...)
			found = true
			done = !r.Continues
			break
		}
		if !found {
			return nil, ErrLost // chain broken
		}
		if done {
			return out, nil
		}
	}
}
