package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// escapeLabel escapes a label value per the Prometheus text exposition
// format: backslash, double-quote and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// seconds renders a duration as a compact float number of seconds.
func seconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

func writeSample(w io.Writer, name, labels string, value string) error {
	var err error
	if labels == "" {
		_, err = fmt.Fprintf(w, "%s %s\n", name, value)
	} else {
		_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, labels, value)
	}
	return err
}

// joinLabels appends extra rendered labels (e.g. the `le` bound) to a
// canonical label key.
func joinLabels(key, extra string) string {
	if key == "" {
		return extra
	}
	if extra == "" {
		return key
	}
	return key + "," + extra
}

// WriteProm writes every registered family in the Prometheus text exposition
// format (version 0.0.4), families sorted by name, series in registration
// order. Histograms emit cumulative `_bucket{le=...}` samples plus `_sum`
// and `_count`, with bounds and sums rendered in seconds.
func (r *Registry) WriteProm(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		ser := make([]*series, 0, len(keys))
		for _, k := range keys {
			ser = append(ser, f.series[k])
		}
		collectors := append([]collectorFn(nil), f.collectors...)
		f.mu.Unlock()

		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range ser {
			if f.typ == TypeHistogram {
				counts, sum, n := s.hist.snapshot()
				var cum int64
				for i, c := range counts {
					cum += c
					bound := "+Inf"
					if i < len(s.hist.uppers) {
						bound = seconds(s.hist.uppers[i])
					}
					lbl := joinLabels(s.key, `le="`+bound+`"`)
					if err := writeSample(w, f.name+"_bucket", lbl, strconv.FormatInt(cum, 10)); err != nil {
						return err
					}
				}
				if err := writeSample(w, f.name+"_sum", s.key, seconds(time.Duration(sum))); err != nil {
					return err
				}
				if err := writeSample(w, f.name+"_count", s.key, strconv.FormatInt(n, 10)); err != nil {
					return err
				}
				continue
			}
			if err := writeSample(w, f.name, s.key, strconv.FormatInt(s.value(), 10)); err != nil {
				return err
			}
		}
		for _, collect := range collectors {
			var cerr error
			collect(func(labels []Label, value int64) {
				if cerr != nil {
					return
				}
				cerr = writeSample(w, f.name, labelKey(sortLabels(labels)), strconv.FormatInt(value, 10))
			})
			if cerr != nil {
				return cerr
			}
		}
	}
	return nil
}

// SnapshotMetric is one series in a JSON registry snapshot.
type SnapshotMetric struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value,omitempty"`
	// Histogram-only fields.
	Buckets []SnapshotBucket `json:"buckets,omitempty"`
	SumSec  float64          `json:"sum_seconds,omitempty"`
	Count   int64            `json:"count,omitempty"`
}

// SnapshotBucket is one cumulative histogram bucket in a JSON snapshot.
type SnapshotBucket struct {
	LE    float64 `json:"le"` // upper bound in seconds; +Inf encoded as 0 with Inf=true
	Inf   bool    `json:"inf,omitempty"`
	Count int64   `json:"count"`
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot returns every registered series as a flat list, for JSON dumps
// (cmd/experiments -metrics-out) and programmatic inspection.
func (r *Registry) Snapshot() []SnapshotMetric {
	var out []SnapshotMetric
	for _, f := range r.sortedFamilies() {
		f.mu.Lock()
		keys := append([]string(nil), f.order...)
		ser := make([]*series, 0, len(keys))
		for _, k := range keys {
			ser = append(ser, f.series[k])
		}
		collectors := append([]collectorFn(nil), f.collectors...)
		f.mu.Unlock()

		for _, s := range ser {
			m := SnapshotMetric{Name: f.name, Type: f.typ.String(), Labels: labelMap(s.labels)}
			if f.typ == TypeHistogram {
				counts, sum, n := s.hist.snapshot()
				var cum int64
				for i, c := range counts {
					cum += c
					b := SnapshotBucket{Count: cum}
					if i < len(s.hist.uppers) {
						b.LE = s.hist.uppers[i].Seconds()
					} else {
						b.Inf = true
					}
					m.Buckets = append(m.Buckets, b)
				}
				m.SumSec = time.Duration(sum).Seconds()
				m.Count = n
			} else {
				m.Value = s.value()
			}
			out = append(out, m)
		}
		for _, collect := range collectors {
			collect(func(labels []Label, value int64) {
				out = append(out, SnapshotMetric{
					Name: f.name, Type: f.typ.String(),
					Labels: labelMap(sortLabels(labels)), Value: value,
				})
			})
		}
	}
	return out
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
