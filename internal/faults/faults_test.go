package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

func TestClassifyExplicit(t *testing.T) {
	tr := New(Transient, "flaky")
	if got := Classify(tr); got != Transient {
		t.Fatalf("Classify(New(Transient)) = %v", got)
	}
	if got := Classify(fmt.Errorf("wrapped: %w", tr)); got != Transient {
		t.Fatalf("Classify(wrapped transient) = %v", got)
	}
	pe := WithClass(errors.New("media"), Permanent)
	if got := Classify(pe); got != Permanent {
		t.Fatalf("Classify(WithClass Permanent) = %v", got)
	}
	torn := New(Torn, "tail lost")
	if got := Classify(torn); got != Torn {
		t.Fatalf("Classify(Torn) = %v", got)
	}
	if WithClass(nil, Transient) != nil {
		t.Fatal("WithClass(nil) != nil")
	}
}

func TestClassifyInferred(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, Unknown},
		{io.EOF, Transient},
		{io.ErrUnexpectedEOF, Transient},
		{net.ErrClosed, Transient},
		{syscall.ECONNRESET, Transient},
		{syscall.ECONNREFUSED, Transient},
		{syscall.EPIPE, Transient},
		{&net.OpError{Op: "read", Err: syscall.ECONNRESET}, Transient},
		{errors.New("some other failure"), Permanent},
		{context.Canceled, Permanent},
		{context.DeadlineExceeded, Permanent},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	for c, want := range map[Class]string{
		Unknown: "unknown", Transient: "transient", Permanent: "permanent", Torn: "torn",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 8 * time.Millisecond,
		Multiplier: 2, Jitter: 0}
	want := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
		8 * time.Millisecond, 8 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffJitterDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: time.Second,
		Multiplier: 2, Jitter: 0.5, Seed: 42}
	for attempt := 1; attempt <= 6; attempt++ {
		a, b := p.Backoff(attempt), p.Backoff(attempt)
		if a != b {
			t.Fatalf("Backoff(%d) not deterministic: %v vs %v", attempt, a, b)
		}
		base := time.Millisecond * (1 << (attempt - 1))
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		if a < lo || a > hi {
			t.Errorf("Backoff(%d) = %v outside [%v, %v]", attempt, a, lo, hi)
		}
	}
	q := p
	q.Seed = 43
	diff := false
	for attempt := 1; attempt <= 6; attempt++ {
		if p.Backoff(attempt) != q.Backoff(attempt) {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical jitter schedules")
	}
}

func TestDoRetriesTransientOnly(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Multiplier: 2,
		MaxDelay: time.Second, Sleep: func(d time.Duration) { slept = append(slept, d) }}

	// Succeeds on third attempt.
	n := 0
	err := p.Do(func() error {
		n++
		if n < 3 {
			return New(Transient, "flap")
		}
		return nil
	})
	if err != nil || n != 3 {
		t.Fatalf("Do: err=%v attempts=%d, want nil/3", err, n)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}

	// Permanent error returns immediately, no sleep.
	slept = nil
	n = 0
	perm := errors.New("permanent")
	err = p.Do(func() error { n++; return perm })
	if !errors.Is(err, perm) || n != 1 || len(slept) != 0 {
		t.Fatalf("permanent: err=%v attempts=%d sleeps=%d", err, n, len(slept))
	}

	// Exhaustion wraps the last transient error.
	n = 0
	tr := New(Transient, "always")
	err = p.Do(func() error { n++; return tr })
	if !errors.Is(err, tr) || n != 4 {
		t.Fatalf("exhaustion: err=%v attempts=%d, want wrapped/4", err, n)
	}
	if Classify(err) != Transient {
		t.Fatalf("exhausted error lost its class: %v", Classify(err))
	}
}

func TestDoCtxCancelBetweenAttempts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: time.Millisecond,
		Sleep: func(time.Duration) {}}
	n := 0
	err := p.DoCtx(ctx, func() error {
		n++
		if n == 2 {
			cancel()
		}
		return New(Transient, "flap")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 2 {
		t.Fatalf("attempts = %d, want 2", n)
	}
}

func TestRegistryFireBudget(t *testing.T) {
	r := NewRegistry()
	boom := New(Transient, "boom")
	r.Enable("p", boom, 2)
	for i := 0; i < 2; i++ {
		if err := r.Fire("p"); !errors.Is(err, boom) {
			t.Fatalf("fire %d: %v", i, err)
		}
	}
	if err := r.Fire("p"); err != nil {
		t.Fatalf("budget exhausted but still firing: %v", err)
	}
	if r.Hits("p") != 3 || r.Fired("p") != 2 {
		t.Fatalf("hits=%d fired=%d, want 3/2", r.Hits("p"), r.Fired("p"))
	}

	r.Enable("p", boom, -1)
	for i := 0; i < 5; i++ {
		if err := r.Fire("p"); !errors.Is(err, boom) {
			t.Fatalf("unlimited fire %d: %v", i, err)
		}
	}
	r.Disable("p")
	if err := r.Fire("p"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	if err := r.Fire("anything"); err != nil {
		t.Fatalf("nil registry fired: %v", err)
	}
	if r.Hits("anything") != 0 || r.Fired("anything") != 0 {
		t.Fatal("nil registry reported counts")
	}
}

func TestRegistryCrashPoint(t *testing.T) {
	r := NewRegistry()
	r.EnableCrash("die", 1)
	func() {
		defer func() {
			v := recover()
			c, ok := v.(Crash)
			if !ok || c.Point != "die" {
				t.Fatalf("recovered %v, want Crash{die}", v)
			}
		}()
		r.Fire("die")
		t.Fatal("crash point did not panic")
	}()
	if err := r.Fire("die"); err != nil {
		t.Fatalf("crash budget exhausted but errored: %v", err)
	}
	if c := (Crash{Point: "x"}); c.Error() == "" {
		t.Fatal("Crash.Error empty")
	}
}
