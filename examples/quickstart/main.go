// Quickstart: create a sharded log store, write some entries, read them
// back forwards, backwards, and from a point in time — all through the
// uniform context-first Log interface.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"clio"
)

func main() {
	dir, err := os.MkdirTemp("", "clio-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A store directory holds the write-once volume files plus the NVRAM
	// sidecar staging each shard's current partial block. Shards: 2 lays
	// it out as two hash-partitioned volume sequences behind one
	// namespace; reopening with clio.OpenStore detects the count.
	store, err := clio.CreateStore(dir, clio.DirOptions{Shards: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	var lg clio.Log = store
	ctx := context.Background()

	// Log files live in a directory hierarchy; each is also a directory of
	// sublogs, and each routes to one shard by its root path segment.
	id, err := lg.CreateLog(ctx, "/notes", 0o644, "me")
	if err != nil {
		log.Fatal(err)
	}

	var midway int64
	for i := 1; i <= 6; i++ {
		ts, err := lg.Append(ctx, id, []byte(fmt.Sprintf("note #%d", i)),
			clio.AppendOptions{Timestamped: true, Forced: i%2 == 0})
		if err != nil {
			log.Fatal(err)
		}
		if i == 4 {
			midway = ts
		}
	}

	fmt.Println("forwards:")
	cur, err := lg.OpenCursor(ctx, "/notes")
	if err != nil {
		log.Fatal(err)
	}
	defer cur.Close()
	for {
		e, err := cur.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  %s\n", time.Unix(0, e.Timestamp).Format(time.RFC3339), e.Data)
	}

	fmt.Println("backwards from the end:")
	cur.SeekEnd(ctx)
	for i := 0; i < 2; i++ {
		e, err := cur.Prev(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", e.Data)
	}

	fmt.Println("from a point in time (note #4 onwards):")
	if err := cur.SeekTime(ctx, midway); err != nil {
		log.Fatal(err)
	}
	for {
		e, err := cur.Next(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", e.Data)
	}
}
