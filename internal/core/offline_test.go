package core

import (
	"fmt"
	"io"
	"testing"

	"clio/internal/blockfmt"

	"clio/internal/volume"
	"clio/internal/wodev"
)

// buildMultiVolume writes enough to span several small volumes and returns
// the devices in order.
func buildMultiVolume(t *testing.T, entries int) ([]*wodev.MemDevice, Options, uint16, []string) {
	t.Helper()
	devs := []*wodev.MemDevice{wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 24})}
	now := int64(0)
	opt := Options{
		BlockSize: 256, Degree: 4,
		Now: func() int64 { now += 1000; return now },
		Allocate: func(_ volume.SeqID, _ uint32, _ uint64, blockSize int) (wodev.Device, error) {
			d := wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: 24})
			devs = append(devs, d)
			return d, nil
		},
	}
	s, err := New(devs[0], opt)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.CreateLog("/span", 0o644, "owner")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateLog("/span/sub", 0, ""); err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < entries; i++ {
		p := fmt.Sprintf("payload-%03d-%s", i, "xxxxxxxxxxxxxxxxxxxx")
		if _, err := s.Append(id, []byte(p), AppendOptions{Forced: true}); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(devs) < 3 {
		t.Fatalf("only %d volumes; want >= 3", len(devs))
	}
	return devs, opt, id, want
}

func TestOpenWithOnlyNewestVolume(t *testing.T) {
	devs, opt, id, want := buildMultiVolume(t, 120)

	// Open with only the NEWEST volume: the catalog snapshot carried onto
	// it must reconstruct the log-file table (§2.1: only the newest volume
	// is assumed on-line).
	newest := devs[len(devs)-1]
	s, err := Open([]wodev.Device{newest}, opt)
	if err != nil {
		t.Fatalf("open newest-only: %v", err)
	}
	defer s.Close()
	got, err := s.Resolve("/span")
	if err != nil || got != id {
		t.Fatalf("Resolve after offline open: %d, %v", got, err)
	}
	if _, err := s.Resolve("/span/sub"); err != nil {
		t.Errorf("sublog lost: %v", err)
	}
	d, err := s.Stat("/span")
	if err != nil || d.Owner != "owner" || d.Perms != 0o644 {
		t.Errorf("snapshot descriptor: %+v, %v", d, err)
	}

	// Entries on the offline volumes are unreachable but the tail of the
	// log (on the newest volume) reads fine.
	cur, err := s.OpenCursor("/span")
	if err != nil {
		t.Fatal(err)
	}
	var visible []string
	for {
		e, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		visible = append(visible, string(e.Data))
	}
	if len(visible) == 0 || len(visible) >= len(want) {
		t.Fatalf("visible entries with offline volumes: %d of %d", len(visible), len(want))
	}
	// The visible entries are the final suffix.
	for i, v := range visible {
		if want[len(want)-len(visible)+i] != v {
			t.Fatalf("visible[%d] = %q", i, v)
		}
	}

	// New writes continue on the active volume.
	if _, err := s.Append(id, []byte("after-offline-open"), AppendOptions{Forced: true}); err != nil {
		t.Fatal(err)
	}

	// Mounting the older volumes on demand restores full history.
	for _, d := range devs[:len(devs)-1] {
		if err := s.MountVolume(d); err != nil {
			t.Fatalf("MountVolume: %v", err)
		}
	}
	cur2, _ := s.OpenCursor("/span")
	var all []string
	for {
		e, err := cur2.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, string(e.Data))
	}
	wantAll := append(append([]string{}, want...), "after-offline-open")
	if fmt.Sprint(all) != fmt.Sprint(wantAll) {
		t.Fatalf("after remount: %d vs %d entries", len(all), len(wantAll))
	}
}

func TestUnmountVolume(t *testing.T) {
	devs, opt, _, want := buildMultiVolume(t, 120)
	all := make([]wodev.Device, len(devs))
	for i, d := range devs {
		all[i] = d
	}
	s, err := Open(all, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Everything visible with all volumes mounted.
	if got := datas(readAll(t, s, "/span")); len(got) != len(want) {
		t.Fatalf("full mount: %d vs %d", len(got), len(want))
	}
	// Unmount volume 0: its entries disappear; unmounting the active
	// volume is refused.
	if err := s.UnmountVolume(0); err != nil {
		t.Fatal(err)
	}
	s.FlushCache()
	if got := datas(readAll(t, s, "/span")); len(got) >= len(want) {
		t.Errorf("unmount hid nothing: %d", len(got))
	}
	active := uint32(len(devs) - 1)
	if err := s.UnmountVolume(active); err == nil {
		t.Error("unmounted the active volume")
	}
	// Mount it back.
	if err := s.MountVolume(devs[0]); err != nil {
		t.Fatal(err)
	}
	if got := datas(readAll(t, s, "/span")); len(got) != len(want) {
		t.Errorf("after remount: %d vs %d", len(got), len(want))
	}
}

func TestMountRejectsForeignVolume(t *testing.T) {
	devs, opt, _, _ := buildMultiVolume(t, 60)
	s, err := Open([]wodev.Device{devs[len(devs)-1]}, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A volume from a different sequence.
	foreignDev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 24})
	now := int64(1)
	s2, err := New(foreignDev, Options{BlockSize: 256, Degree: 4,
		Now: func() int64 { now += 500; return now }})
	if err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if err := s.MountVolume(foreignDev); err == nil {
		t.Error("foreign volume mounted")
	}
}

func TestVolumeSealedFlagOnFinalBlock(t *testing.T) {
	devs, opt, _, _ := buildMultiVolume(t, 60)
	_ = opt
	// The final data block of every full (non-active) volume carries the
	// volume-sealed flag.
	for vi, d := range devs[:len(devs)-1] {
		buf := make([]byte, 256)
		last := d.Written() - 1
		if err := d.ReadBlock(last, buf); err != nil {
			t.Fatalf("vol %d: %v", vi, err)
		}
		p, err := blockfmt.Parse(buf)
		if err != nil {
			t.Fatalf("vol %d parse: %v", vi, err)
		}
		if p.Flags&blockfmt.FlagVolumeSealed == 0 {
			t.Errorf("vol %d final block lacks the volume-sealed flag", vi)
		}
	}
}
