// Package baseline implements the comparison points the paper argues
// against, so the evaluation can measure Clio's entrymap search tree against
// them on the same volumes:
//
//   - LinearLocator: the strawman of §2.1 — "a log server could locate the
//     entries that are members of a particular log file by examining every
//     entry in every block of the volume sequence. This, of course, would be
//     prohibitively expensive."
//   - ChainLocator: Swallow's scheme (§5) — each entry links only to the
//     previous version/entry, so locating by position or time from the end
//     walks one hop per entry.
//   - BinaryTreeLocator: the Daniels et al. distributed-logging scheme
//     (§5) — a binary tree over each log file's entries. "The performance of
//     this scheme is within a constant factor of ours (both schemes have
//     logarithmic performance ...), but our scheme requires significantly
//     fewer disk read operations, on average, to locate very distant log
//     entries."
//
// Each locator reports the number of block reads its on-disk structure
// would require; the experiments charge those reads under the same optical
// disk cost model as Clio's.
package baseline

import "sort"

// Occurrences is the ground truth for one log file: the sorted list of data
// blocks containing its entries. Experiments construct it from the workload
// (or by scanning the volume once).
type Occurrences []int

// rankBefore returns the index of the last occurrence < before, or -1.
func (o Occurrences) rankBefore(before int) int {
	return sort.SearchInts(o, before) - 1
}

// LinearLocator scans backwards block by block.
type LinearLocator struct {
	// End is the number of written data blocks.
	End int
}

// FindPrev returns the last block < before holding an entry, and the block
// reads a scan would cost: one read per examined block.
func (l *LinearLocator) FindPrev(occ Occurrences, before int) (block, reads int) {
	if before > l.End {
		before = l.End
	}
	i := occ.rankBefore(before)
	if i < 0 {
		return -1, before // scanned everything back to the start
	}
	return occ[i], before - occ[i]
}

// ChainLocator follows per-entry back-pointers (Swallow). Locating the k-th
// most recent entry costs k hops; each hop is a block read. Scanning
// *forwards* is impossible "without reading every subsequent block on the
// storage device" (§5), which ForwardScanReads quantifies.
type ChainLocator struct {
	End int
}

// FindKthPrev returns the block of the k-th most recent entry (k=1 is the
// newest) and the reads: one per hop along the chain.
func (c *ChainLocator) FindKthPrev(occ Occurrences, k int) (block, reads int) {
	if k < 1 || k > len(occ) {
		return -1, len(occ)
	}
	return occ[len(occ)-k], k
}

// ForwardScanReads is the cost of moving one step forward through an
// object history in Swallow: every subsequent block must be read.
func (c *ChainLocator) ForwardScanReads(fromBlock int) int {
	return c.End - fromBlock
}

// BinaryTreeLocator models the Daniels et al. structure: a balanced binary
// tree threaded through each log file's entries, so locating an entry by
// position or time walks a root-to-node path, one block read per node.
type BinaryTreeLocator struct {
	End int
}

// FindPrev locates the last block < before and counts the reads of a
// balanced binary search over the log's entries (the path from the tree's
// root to the target's rank).
func (b *BinaryTreeLocator) FindPrev(occ Occurrences, before int) (block, reads int) {
	target := occ.rankBefore(before)
	if target < 0 {
		// A miss still walks a full path.
		return -1, bstDepth(len(occ), 0)
	}
	return occ[target], bstDepth(len(occ), target)
}

// bstDepth returns the number of nodes visited to reach rank r in a
// perfectly balanced binary search tree over m entries.
func bstDepth(m, r int) int {
	if m <= 0 {
		return 0
	}
	lo, hi := 0, m
	d := 0
	for {
		mid := (lo + hi) / 2
		d++
		switch {
		case r == mid:
			return d
		case r < mid:
			hi = mid
		default:
			lo = mid + 1
		}
	}
}
