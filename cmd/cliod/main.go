// Command cliod runs the Clio log server: it opens (or creates) a
// file-backed log store and serves the log-file protocol over TCP — the
// stand-alone deployment of the paper's extended file server.
//
// Usage:
//
//	cliod -store /var/lib/clio [-listen :7846] [-create] [-shards N]
//	      [-volume-blocks N] [-checkpoint-interval N] [-admin :7847]
//	      [-slow-trace 100ms]
//
// A 1-shard store holds one file per log volume plus the NVRAM sidecar that
// stages the current partial block across restarts (§2.3.1). -create
// -shards N lays the store out as N hash-partitioned volume sequences
// (shard-K subdirectories, each with its own NVRAM sidecar) behind one
// namespace; reopening detects the shard count from the directory.
//
// -admin starts an HTTP endpoint serving /metrics (Prometheus text format),
// /statusz (JSON: volumes, tail state, session table), /tracez (recent and
// slow request traces) and /debug/pprof. Requests slower than -slow-trace
// are captured with their per-layer spans (server dispatch, group commit,
// device write).
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clio"
	"clio/internal/obs"
	"clio/internal/server"
)

func main() {
	store := flag.String("store", "", "store directory (required)")
	listen := flag.String("listen", ":7846", "TCP listen address")
	create := flag.Bool("create", false, "create a new store instead of opening one")
	shards := flag.Int("shards", 0, "hash partitions for -create (reopen detects; >0 asserts the count)")
	volBlocks := flag.Int("volume-blocks", 1<<20, "capacity of each volume file in blocks")
	blockSize := flag.Int("block-size", 1024, "block size in bytes")
	syncEvery := flag.Bool("sync", false, "fsync every sealed block")
	ckptInterval := flag.Int("checkpoint-interval", 0, "emit a recovery checkpoint every N sealed blocks per shard, and on clean shutdown (0 disables; recovery then reconstructs from scratch)")
	admin := flag.String("admin", "", "HTTP admin listen address (/metrics, /statusz, /tracez, /debug/pprof); empty disables")
	slowTrace := flag.Duration("slow-trace", 100*time.Millisecond, "requests at least this slow are kept in /tracez's slow ring (0 keeps everything)")
	flag.Parse()
	if *store == "" {
		log.Fatal("cliod: -store is required")
	}

	opts := clio.DirOptions{VolumeBlocks: *volBlocks, SyncEvery: *syncEvery, Shards: *shards}
	opts.BlockSize = *blockSize
	opts.CheckpointInterval = *ckptInterval
	var (
		st  *clio.Store
		err error
	)
	if *create {
		st, err = clio.CreateStore(*store, opts)
	} else {
		st, err = clio.OpenStore(*store, opts)
	}
	if err != nil {
		log.Fatalf("cliod: %v", err)
	}
	rep := st.LastRecovery()
	log.Printf("cliod: store %s open: %d shards, %d data blocks, %d catalog records, tails restored=%d, checkpoints used=%d/%d",
		*store, st.Shards(), rep.SealedBlocks, rep.CatalogEntries, rep.TailsRestored, rep.CheckpointsUsed, st.Shards())

	srv := server.NewStore(st)
	srv.Logf = log.Printf
	if *admin != "" {
		reg := obs.NewRegistry()
		st.RegisterMetrics(reg)
		srv.RegisterMetrics(reg)
		obs.RegisterProcessMetrics(reg)
		srv.Tracer = obs.NewTracer(256, *slowTrace)
		mux := obs.NewAdminMux(reg, srv.Tracer, func() any {
			return map[string]any{
				"shards": st.Status(),
				"server": srv.Status(),
			}
		})
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatalf("cliod: admin listen: %v", err)
		}
		log.Printf("cliod: admin on http://%s", aln.Addr())
		go func() {
			if err := http.Serve(aln, mux); err != nil {
				log.Printf("cliod: admin: %v", err)
			}
		}()
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("cliod: listen: %v", err)
	}
	log.Printf("cliod: serving on %s", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("cliod: shutting down")
		srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		log.Printf("cliod: serve: %v", err)
	}
	if err := st.Close(); err != nil {
		log.Printf("cliod: close: %v", err)
	}
}
