package obs

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	// Unsorted with a duplicate: NewHistogram must sort and dedup.
	h := NewHistogram([]time.Duration{10 * time.Millisecond, time.Millisecond, 10 * time.Millisecond})
	if len(h.uppers) != 2 || h.uppers[0] != time.Millisecond || h.uppers[1] != 10*time.Millisecond {
		t.Fatalf("uppers = %v", h.uppers)
	}

	h.Observe(0)                       // below first bound
	h.Observe(time.Millisecond)        // exactly on a bound: le-inclusive
	h.Observe(time.Millisecond + 1)    // just over
	h.Observe(10 * time.Millisecond)   // exactly on the last finite bound
	h.Observe(10*time.Millisecond + 1) // overflow

	counts, sum, n := h.snapshot()
	if want := []int64{2, 2, 1}; len(counts) != 3 ||
		counts[0] != want[0] || counts[1] != want[1] || counts[2] != want[2] {
		t.Errorf("per-bucket counts = %v, want %v", counts, want)
	}
	if n != 5 || h.Count() != 5 {
		t.Errorf("count = %d/%d, want 5", n, h.Count())
	}
	wantSum := int64(0 + time.Millisecond + time.Millisecond + 1 + 10*time.Millisecond + 10*time.Millisecond + 1)
	if sum != wantSum || h.Sum() != time.Duration(wantSum) {
		t.Errorf("sum = %d, want %d", sum, wantSum)
	}
}

func TestDefaultLatencyBuckets(t *testing.T) {
	if len(DefaultLatencyBuckets) != 12 {
		t.Fatalf("len = %d", len(DefaultLatencyBuckets))
	}
	if DefaultLatencyBuckets[0] != time.Microsecond {
		t.Errorf("first bucket = %v", DefaultLatencyBuckets[0])
	}
	for i := 1; i < len(DefaultLatencyBuckets); i++ {
		if DefaultLatencyBuckets[i] != 4*DefaultLatencyBuckets[i-1] {
			t.Errorf("bucket %d = %v, want 4x previous", i, DefaultLatencyBuckets[i])
		}
	}
}

func TestNilReceiversNoOp(t *testing.T) {
	var h *Histogram
	h.Observe(time.Second)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram reported observations")
	}
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter reported a value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Error("nil gauge reported a value")
	}
	var tr *Trace
	tr.Span("x")()
	tr.Add(Span{Name: "y"})
	if tr.Spans() != nil {
		t.Error("nil trace reported spans")
	}
	var tc *Tracer
	if tc.Start(1, "op") != nil {
		t.Error("nil tracer started a trace")
	}
	tc.Finish(nil)
	if tc.Recent() != nil || tc.Slow() != nil {
		t.Error("nil tracer reported traces")
	}
}

func TestRegistryIdempotentAndTyped(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", "X.", L("op", "a"))
	b := reg.Counter("x_total", "X.", L("op", "a"))
	if a != b {
		t.Error("re-registering the same series returned a new counter")
	}
	if reg.Counter("x_total", "X.", L("op", "b")) == a {
		t.Error("different labels shared a series")
	}
	defer func() {
		if recover() == nil {
			t.Error("redefining x_total as a gauge did not panic")
		}
	}()
	reg.Gauge("x_total", "X.")
}

func TestConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("conc_total", "C.")
	g := reg.Gauge("conc_gauge", "G.")
	h := reg.Histogram("conc_seconds", "H.", nil)

	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
				// Concurrent re-registration must return the same series.
				if reg.Counter("conc_total", "C.") != c {
					panic("series identity lost under concurrency")
				}
			}
		}()
	}
	// Scrape while recording: must not race or tear.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			reg.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
}

func TestCollectorFunc(t *testing.T) {
	reg := NewRegistry()
	reg.CollectorFunc("dyn_total", "Dyn.", func(add func(labels []Label, value int64)) {
		add([]Label{L("point", "seal")}, 3)
		add([]Label{L("point", "read")}, 1)
	})
	snap := reg.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d series, want 2", len(snap))
	}
	if snap[0].Labels["point"] != "seal" || snap[0].Value != 3 {
		t.Errorf("series 0 = %+v", snap[0])
	}
	if snap[1].Labels["point"] != "read" || snap[1].Value != 1 {
		t.Errorf("series 1 = %+v", snap[1])
	}
}
