package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"clio/internal/wire"
)

// NVRAM models the battery-backed RAM of §2.3.1: small rewriteable
// non-volatile storage holding the current partial tail block so that
// frequent forced writes need not seal (and pad) a write-once block each
// time. Its contents survive crashes; Open restores a staged block whose
// position matches the device's written end.
type NVRAM interface {
	// Store persists the staged tail block image for the given global
	// data-block index, replacing any previous image.
	Store(global int, image []byte) error
	// Load returns the staged image, or (0, nil, nil) when none is staged.
	Load() (global int, image []byte, err error)
	// Clear discards the staged image (the block was sealed to the device).
	Clear() error
}

// StagingNVRAM extends NVRAM with slots for fully sealed block images
// waiting on their asynchronous device write. This is the NVLog-style
// widening of the §2.3.1 tail: the pipelined sealer makes a batch durable
// by staging its sealed image here (fast, rewriteable) and acks the force
// immediately, while the write-once device write proceeds in the
// background. A crash between the two replays the staged images at
// recovery, so an acked force never depends on the device write having
// completed. The pipeline engages only when the configured NVRAM
// implements this interface; otherwise seals stay synchronous.
type StagingNVRAM interface {
	NVRAM
	// StoreSealed persists a sealed block image keyed by the global
	// data-block index it was sealed at, replacing any previous image under
	// that key.
	StoreSealed(global int, image []byte) error
	// DropSealed discards the staged image for the given key, if any.
	DropSealed(global int) error
	// LoadSealed returns all staged sealed images (any order; the caller
	// sorts by global). Torn stores are skipped, matching Load.
	LoadSealed() ([]int, [][]byte, error)
}

// MemNVRAM is an in-process NVRAM simulation. Because battery-backed RAM
// survives power failures, tests model a crash by reusing the same MemNVRAM
// across a Crash/Open pair while discarding everything else.
type MemNVRAM struct {
	mu     sync.Mutex
	global int
	image  []byte
	sealed map[int][]byte
}

// NewMemNVRAM returns an empty NVRAM.
func NewMemNVRAM() *MemNVRAM { return &MemNVRAM{} }

// Store implements NVRAM.
func (m *MemNVRAM) Store(global int, image []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.global = global
	m.image = append(m.image[:0], image...)
	return nil
}

// Load implements NVRAM.
func (m *MemNVRAM) Load() (int, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.image == nil {
		return 0, nil, nil
	}
	out := make([]byte, len(m.image))
	copy(out, m.image)
	return m.global, out, nil
}

// Clear implements NVRAM.
func (m *MemNVRAM) Clear() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.image = nil
	m.global = 0
	return nil
}

// StoreSealed implements StagingNVRAM.
func (m *MemNVRAM) StoreSealed(global int, image []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sealed == nil {
		m.sealed = make(map[int][]byte)
	}
	m.sealed[global] = append([]byte(nil), image...)
	return nil
}

// DropSealed implements StagingNVRAM.
func (m *MemNVRAM) DropSealed(global int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.sealed, global)
	return nil
}

// LoadSealed implements StagingNVRAM.
func (m *MemNVRAM) LoadSealed() ([]int, [][]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var globals []int
	var images [][]byte
	for g, img := range m.sealed {
		globals = append(globals, g)
		images = append(images, append([]byte(nil), img...))
	}
	return globals, images, nil
}

// FileNVRAM persists the staged tail block in a small sidecar file, giving
// file-backed deployments the same crash durability the paper gets from
// battery-backed RAM. The file layout is: global(u64) imageLen(u32) image
// crc(u32); a torn write is detected by the checksum and treated as empty.
// Recovery checkpoints (see checkpoint.go) apply the same torn-write rule
// to entries on the write-once medium itself: anything that fails its
// trailing checksum is treated as never written.
type FileNVRAM struct {
	mu   sync.Mutex
	path string
}

// NewFileNVRAM returns an NVRAM backed by the given sidecar file.
func NewFileNVRAM(path string) *FileNVRAM { return &FileNVRAM{path: path} }

// Store implements NVRAM. The image is written to a temp file and renamed,
// so a crash mid-store preserves the previous staging.
func (f *FileNVRAM) Store(global int, image []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	buf := wire.PutUint64(nil, uint64(global))
	buf = wire.PutUint32(buf, uint32(len(image)))
	buf = append(buf, image...)
	buf = wire.PutUint32(buf, wire.Checksum(buf))
	tmp := f.path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, f.path)
}

// Load implements NVRAM.
func (f *FileNVRAM) Load() (int, []byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	buf, err := os.ReadFile(f.path)
	if os.IsNotExist(err) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, err
	}
	if len(buf) < 16 {
		return 0, nil, nil
	}
	body, crcBytes := buf[:len(buf)-4], buf[len(buf)-4:]
	crc, _ := wire.Uint32(crcBytes)
	if wire.Checksum(body) != crc {
		return 0, nil, nil // torn store: treat as empty
	}
	g, _ := wire.Uint64(body)
	n, _ := wire.Uint32(body[8:])
	img := body[12:]
	if int(n) != len(img) {
		return 0, nil, fmt.Errorf("clio: nvram file %s inconsistent", f.path)
	}
	out := make([]byte, len(img))
	copy(out, img)
	return int(g), out, nil
}

// Clear implements NVRAM.
func (f *FileNVRAM) Clear() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	err := os.Remove(f.path)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// sealedPath names the per-image sidecar for a staged sealed block.
func (f *FileNVRAM) sealedPath(global int) string {
	return f.path + fmt.Sprintf(".s%08d", global)
}

// StoreSealed implements StagingNVRAM: same CRC-framed tmp+rename layout as
// Store, one sidecar file per in-flight seal.
func (f *FileNVRAM) StoreSealed(global int, image []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	buf := wire.PutUint64(nil, uint64(global))
	buf = wire.PutUint32(buf, uint32(len(image)))
	buf = append(buf, image...)
	buf = wire.PutUint32(buf, wire.Checksum(buf))
	path := f.sealedPath(global)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// DropSealed implements StagingNVRAM.
func (f *FileNVRAM) DropSealed(global int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	err := os.Remove(f.sealedPath(global))
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

// LoadSealed implements StagingNVRAM. Torn sidecars (crash mid-StoreSealed)
// are skipped: the seal they staged was never acked, because the ack
// happens only after StoreSealed returns.
func (f *FileNVRAM) LoadSealed() ([]int, [][]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	matches, err := filepath.Glob(f.path + ".s*")
	if err != nil {
		return nil, nil, err
	}
	var globals []int
	var images [][]byte
	for _, path := range matches {
		if strings.HasSuffix(path, ".tmp") {
			continue
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, nil, err
		}
		if len(buf) < 16 {
			continue
		}
		body, crcBytes := buf[:len(buf)-4], buf[len(buf)-4:]
		crc, _ := wire.Uint32(crcBytes)
		if wire.Checksum(body) != crc {
			continue // torn store: never acked, safe to drop
		}
		g, _ := wire.Uint64(body)
		n, _ := wire.Uint32(body[8:])
		img := body[12:]
		if int(n) != len(img) {
			return nil, nil, fmt.Errorf("clio: nvram sidecar %s inconsistent", path)
		}
		globals = append(globals, int(g))
		images = append(images, append([]byte(nil), img...))
	}
	return globals, images, nil
}
