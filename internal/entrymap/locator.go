package entrymap

import (
	"sort"

	"clio/internal/wire"
)

// Source is the read-side view the Locator searches over. It is implemented
// by the core service (backed by the block cache and the writer's in-memory
// accumulator) and by test fakes.
type Source interface {
	// End returns the number of readable data blocks: sealed blocks plus the
	// staged tail block, if any.
	End() int
	// EntryAt returns the entrymap entry of the given level nominally due at
	// the given boundary block. Implementations handle displaced entries
	// (§2.3.2). A (nil, nil) return means the entry is missing — the caller
	// falls back to searching lower levels.
	EntryAt(level, boundary int) (*Entry, error)
	// Pending returns the writer's in-memory bitmap for the given level's
	// in-progress span, or nil when the log file has no entries there.
	Pending(level int, id uint16) wire.Bitmap
	// BlockContains reports whether the given data block holds at least one
	// entry (or fragment) of the log file. Used only when entrymap
	// information is missing; unreadable blocks report false.
	BlockContains(block int, id uint16) (bool, error)
	// BlockFirstTS returns the footer timestamp of the block's first entry;
	// ok is false for unreadable blocks.
	BlockFirstTS(block int) (ts int64, ok bool, err error)
}

// LocateStats counts the work a locate performed, for the Figure 3 / Table 1
// experiments.
type LocateStats struct {
	// EntriesExamined counts entrymap log entries decoded and inspected.
	EntriesExamined int
	// PendingExamined counts in-memory (accumulator) bitmap inspections.
	PendingExamined int
	// RawScans counts data blocks scanned directly because entrymap
	// information was missing.
	RawScans int
	// TimestampReads counts block footers read during a time search.
	TimestampReads int
}

// Locator searches the entrymap tree.
type Locator struct {
	src Source
	n   int
	// Stats accumulates across calls; callers reset it between measurements.
	Stats LocateStats
}

// NewLocator returns a locator of degree n over src.
func NewLocator(src Source, n int) (*Locator, error) {
	if n < MinDegree || n > MaxDegree {
		return nil, ErrDegree
	}
	return &Locator{src: src, n: n}, nil
}

// bitmapAt fetches the bitmap covering the level-`level` span starting at
// spanStart for id. known=false means entrymap information for the span is
// unavailable and the caller must search lower levels conservatively.
func (l *Locator) bitmapAt(level, spanStart int, id uint16, end int) (bm wire.Bitmap, known bool, err error) {
	bm, known, _, err = l.bitmapAtP(level, spanStart, id, end)
	return bm, known, err
}

// bitmapAtP additionally reports whether the span was the in-progress
// partial span (answered from the accumulator rather than a written entry).
func (l *Locator) bitmapAtP(level, spanStart int, id uint16, end int) (bm wire.Bitmap, known, partial bool, err error) {
	span := pow(l.n, level)
	boundary := spanStart + span
	if boundary < end {
		e, err := l.src.EntryAt(level, boundary)
		if err != nil {
			return nil, false, false, err
		}
		if e == nil {
			return nil, false, false, nil
		}
		l.Stats.EntriesExamined++
		return e.Get(id), true, false, nil
	}
	// The span is still in progress (or its boundary block is the staged
	// tail): the writer's accumulator is authoritative.
	l.Stats.PendingExamined++
	bm = l.src.Pending(level, id)
	if level >= 2 {
		// The accumulator's level-L bitmap only covers child spans whose
		// entries have been emitted. The child span containing the write
		// point has not rolled up yet: synthesize its bit from the lower
		// levels' pending state.
		if l.pendingBelow(level-1, id) {
			childSpan := span / l.n
			gCur := (end - 1 - spanStart) / childSpan
			if gCur >= 0 && gCur < l.n {
				eff := make(wire.Bitmap, (l.n+7)/8)
				copy(eff, bm)
				eff.Set(gCur)
				bm = eff
			}
		}
	}
	return bm, true, true, nil
}

// pendingBelow reports whether id has any entry recorded in the pending
// spans of levels 1..lvl.
func (l *Locator) pendingBelow(lvl int, id uint16) bool {
	for i := lvl; i >= 1; i-- {
		if bm := l.src.Pending(i, id); bm != nil && !bm.Empty() {
			return true
		}
	}
	return false
}

// FindPrev returns the greatest data-block index < before containing at
// least one entry (or fragment) of log file id, or -1 if there is none.
func (l *Locator) FindPrev(id uint16, before int) (int, error) {
	end := l.src.End()
	if before > end {
		before = end
	}
	if before <= 0 {
		return -1, nil
	}
	low := before // invariant: no entries of id in [low, before)
	for level := 1; ; {
		span := pow(l.n, level)
		childSpan := span / l.n
		spanStart := ((low - 1) / span) * span
		gLow := (low - spanStart + childSpan - 1) / childSpan // first group at/above low
		bm, known, partial, err := l.bitmapAtP(level, spanStart, id, end)
		if err != nil {
			return -1, err
		}
		if known {
			for g := bm.LastSet(gLow); g >= 0; g = bm.LastSet(g) {
				if level == 1 {
					return spanStart + g, nil
				}
				r, err := l.descendPrev(id, level-1, spanStart+g*childSpan, end)
				if err != nil {
					return -1, err
				}
				if r >= 0 {
					return r, nil
				}
			}
		} else {
			for g := gLow - 1; g >= 0; g-- {
				r, err := l.probePrev(id, level, spanStart, g, end)
				if err != nil {
					return -1, err
				}
				if r >= 0 {
					return r, nil
				}
			}
		}
		if spanStart == 0 {
			return -1, nil
		}
		low = spanStart
		// A miss in the in-progress partial span was answered from memory;
		// the adjacent *written* span at the same level is checked next
		// (§3.3.1's accounting: the first entrymap log entry read is the
		// level-1 entry just below the write point). A miss in a written
		// span ascends.
		if !partial {
			level++
		}
	}
}

// descendPrev returns the last block containing id within the level-`level`
// span starting at spanStart, all of which is in scope, or -1.
func (l *Locator) descendPrev(id uint16, level, spanStart, end int) (int, error) {
	if level == 0 {
		// A single block vouched for by a parent bitmap; verify by raw scan
		// only if asked to (parents are authoritative), so return directly.
		return spanStart, nil
	}
	childSpan := pow(l.n, level-1)
	bm, known, err := l.bitmapAt(level, spanStart, id, end)
	if err != nil {
		return -1, err
	}
	if known {
		if bm == nil {
			return -1, nil
		}
		for g := bm.LastSet(l.n); g >= 0; g = bm.LastSet(g) {
			if level == 1 {
				return spanStart + g, nil
			}
			r, err := l.descendPrev(id, level-1, spanStart+g*childSpan, end)
			if err != nil {
				return -1, err
			}
			if r >= 0 {
				return r, nil
			}
		}
		return -1, nil
	}
	for g := l.n - 1; g >= 0; g-- {
		r, err := l.probePrev(id, level, spanStart, g, end)
		if err != nil {
			return -1, err
		}
		if r >= 0 {
			return r, nil
		}
	}
	return -1, nil
}

// probePrev searches group g of the level-`level` span at spanStart without
// bitmap help: level 1 groups are raw blocks, higher groups recurse.
func (l *Locator) probePrev(id uint16, level, spanStart, g, end int) (int, error) {
	childSpan := pow(l.n, level-1)
	lo := spanStart + g*childSpan
	if lo >= end {
		return -1, nil
	}
	if level == 1 {
		l.Stats.RawScans++
		ok, err := l.src.BlockContains(lo, id)
		if err != nil {
			return -1, err
		}
		if ok {
			return lo, nil
		}
		return -1, nil
	}
	return l.descendPrev(id, level-1, lo, end)
}

// FindNext returns the smallest data-block index >= from containing at least
// one entry (or fragment) of log file id, or -1 if there is none.
func (l *Locator) FindNext(id uint16, from int) (int, error) {
	end := l.src.End()
	if from < 0 {
		from = 0
	}
	if from >= end {
		return -1, nil
	}
	high := from // invariant: no entries of id in [from, high)
	for level := 1; ; level++ {
		span := pow(l.n, level)
		childSpan := span / l.n
		spanStart := (high / span) * span
		gHigh := (high - spanStart) / childSpan // first group at/above high
		bm, known, err := l.bitmapAt(level, spanStart, id, end)
		if err != nil {
			return -1, err
		}
		if known {
			g := -1
			if bm != nil {
				g = bm.FirstSet(gHigh)
			}
			for g >= 0 {
				if level == 1 {
					return spanStart + g, nil
				}
				r, err := l.descendNext(id, level-1, spanStart+g*childSpan, end)
				if err != nil {
					return -1, err
				}
				if r >= 0 {
					return r, nil
				}
				g = bm.FirstSet(g + 1)
			}
		} else {
			for g := gHigh; g < l.n; g++ {
				r, err := l.probeNext(id, level, spanStart, g, end)
				if err != nil {
					return -1, err
				}
				if r >= 0 {
					return r, nil
				}
			}
		}
		high = spanStart + span
		if high >= end {
			return -1, nil
		}
	}
}

// descendNext mirrors descendPrev for forward search.
func (l *Locator) descendNext(id uint16, level, spanStart, end int) (int, error) {
	if level == 0 {
		return spanStart, nil
	}
	childSpan := pow(l.n, level-1)
	bm, known, err := l.bitmapAt(level, spanStart, id, end)
	if err != nil {
		return -1, err
	}
	if known {
		if bm == nil {
			return -1, nil
		}
		for g := bm.FirstSet(0); g >= 0; g = bm.FirstSet(g + 1) {
			if level == 1 {
				return spanStart + g, nil
			}
			r, err := l.descendNext(id, level-1, spanStart+g*childSpan, end)
			if err != nil {
				return -1, err
			}
			if r >= 0 {
				return r, nil
			}
		}
		return -1, nil
	}
	for g := 0; g < l.n; g++ {
		r, err := l.probeNext(id, level, spanStart, g, end)
		if err != nil {
			return -1, err
		}
		if r >= 0 {
			return r, nil
		}
	}
	return -1, nil
}

func (l *Locator) probeNext(id uint16, level, spanStart, g, end int) (int, error) {
	childSpan := pow(l.n, level-1)
	lo := spanStart + g*childSpan
	if lo >= end {
		return -1, nil
	}
	if level == 1 {
		l.Stats.RawScans++
		ok, err := l.src.BlockContains(lo, id)
		if err != nil {
			return -1, err
		}
		if ok {
			return lo, nil
		}
		return -1, nil
	}
	return l.descendNext(id, level-1, lo, end)
}

// FindByTime returns the greatest data-block index whose first-entry
// timestamp is <= ts, or -1 if ts precedes the volume's first entry. Block
// first-entry timestamps are non-decreasing in write order, and a header
// timestamp is mandatory for the first entry in each block, so the result
// block either contains the last entry written at or before ts or directly
// follows it (§2.1).
//
// The search descends level by level using the blocks at entrymap boundaries
// as landmarks — "at the upper levels of the tree, the search uses those
// blocks that happen to contain entrymap log entries" — so repeated time
// searches hit the same well-known blocks in the cache.
func (l *Locator) FindByTime(ts int64) (int, error) {
	end := l.src.End()
	if end == 0 {
		return -1, nil
	}
	first, ok, err := l.readTS(0)
	if err != nil {
		return -1, err
	}
	if ok && first > ts {
		return -1, nil
	}
	lo, hi := 0, end // invariant: firstTS(lo) <= ts (when readable), answer in [lo, hi)
	for level := MaxLevel(l.n, end) + 1; level >= 1; level-- {
		span := pow(l.n, level)
		firstLandmark := (lo/span + 1) * span
		if firstLandmark >= hi {
			continue
		}
		count := (hi-1-firstLandmark)/span + 1
		// Binary search the landmarks for the last one with firstTS <= ts.
		idx := sort.Search(count, func(i int) bool {
			b := firstLandmark + i*span
			bts, ok, rerr := l.readTS(b)
			if rerr != nil {
				err = rerr
				return true
			}
			if !ok {
				// Unreadable landmark: treat as > ts to stay below it; the
				// lower levels will search the region before it.
				return true
			}
			return bts > ts
		})
		if err != nil {
			return -1, err
		}
		if idx > 0 {
			lo = firstLandmark + (idx-1)*span
		}
		if idx < count {
			hi = firstLandmark + idx*span
		}
	}
	// Final linear refinement within (lo, hi): at most N blocks.
	best := lo
	for b := lo + 1; b < hi; b++ {
		bts, ok, err := l.readTS(b)
		if err != nil {
			return -1, err
		}
		if !ok {
			continue
		}
		if bts <= ts {
			best = b
		} else {
			break
		}
	}
	return best, nil
}

func (l *Locator) readTS(block int) (int64, bool, error) {
	l.Stats.TimestampReads++
	return l.src.BlockFirstTS(block)
}
