package server

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"clio/internal/wire"
)

// TestReadClassWorkersAcrossReconnect exercises the audited connection
// invariant under the race detector: read-class workers spawned for a dying
// connection must drain into THAT connection's write path, never onto the
// replacement serving the same session. Each round floods a connection with
// pipelined read-class requests, kills it mid-flight, reconnects with the
// same session id, and verifies the new connection answers cleanly.
func TestReadClassWorkersAcrossReconnect(t *testing.T) {
	srv, conn := testServer(t)
	hello := wire.PutUint64(nil, 77)
	if status, _ := roundTrip(t, conn, OpHello, hello); status != StatusOK {
		t.Fatal("hello failed")
	}
	conn.Close()

	for round := 0; round < 20; round++ {
		c, sc := net.Pipe()
		go srv.ServeConn(sc)
		c.SetDeadline(time.Now().Add(5 * time.Second))
		if status, _ := roundTrip(t, c, OpHello, hello); status != StatusOK {
			t.Fatal("hello failed")
		}
		// One writer floods read-class frames, one reader drains whatever
		// responses make it back; both race the Close below.
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := WriteFrame(c, OpPing, 0, 0, nil); err != nil {
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for {
				if _, _, _, _, err := ReadFrame(c); err != nil {
					return
				}
			}
		}()
		time.Sleep(time.Duration(round%3) * time.Millisecond)
		c.Close() // mid-flight: workers may still hold responses
		wg.Wait()
	}

	// The session and server survive every round.
	c, sc := net.Pipe()
	go srv.ServeConn(sc)
	defer c.Close()
	if status, _ := roundTrip(t, c, OpHello, hello); status != StatusOK {
		t.Fatal("hello after reconnect storm failed")
	}
	if status, _ := roundTrip(t, c, OpPing, nil); status != StatusOK {
		t.Fatal("ping after reconnect storm failed")
	}
}

// TestDedupEvictionUnderConcurrentReplay exercises the audited eviction
// invariant: two connections on one session — one appending fresh sequenced
// requests, one concurrently replaying the exact same frames — with enough
// traffic from a third range to churn seqs through the FIFO many times
// over. Whatever interleaving the scheduler picks, each unique request must
// execute exactly once: a replay either hits the cached response or gets
// the explicit outside-the-window error, never a second append.
func TestDedupEvictionUnderConcurrentReplay(t *testing.T) {
	const n = 300 // >> dedupWindow, so eviction churns constantly
	srv, conn := testServer(t)
	hello := wire.PutUint64(nil, 88)
	if status, _ := roundTrip(t, conn, OpHello, hello); status != StatusOK {
		t.Fatal("hello failed")
	}
	p := PutString(nil, "/race")
	p = wire.PutUint16(p, 0)
	p = PutString(p, "")
	status, resp := roundTrip(t, conn, OpCreate, p)
	if status != StatusOK {
		t.Fatal("create failed")
	}
	id, _ := NewDecoder(resp).Uvarint()

	appendFrame := func(i int) []byte {
		ap := wire.PutUvarint(nil, id)
		ap = append(ap, 0) // not forced: no per-entry seal
		ap = PutBytes(ap, []byte(fmt.Sprintf("e%04d", i)))
		return ap
	}
	attach := func() net.Conn {
		c, sc := net.Pipe()
		go srv.ServeConn(sc)
		c.SetDeadline(time.Now().Add(30 * time.Second))
		if status, _ := roundTrip(t, c, OpHello, hello); status != StatusOK {
			t.Error("hello failed")
		}
		return c
	}

	var wg sync.WaitGroup
	errs := make(chan string, 3*n)
	run := func(fn func(conn net.Conn)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := attach()
			defer c.Close()
			fn(c)
		}()
	}
	// Originals: seqs 1000..1000+n, unique payloads.
	run(func(c net.Conn) {
		for i := 0; i < n; i++ {
			if status, _ := roundTripSeq(t, c, OpAppend, uint64(1000+i), appendFrame(i)); status != StatusOK {
				errs <- fmt.Sprintf("original %d: status %d", i, status)
			}
		}
	})
	// Concurrent replays of the SAME frames: must never append twice. A
	// replay racing ahead of its original simply becomes the original.
	run(func(c net.Conn) {
		for i := 0; i < n; i++ {
			status, resp := roundTripSeq(t, c, OpAppend, uint64(1000+i), appendFrame(i))
			if status == StatusErr {
				msg, _ := NewDecoder(resp).String()
				if !strings.Contains(msg, "duplicate-suppression window") {
					errs <- fmt.Sprintf("replay %d: unexpected error %q", i, msg)
				}
			} else if status != StatusOK {
				errs <- fmt.Sprintf("replay %d: status %d", i, status)
			}
		}
	})
	// Churn: a disjoint seq range pushing everything through the FIFO.
	run(func(c net.Conn) {
		for i := 0; i < n; i++ {
			if status, _ := roundTripSeq(t, c, OpPing, uint64(50000+i), nil); status != StatusOK {
				errs <- fmt.Sprintf("churn %d: status %d", i, status)
			}
		}
	})
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}

	status, resp = roundTrip(t, conn, OpStats, nil)
	if status != StatusOK {
		t.Fatal("stats failed")
	}
	entries, _ := NewDecoder(resp).Int64()
	if entries != n {
		t.Fatalf("server holds %d entries, want exactly %d (a replay re-executed)", entries, n)
	}
}
