// Command cliod runs the Clio log server: it opens (or creates) a
// file-backed log store and serves the log-file protocol over TCP — the
// stand-alone deployment of the paper's extended file server.
//
// Usage:
//
//	cliod -store /var/lib/clio [-listen :7846] [-create] [-shards N]
//	      [-volume-blocks N] [-checkpoint-interval N] [-admin :7847]
//	      [-slow-trace 100ms] [-force-window 0]
//	      [-compact-interval 0] [-compact-max-live 0.5] [-compact-min-hot 2]
//
// -force-window controls the group-commit policy: 0 (the default) sizes the
// gather window adaptively from the observed arrival rate and seal latency,
// a positive duration pins a fixed window, and a negative value restores the
// legacy leader/rider queue with no window and no seal pipeline.
//
// -compact-interval enables background space reclamation: every interval,
// each shard copies the live entries of mostly-dead sealed volumes forward,
// demotes the emptied volumes to its cold archive (<shard>/cold) and deletes
// the local volume files, keeping hot storage bounded while reads of demoted
// blocks transparently fetch from the archive. -compact-max-live caps the
// live fraction a volume may have and still be compacted; -compact-min-hot
// is the floor of volumes kept mounted per shard. 0 disables the loop
// (`clio compact` still works offline).
//
// A 1-shard store holds one file per log volume plus the NVRAM sidecar that
// stages the current partial block across restarts (§2.3.1). -create
// -shards N lays the store out as N hash-partitioned volume sequences
// (shard-K subdirectories, each with its own NVRAM sidecar) behind one
// namespace; reopening detects the shard count from the directory.
//
// -admin starts an HTTP endpoint serving /metrics (Prometheus text format),
// /statusz (JSON: volumes, tail state, session table), /tracez (recent and
// slow request traces) and /debug/pprof. Requests slower than -slow-trace
// are captured with their per-layer spans (server dispatch, group commit,
// device write).
//
// Replicated cluster mode — -peers switches the node into per-shard
// leader/follower replication:
//
//	cliod -store /var/lib/clio -listen :7846 -create \
//	      -peers b:7846,c:7846 -advertise a:7846 -role leader [-quorum 2]
//
// The leader orders every append through its group-commit path and acks a
// forced append only after a quorum of replicas has durably staged it;
// followers serve reads of sealed history and redirect writes to the
// leader. `clio promote` turns a follower into the leader after a failure;
// `clio status` shows each node's role, term and replication lag. In
// cluster mode /statusz gains a "cluster" section and /metrics the
// clio_cluster_* instruments. Volume allocation is disabled (capacity is
// the initial volume), and shutdown never seals the staged tail — a
// replica must not write blocks its leader did not order.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"clio"
	"clio/internal/cluster"
	"clio/internal/obs"
	"clio/internal/server"
)

func main() {
	store := flag.String("store", "", "store directory (required)")
	listen := flag.String("listen", ":7846", "TCP listen address")
	create := flag.Bool("create", false, "create a new store instead of opening one")
	shards := flag.Int("shards", 0, "hash partitions for -create (reopen detects; >0 asserts the count)")
	volBlocks := flag.Int("volume-blocks", 1<<20, "capacity of each volume file in blocks")
	blockSize := flag.Int("block-size", 1024, "block size in bytes")
	syncEvery := flag.Bool("sync", false, "fsync every sealed block")
	ckptInterval := flag.Int("checkpoint-interval", 0, "emit a recovery checkpoint every N sealed blocks per shard, and on clean shutdown (0 disables; recovery then reconstructs from scratch)")
	admin := flag.String("admin", "", "HTTP admin listen address (/metrics, /statusz, /tracez, /debug/pprof); empty disables")
	slowTrace := flag.Duration("slow-trace", 100*time.Millisecond, "requests at least this slow are kept in /tracez's slow ring (0 keeps everything)")
	peers := flag.String("peers", "", "comma-separated replica addresses; enables cluster mode")
	advertise := flag.String("advertise", "", "address peers and redirected clients reach this node at (default -listen)")
	role := flag.String("role", "leader", "initial cluster role: leader or follower")
	quorum := flag.Int("quorum", 2, "replicas (leader included) that must stage a write before it is acked")
	forceWindow := flag.Duration("force-window", 0, "group-commit gather window: 0 sizes it adaptively from the arrival rate, >0 pins a fixed window, <0 restores the legacy leader/rider queue (no window, no seal pipeline)")
	compactInterval := flag.Duration("compact-interval", 0, "run a compaction pass on every shard this often; 0 disables background reclamation")
	compactMaxLive := flag.Float64("compact-max-live", 0, "max fraction of live blocks for a volume to be compacted (0 = default 0.5)")
	compactMinHot := flag.Int("compact-min-hot", 0, "minimum volumes kept mounted per shard (0 = default 2)")
	flag.Parse()
	if *store == "" {
		log.Fatal("cliod: -store is required")
	}

	opts := clio.DirOptions{VolumeBlocks: *volBlocks, SyncEvery: *syncEvery, Shards: *shards}
	opts.BlockSize = *blockSize
	opts.CheckpointInterval = *ckptInterval
	opts.CommitWindow = *forceWindow
	if *peers != "" {
		runCluster(*store, opts, *listen, *create, *peers, *advertise, *role, *quorum, *admin)
		return
	}
	var (
		st  *clio.Store
		err error
	)
	if *create {
		st, err = clio.CreateStore(*store, opts)
	} else {
		st, err = clio.OpenStore(*store, opts)
	}
	if err != nil {
		log.Fatalf("cliod: %v", err)
	}
	rep := st.LastRecovery()
	log.Printf("cliod: store %s open: %d shards, %d data blocks, %d catalog records, tails restored=%d, checkpoints used=%d/%d",
		*store, st.Shards(), rep.SealedBlocks, rep.CatalogEntries, rep.TailsRestored, rep.CheckpointsUsed, st.Shards())
	if rep.VolumesRelocated > 0 || rep.VolumesDemoted > 0 {
		log.Printf("cliod: compaction state: %d volumes relocated, %d demoted cold", rep.VolumesRelocated, rep.VolumesDemoted)
	}

	// Background reclamation: one compaction pass across every shard per
	// tick. CompactOnce serializes with itself per shard, and a pass only
	// examines volumes present when it starts, so a slow pass simply delays
	// the next tick rather than piling up.
	stopCompact := func() {}
	if *compactInterval > 0 {
		copt := clio.CompactOptions{MaxLiveFraction: *compactMaxLive, MinHotVolumes: *compactMinHot}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		ticker := time.NewTicker(*compactInterval)
		go func() {
			defer close(done)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
				}
				res, err := st.CompactOnce(ctx, copt)
				if err != nil {
					log.Printf("cliod: compact: %v", err)
				}
				if res.VolumesReloc > 0 || res.VolumesDemoted > 0 {
					log.Printf("cliod: compacted %d volumes (%d entries, %d bytes relocated), %d demoted cold",
						res.VolumesReloc, res.EntriesCopied, res.BytesCopied, res.VolumesDemoted)
				}
			}
		}()
		stopCompact = func() { cancel(); <-done }
		log.Printf("cliod: background compaction every %s", *compactInterval)
	}

	srv := server.NewStore(st)
	srv.Logf = log.Printf
	if *admin != "" {
		reg := obs.NewRegistry()
		st.RegisterMetrics(reg)
		st.RegisterStreamMetrics(reg)
		srv.RegisterMetrics(reg)
		obs.RegisterProcessMetrics(reg)
		srv.Tracer = obs.NewTracer(256, *slowTrace)
		mux := obs.NewAdminMux(reg, srv.Tracer, func() any {
			return map[string]any{
				"shards": st.Status(),
				"server": srv.Status(),
			}
		})
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatalf("cliod: admin listen: %v", err)
		}
		log.Printf("cliod: admin on http://%s", aln.Addr())
		go func() {
			if err := http.Serve(aln, mux); err != nil {
				log.Printf("cliod: admin: %v", err)
			}
		}()
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("cliod: listen: %v", err)
	}
	log.Printf("cliod: serving on %s", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("cliod: shutting down")
		srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		log.Printf("cliod: serve: %v", err)
	}
	stopCompact()
	if err := st.Close(); err != nil {
		log.Printf("cliod: close: %v", err)
	}
}

// runCluster runs the node as a replication cluster member: the store is
// opened as raw devices (a follower holds media its leader writes; only a
// leader — initial or promoted — mounts a service over them).
func runCluster(store string, opts clio.DirOptions, listen string, create bool,
	peers, advertise, role string, quorum int, admin string) {
	if role != "leader" && role != "follower" {
		log.Fatalf("cliod: -role must be leader or follower, not %q", role)
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatalf("cliod: listen: %v", err)
	}
	if advertise == "" {
		advertise = ln.Addr().String()
	}
	raw, err := clio.OpenRaw(store, opts, create)
	if err != nil {
		log.Fatalf("cliod: %v", err)
	}
	node, err := cluster.New(cluster.Config{
		NodeID:  advertise,
		Peers:   strings.Split(peers, ","),
		Quorum:  quorum,
		Devices: raw.Devices,
		NVRAMs:  raw.NVRAMs,
		Opts:    raw.Opts,
		Create:  create && role == "leader",
		// Persist term arbitration next to the store: a restarted node must
		// remember the highest term it has seen, or a stale leader could be
		// mistaken for the legitimate one after a full-cluster restart.
		TermPath: filepath.Join(store, "term.clio"),
		Reset:    raw.Reset,
		Logf:     log.Printf,
	})
	if err != nil {
		log.Fatalf("cliod: %v", err)
	}
	if err := node.Start(role == "leader"); err != nil {
		log.Fatalf("cliod: %v", err)
	}
	if role == "leader" {
		if rep, ok := node.PromotionRecovery(); ok {
			log.Printf("cliod: store %s recovered: %d data blocks, %d replayed past checkpoints, %d tails restored",
				store, rep.SealedBlocks, rep.BlocksReplayed, rep.TailsRestored)
		}
	}
	if admin != "" {
		reg := obs.NewRegistry()
		node.RegisterMetrics(reg)
		obs.RegisterProcessMetrics(reg)
		mux := obs.NewAdminMux(reg, nil, func() any {
			s := map[string]any{"cluster": node.Status()}
			if st := node.Store(); st != nil {
				s["shards"] = st.Status()
			}
			return s
		})
		aln, err := net.Listen("tcp", admin)
		if err != nil {
			log.Fatalf("cliod: admin listen: %v", err)
		}
		log.Printf("cliod: admin on http://%s", aln.Addr())
		go func() {
			if err := http.Serve(aln, mux); err != nil {
				log.Printf("cliod: admin: %v", err)
			}
		}()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("cliod: shutting down (replica media stays exactly as ordered)")
		node.Kill()
	}()
	log.Printf("cliod: %s serving as cluster %s on %s (peers %s, quorum %d)",
		advertise, role, ln.Addr(), peers, quorum)
	if err := node.Serve(ln); err != nil {
		log.Printf("cliod: serve: %v", err)
	}
}
