// Recovery: crash tolerance and media-corruption handling (§2.3). The
// example force-writes transaction commits through the NVRAM tail, crashes
// the server, damages blocks on the medium, and shows what server
// initialization recovers: the end of the written portion (by binary
// search), the reconstructed entrymap state, the replayed catalog, and the
// surviving entries — with the damaged blocks' entries lost but everything
// else intact.
//
//	go run ./examples/recovery
package main

import (
	"fmt"
	"io"
	"log"

	"clio"
	"clio/internal/core"
	"clio/internal/wodev"
)

func main() {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: 1 << 12})
	nv := clio.NewMemNVRAM() // battery-backed RAM: survives the crash
	var now int64
	opt := clio.Options{
		BlockSize: 256, Degree: 4, NVRAM: nv,
		Now: func() int64 { now += 1000; return now },
	}
	svc, err := core.New(dev, opt)
	if err != nil {
		log.Fatal(err)
	}
	id, err := svc.CreateLog("/txn", 0o600, "db")
	if err != nil {
		log.Fatal(err)
	}

	for i := 1; i <= 40; i++ {
		payload := fmt.Sprintf("commit txid=%04d", i)
		// Forced: the commit is durable when Append returns (§2.3.1).
		if _, err := svc.Append(id, []byte(payload), clio.AppendOptions{Timestamped: true, Forced: true}); err != nil {
			log.Fatal(err)
		}
	}
	// One unforced entry: staged in volatile memory only. It will be lost
	// with the crash — durability is exactly what a forced write buys, and
	// what is lost is only the unforced suffix (prefix durability).
	if _, err := svc.Append(id, []byte("commit txid=9999 (unforced)"), clio.AppendOptions{}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== power failure ==")
	svc.Crash()

	// The medium also took damage: one written block is scribbled, and the
	// device forgot where its written portion ends.
	dev.Damage(5, []byte("garbage garbage garbage"))
	dev.SetReportEnd(false)

	svc2, err := core.Open([]wodev.Device{dev}, opt)
	if err != nil {
		log.Fatal(err)
	}
	defer svc2.Close()
	rep := svc2.LastRecovery()
	fmt.Printf("server initialization (§2.3.1):\n")
	fmt.Printf("  end of written portion: %d data blocks (found with %d probes)\n",
		rep.SealedBlocks, rep.EndProbes)
	fmt.Printf("  entrymap reconstruction examined %d blocks + %d entries\n",
		rep.EntrymapBlocksScanned, rep.EntrymapEntriesRead)
	fmt.Printf("  catalog records replayed: %d\n", rep.CatalogEntries)
	fmt.Printf("  NVRAM tail restored: %v\n", rep.TailRestored)

	cur, err := svc2.OpenCursor("/txn")
	if err != nil {
		log.Fatal(err)
	}
	var got []string
	for {
		e, err := cur.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		got = append(got, string(e.Data))
	}
	fmt.Printf("recovered %d commits; first=%q last=%q\n", len(got), got[0], got[len(got)-1])
	fmt.Println("(the scribbled block's commits and the unforced suffix are lost —")
	fmt.Println(" §2.3.2 and prefix durability — everything forced elsewhere survives)")

	// Life goes on: the service keeps writing after recovery.
	if _, err := svc2.Append(id, []byte("commit txid=0041 (post-recovery)"), clio.AppendOptions{Forced: true}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("post-recovery commit accepted")
}
