// Package wire provides the low-level binary encoding primitives shared by
// the on-disk formats of the Clio log service: fixed-width little-endian
// integers, 12-bit log-file-id packing, unsigned varints, CRC-32 block
// checksums, and the fixed-size bitmaps used by entrymap log entries.
//
// Everything in this package is deterministic and allocation-conscious; the
// append-style encoders follow the standard library convention of appending
// to a caller-supplied slice and returning the extended slice.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Errors returned by decoders.
var (
	// ErrShortBuffer indicates the input ended before a complete value.
	ErrShortBuffer = errors.New("wire: short buffer")
	// ErrOverflow indicates a varint exceeded 64 bits.
	ErrOverflow = errors.New("wire: varint overflows uint64")
	// ErrIDRange indicates a log-file id outside the 12-bit space.
	ErrIDRange = errors.New("wire: log-file id out of 12-bit range")
)

// MaxLogID is the largest representable local log-file id. The paper's
// minimal entry header dedicates 12 bits to the local-logfile-id, so a
// volume sequence can name at most 4096 log files.
const MaxLogID = 0xFFF

// PutUint16 appends v in little-endian order.
func PutUint16(b []byte, v uint16) []byte {
	return append(b, byte(v), byte(v>>8))
}

// Uint16 decodes a little-endian uint16 from the front of b.
func Uint16(b []byte) (uint16, error) {
	if len(b) < 2 {
		return 0, ErrShortBuffer
	}
	return binary.LittleEndian.Uint16(b), nil
}

// PutUint32 appends v in little-endian order.
func PutUint32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// Uint32 decodes a little-endian uint32 from the front of b.
func Uint32(b []byte) (uint32, error) {
	if len(b) < 4 {
		return 0, ErrShortBuffer
	}
	return binary.LittleEndian.Uint32(b), nil
}

// PutUint64 appends v in little-endian order.
func PutUint64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

// Uint64 decodes a little-endian uint64 from the front of b.
func Uint64(b []byte) (uint64, error) {
	if len(b) < 8 {
		return 0, ErrShortBuffer
	}
	return binary.LittleEndian.Uint64(b), nil
}

// PutUvarint appends v using the standard varint encoding.
func PutUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// Uvarint decodes a varint from the front of b, returning the value and the
// number of bytes consumed.
func Uvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	switch {
	case n == 0:
		return 0, 0, ErrShortBuffer
	case n < 0:
		return 0, 0, ErrOverflow
	}
	return v, n, nil
}

// PackVerID packs a 4-bit header version and a 12-bit log-file id into the
// two leading bytes of the paper's minimal entry header.
func PackVerID(version uint8, id uint16) ([2]byte, error) {
	var out [2]byte
	if version > 0xF {
		return out, fmt.Errorf("wire: header version %d out of 4-bit range", version)
	}
	if id > MaxLogID {
		return out, ErrIDRange
	}
	v := uint16(version)<<12 | id
	out[0] = byte(v)
	out[1] = byte(v >> 8)
	return out, nil
}

// UnpackVerID is the inverse of PackVerID.
func UnpackVerID(b []byte) (version uint8, id uint16, err error) {
	if len(b) < 2 {
		return 0, 0, ErrShortBuffer
	}
	v := binary.LittleEndian.Uint16(b)
	return uint8(v >> 12), v & MaxLogID, nil
}

// castagnoliTable is the CRC-32C table used for block checksums.
var castagnoliTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the CRC-32C of b.
func Checksum(b []byte) uint32 {
	return crc32.Checksum(b, castagnoliTable)
}

// Bitmap is a little-endian fixed-capacity bitset, as carried inside an
// entrymap log entry: bit i set means "group i of the covered span contains
// at least one entry of the log file in question".
type Bitmap []byte

// NewBitmap returns an all-zero bitmap with capacity for n bits.
func NewBitmap(n int) Bitmap {
	return make(Bitmap, (n+7)/8)
}

// Set marks bit i.
func (m Bitmap) Set(i int) {
	m[i/8] |= 1 << (uint(i) % 8)
}

// Clear unmarks bit i.
func (m Bitmap) Clear(i int) {
	m[i/8] &^= 1 << (uint(i) % 8)
}

// Get reports whether bit i is set.
func (m Bitmap) Get(i int) bool {
	return m[i/8]&(1<<(uint(i)%8)) != 0
}

// Len returns the bit capacity of the map.
func (m Bitmap) Len() int { return len(m) * 8 }

// Empty reports whether no bit is set.
func (m Bitmap) Empty() bool {
	for _, b := range m {
		if b != 0 {
			return false
		}
	}
	return true
}

// LastSet returns the index of the highest set bit < before, or -1 if none.
// Pass before = m.Len() to search the whole map.
func (m Bitmap) LastSet(before int) int {
	if before > m.Len() {
		before = m.Len()
	}
	for i := before - 1; i >= 0; i-- {
		if m.Get(i) {
			return i
		}
	}
	return -1
}

// FirstSet returns the index of the lowest set bit >= from, or -1 if none.
func (m Bitmap) FirstSet(from int) int {
	if from < 0 {
		from = 0
	}
	for i := from; i < m.Len(); i++ {
		if m.Get(i) {
			return i
		}
	}
	return -1
}

// Clone returns an independent copy of the bitmap.
func (m Bitmap) Clone() Bitmap {
	out := make(Bitmap, len(m))
	copy(out, m)
	return out
}

// String renders the bitmap as a 0/1 string, lowest bit first, for debugging.
func (m Bitmap) String() string {
	out := make([]byte, m.Len())
	for i := 0; i < m.Len(); i++ {
		if m.Get(i) {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
