package server

import (
	"net"
	"strings"
	"testing"
	"time"

	"clio/internal/core"
	"clio/internal/wire"
	"clio/internal/wodev"
)

func testServer(t *testing.T) (*Server, net.Conn) {
	t.Helper()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 12})
	now := int64(0)
	svc, err := core.New(dev, core.Options{
		BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(svc)
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	t.Cleanup(func() { cConn.Close(); srv.Close(); svc.Close() })
	return srv, cConn
}

// roundTrip sends one raw frame (seq 0 = no duplicate suppression) and
// returns the response.
func roundTrip(t *testing.T, conn net.Conn, op byte, payload []byte) (byte, []byte) {
	t.Helper()
	return roundTripSeq(t, conn, op, 0, payload)
}

// roundTripSeq sends one raw frame under an explicit sequence number.
func roundTripSeq(t *testing.T, conn net.Conn, op byte, seq uint64, payload []byte) (byte, []byte) {
	t.Helper()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if err := WriteFrame(conn, op, seq, 0, payload); err != nil {
		t.Fatal(err)
	}
	status, gotSeq, _, resp, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if gotSeq != seq {
		t.Fatalf("response seq %d, want %d", gotSeq, seq)
	}
	return status, resp
}

func TestMalformedPayloadsReturnErrors(t *testing.T) {
	_, conn := testServer(t)
	cases := []struct {
		name    string
		op      byte
		payload []byte
	}{
		{"unknown op", 200, nil},
		{"create empty", OpCreate, nil},
		{"create truncated", OpCreate, PutString(nil, "/x")},
		{"append no body", OpAppend, []byte{1}},
		{"append truncated data", OpAppend, append(wire.PutUvarint(nil, 4), 0, 255)},
		{"next bad handle varint", OpNext, []byte{0xFF}},
		{"next unknown handle", OpNext, wire.PutUvarint(nil, 999)},
		{"seek missing ts", OpSeekTime, wire.PutUvarint(nil, 1)},
		{"stat empty", OpStat, nil},
		{"readat empty", OpReadAt, nil},
	}
	for _, c := range cases {
		status, resp := roundTrip(t, conn, c.op, c.payload)
		if status != StatusErr {
			t.Errorf("%s: status %d, want error", c.name, status)
			continue
		}
		d := NewDecoder(resp)
		if msg, err := d.String(); err != nil || msg == "" {
			t.Errorf("%s: bad error message %q %v", c.name, msg, err)
		}
	}
	// The connection remains usable after every malformed request.
	if status, _ := roundTrip(t, conn, OpPing, nil); status != StatusOK {
		t.Error("connection dead after malformed requests")
	}
}

func TestServerCursorLifecycle(t *testing.T) {
	_, conn := testServer(t)
	p := PutString(nil, "/l")
	p = wire.PutUint16(p, 0)
	p = PutString(p, "")
	if status, _ := roundTrip(t, conn, OpCreate, p); status != StatusOK {
		t.Fatal("create failed")
	}
	status, resp := roundTrip(t, conn, OpCursorOpen, PutString(nil, "/l"))
	if status != StatusOK {
		t.Fatal("cursor open failed")
	}
	handle, err := NewDecoder(resp).Uint32()
	if err != nil {
		t.Fatal(err)
	}
	// Empty log: EOF.
	if status, _ := roundTrip(t, conn, OpNext, wire.PutUvarint(nil, uint64(handle))); status != StatusEOF {
		t.Errorf("Next on empty: %d", status)
	}
	// Close then reuse: error.
	if status, _ := roundTrip(t, conn, OpCursorEnd, wire.PutUvarint(nil, uint64(handle))); status != StatusOK {
		t.Error("cursor close failed")
	}
	status, resp = roundTrip(t, conn, OpNext, wire.PutUvarint(nil, uint64(handle)))
	if status != StatusErr {
		t.Errorf("Next after close: %d", status)
	}
	msg, _ := NewDecoder(resp).String()
	if !strings.Contains(msg, "unknown cursor") {
		t.Errorf("error = %q", msg)
	}
}

func TestServerCloseUnblocksServe(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 256})
	now := int64(0)
	svc, err := core.New(dev, core.Options{BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := New(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
	if err := srv.Serve(ln); err == nil {
		t.Error("Serve after Close accepted")
	}
}

func TestIdleConnectionDropped(t *testing.T) {
	// A half-open client that never sends a request must not pin a handler
	// goroutine forever: the idle read deadline drops it.
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 12})
	now := int64(0)
	svc, err := core.New(dev, core.Options{BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := New(svc)
	srv.IdleTimeout = 50 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing. The server must close the connection: the next read
	// observes EOF instead of blocking forever.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection still open")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server never dropped the idle connection")
	}
}

func TestDuplicateSuppressionMakesAppendsIdempotent(t *testing.T) {
	_, conn := testServer(t)
	p := PutString(nil, "/dup")
	p = wire.PutUint16(p, 0)
	p = PutString(p, "")
	status, resp := roundTripSeq(t, conn, OpCreate, 1, p)
	if status != StatusOK {
		t.Fatal("create failed")
	}
	id, _ := NewDecoder(resp).Uvarint()

	ap := wire.PutUvarint(nil, id)
	ap = append(ap, AppendForced)
	ap = PutBytes(ap, []byte("once"))
	status, resp = roundTripSeq(t, conn, OpAppend, 2, ap)
	if status != StatusOK {
		t.Fatalf("append: status %d", status)
	}
	ts1, _ := NewDecoder(resp).Int64()

	// Replaying the exact same request under the same seq must return the
	// cached response, not execute a second append.
	status, resp = roundTripSeq(t, conn, OpAppend, 2, ap)
	if status != StatusOK {
		t.Fatalf("replay: status %d", status)
	}
	ts2, _ := NewDecoder(resp).Int64()
	if ts1 != ts2 {
		t.Fatalf("replay returned ts %d, original %d", ts2, ts1)
	}
	status, resp = roundTrip(t, conn, OpStats, nil)
	if status != StatusOK {
		t.Fatal("stats failed")
	}
	entries, _ := NewDecoder(resp).Int64()
	if entries != 1 {
		t.Fatalf("server holds %d entries after replay, want 1", entries)
	}
}

func TestDuplicateSuppressionCoversCursorAdvance(t *testing.T) {
	_, conn := testServer(t)
	p := PutString(nil, "/cur")
	p = wire.PutUint16(p, 0)
	p = PutString(p, "")
	if status, _ := roundTripSeq(t, conn, OpCreate, 1, p); status != StatusOK {
		t.Fatal("create failed")
	}
	status, resp := roundTrip(t, conn, OpResolve, PutString(nil, "/cur"))
	if status != StatusOK {
		t.Fatal("resolve failed")
	}
	id, _ := NewDecoder(resp).Uvarint()
	for i, payload := range []string{"a", "b"} {
		ap := wire.PutUvarint(nil, id)
		ap = append(ap, AppendForced)
		ap = PutBytes(ap, []byte(payload))
		if status, _ := roundTripSeq(t, conn, OpAppend, uint64(10+i), ap); status != StatusOK {
			t.Fatal("append failed")
		}
	}
	status, resp = roundTripSeq(t, conn, OpCursorOpen, 20, PutString(nil, "/cur"))
	if status != StatusOK {
		t.Fatal("cursor open failed")
	}
	handle, _ := NewDecoder(resp).Uint32()
	hb := wire.PutUvarint(nil, uint64(handle))

	// A replayed OpNext must NOT advance the cursor twice.
	status, resp = roundTripSeq(t, conn, OpNext, 21, hb)
	if status != StatusOK {
		t.Fatalf("next: %d", status)
	}
	first := decodeEntryData(t, resp)
	status, resp = roundTripSeq(t, conn, OpNext, 21, hb) // replay
	if status != StatusOK || decodeEntryData(t, resp) != first {
		t.Fatal("replayed Next returned a different entry")
	}
	status, resp = roundTripSeq(t, conn, OpNext, 22, hb)
	if status != StatusOK {
		t.Fatalf("second next: %d", status)
	}
	if got := decodeEntryData(t, resp); got != "b" {
		t.Fatalf("cursor advanced wrongly under replay: got %q, want \"b\"", got)
	}
}

func decodeEntryData(t *testing.T, resp []byte) string {
	t.Helper()
	d := NewDecoder(resp)
	d.Uint16() // log id
	d.Int64()  // ts
	d.Byte()   // flags
	d.Uvarint() // shard
	d.Uvarint() // block
	d.Uvarint() // index
	n, _ := d.Uvarint()
	for i := uint64(0); i < n; i++ {
		d.Uint16()
	}
	data, err := d.Bytes()
	if err != nil {
		t.Fatalf("decode entry: %v", err)
	}
	return string(data)
}

func TestHelloReportsEpochAndSessionSurvivesReconnect(t *testing.T) {
	srv, conn := testServer(t)
	hello := wire.PutUint64(nil, 42)
	status, resp := roundTrip(t, conn, OpHello, hello)
	if status != StatusOK {
		t.Fatal("hello failed")
	}
	d := NewDecoder(resp)
	epoch, _ := d.Int64()
	if uint64(epoch) != srv.Epoch() {
		t.Fatalf("hello epoch %d, server epoch %d", epoch, srv.Epoch())
	}
	maxSeq, _ := d.Int64()
	if maxSeq != 0 {
		t.Fatalf("fresh session maxSeq = %d", maxSeq)
	}
	// Run one sequenced request, then "reconnect" on a new conn: the
	// session must remember maxSeq.
	p := PutString(nil, "/s")
	p = wire.PutUint16(p, 0)
	p = PutString(p, "")
	if status, _ := roundTripSeq(t, conn, OpCreate, 7, p); status != StatusOK {
		t.Fatal("create failed")
	}
	c2, s2 := net.Pipe()
	go srv.ServeConn(s2)
	defer c2.Close()
	status, resp = roundTrip(t, c2, OpHello, hello)
	if status != StatusOK {
		t.Fatal("hello on second conn failed")
	}
	d = NewDecoder(resp)
	d.Int64()
	maxSeq, _ = d.Int64()
	if maxSeq != 7 {
		t.Fatalf("session maxSeq after reconnect = %d, want 7", maxSeq)
	}
}

func TestDegradedAppendStatus(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 12})
	now := int64(0)
	svc, err := core.New(dev, core.Options{BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now }})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(svc)
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	t.Cleanup(func() { cConn.Close(); srv.Close(); svc.Close() })

	p := PutString(nil, "/deg")
	p = wire.PutUint16(p, 0)
	p = PutString(p, "")
	status, resp := roundTrip(t, cConn, OpCreate, p)
	if status != StatusOK {
		t.Fatal("create failed")
	}
	id, _ := NewDecoder(resp).Uvarint()
	// Damage the next unwritten block: the append completes degraded.
	if err := dev.Damage(dev.Written(), nil); err != nil {
		t.Fatal(err)
	}
	ap := wire.PutUvarint(nil, id)
	ap = append(ap, AppendForced)
	ap = PutBytes(ap, []byte("x"))
	status, resp = roundTrip(t, cConn, OpAppend, ap)
	if status != StatusDegraded {
		t.Fatalf("append over damaged block: status %d, want StatusDegraded", status)
	}
	if ts, _ := NewDecoder(resp).Int64(); ts == 0 {
		t.Fatal("degraded append carried no timestamp")
	}
}

func TestKillConns(t *testing.T) {
	srv, conn := testServer(t)
	if status, _ := roundTrip(t, conn, OpPing, nil); status != StatusOK {
		t.Fatal("ping failed")
	}
	if n := srv.KillConns(); n != 1 {
		t.Fatalf("KillConns = %d, want 1", n)
	}
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	err := WriteFrame(conn, OpPing, 0, 0, nil)
	if err == nil {
		_, _, _, _, err = ReadFrame(conn)
	}
	if err == nil {
		t.Fatal("connection alive after KillConns")
	}
}
