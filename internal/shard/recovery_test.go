package shard

import (
	"testing"
	"time"

	"clio/internal/core"
	"clio/internal/vclock"
	"clio/internal/wodev"
)

// TestParallelRecovery asserts the scale-out recovery claim: opening an
// 8-shard store recovers every shard concurrently, so the wall-clock of
// the whole open stays within 2× the slowest single shard's recovery —
// not the sum. The shards carry deliberately unequal amounts of sealed
// data, each reopened device really sleeps per block read
// (wodev.Latent), and each shard charges its own virtual clock with the
// same per-read cost, so the per-shard vclock totals are the per-shard
// recovery times and the slowest shard's charge is the parallel lower
// bound.
func TestParallelRecovery(t *testing.T) {
	// Degree exceeds every shard's block count (entrymap.MaxDegree allowing), so no entrymap boundary
	// record is ever logged and recovery's reconstruction scan must read
	// every sealed block — recovery cost is proportional to shard size,
	// which is what makes "slowest shard" meaningful.
	const (
		shards    = 8
		blockSize = 256
		degree    = 256
		readDelay = 2 * time.Millisecond
	)

	// Build the shards with plain memory devices (fast), sealing an
	// increasing number of blocks on each so one shard is clearly the
	// slowest to recover, then crash them.
	mems := make([]*wodev.MemDevice, shards)
	payload := make([]byte, 200) // ~1 entry per 256-byte block
	for i := range mems {
		mems[i] = wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: 1 << 12})
		now := int64(0)
		svc, err := core.New(mems[i], core.Options{
			BlockSize: blockSize, Degree: degree,
			Now: func() int64 { now += 1000; return now },
		})
		if err != nil {
			t.Fatal(err)
		}
		id, err := svc.CreateLog("/r", 0, "")
		if err != nil {
			t.Fatal(err)
		}
		blocks := 8 + 4*i
		for svc.End() < blocks {
			if _, err := svc.Append(id, payload, core.AppendOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		if err := svc.SealTail(); err != nil {
			t.Fatal(err)
		}
		svc.Crash()
	}

	// Reopen all shards as one store: every device read now sleeps
	// readDelay for real and charges readDelay of virtual time to that
	// shard's clock (seek cost only, no transfer term).
	devs := make([][]wodev.Device, shards)
	opts := make([]core.Options, shards)
	clks := make([]*vclock.Clock, shards)
	for i := range devs {
		devs[i] = []wodev.Device{wodev.NewLatent(mems[i], 0, readDelay)}
		clks[i] = vclock.New(vclock.CostModel{DeviceSeek: readDelay})
		now := int64(1 << 40)
		opts[i] = core.Options{
			BlockSize: blockSize, Degree: degree, Clock: clks[i],
			Now: func() int64 { now += 1000; return now },
		}
	}
	start := time.Now()
	st, err := Open(devs, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wall := time.Since(start)

	reports := st.LastRecoveryByShard()
	if len(reports) != shards {
		t.Fatalf("got %d recovery reports, want %d", len(reports), shards)
	}
	var slowest, sum time.Duration
	for i, clk := range clks {
		e := clk.Elapsed()
		if e == 0 {
			t.Fatalf("shard %d charged no recovery reads to its clock", i)
		}
		if reports[i].SealedBlocks < 8+4*i {
			t.Fatalf("shard %d recovered %d sealed blocks, want >= %d",
				i, reports[i].SealedBlocks, 8+4*i)
		}
		sum += e
		if e > slowest {
			slowest = e
		}
	}
	// The imbalance must be real, or the parallel bound below would also
	// hold for a serial recovery and prove nothing.
	if sum < 3*slowest {
		t.Fatalf("workload not imbalanced enough: serial cost %v < 3x slowest shard %v", sum, slowest)
	}
	if wall > 2*slowest {
		t.Fatalf("parallel recovery took %v, want <= 2x the slowest shard's %v (serial would be %v)",
			wall, slowest, sum)
	}
	t.Logf("recovered %d shards in %v; slowest shard %v, serial sum %v", shards, wall, slowest, sum)
}
