// Benchmarks: one per table/figure of the paper (wall-clock counterparts of
// the deterministic cmd/experiments harness), plus throughput benches for
// the main service paths.
//
//	go test -bench=. -benchmem
package clio_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"clio"
	"clio/internal/archive"
	"clio/internal/client"
	"clio/internal/core"
	"clio/internal/experiments"
	"clio/internal/logapi"
	"clio/internal/rewritefs"
	"clio/internal/scrub"
	"clio/internal/server"
	"clio/internal/shard"
	"clio/internal/vclock"
	"clio/internal/wodev"
	"clio/internal/workload"
)

func benchNow() func() int64 {
	var now int64
	return func() int64 { now += 1000; return now }
}

func benchService(b *testing.B, blockSize, degree int, nv core.NVRAM) *core.Service {
	b.Helper()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: 1 << 22})
	svc, err := core.New(dev, core.Options{
		BlockSize: blockSize, Degree: degree, CacheBlocks: -1,
		NVRAM: nv, Now: benchNow(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { svc.Close() })
	return svc
}

// benchLatentService builds a service whose device really blocks for
// writeDelay per block write (wodev.Latent), approximating the optical
// disk's millisecond-scale access time (§3.2). The forced-append path then
// spends real time inside each seal, which is the window that lets
// concurrent forces pile up into a group commit — without it, an in-memory
// seal is so fast that contention never forms (especially on one CPU).
func benchLatentService(b *testing.B, blockSize, degree int, writeDelay time.Duration) *core.Service {
	b.Helper()
	dev := wodev.NewLatent(
		wodev.NewMem(wodev.MemOptions{BlockSize: blockSize, Capacity: 1 << 22}),
		writeDelay, 0)
	svc, err := core.New(dev, core.Options{
		BlockSize: blockSize, Degree: degree, CacheBlocks: -1, Now: benchNow(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { svc.Close() })
	return svc
}

// BenchmarkWriteNull is §3.2's null-entry synchronous write (paper: 2.0 ms
// on a Sun-3; the wall-clock number here is the modern in-memory cost).
func BenchmarkWriteNull(b *testing.B) {
	svc := benchService(b, 1024, 16, core.NewMemNVRAM())
	id, err := svc.CreateLog("/w", 0, "")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Append(id, nil, core.AppendOptions{Timestamped: true, Forced: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWrite50B is §3.2's 50-byte synchronous write (paper: 2.9 ms).
func BenchmarkWrite50B(b *testing.B) {
	svc := benchService(b, 1024, 16, core.NewMemNVRAM())
	id, err := svc.CreateLog("/w", 0, "")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 50)
	b.SetBytes(50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Append(id, payload, core.AppendOptions{Timestamped: true, Forced: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteUnforced is the asynchronous write path.
func BenchmarkWriteUnforced(b *testing.B) {
	svc := benchService(b, 1024, 16, core.NewMemNVRAM())
	id, err := svc.CreateLog("/w", 0, "")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 50)
	b.SetBytes(50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Append(id, payload, core.AppendOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// distance volume shared by the Table 1 / Figure 3 benches.
var (
	dvOnce sync.Once
	dvErr  error
	dv     *experiments.DistanceVolume
)

func sharedDV(b *testing.B) *experiments.DistanceVolume {
	b.Helper()
	dvOnce.Do(func() {
		clk := vclock.New(vclock.DefaultModel())
		dv, dvErr = experiments.BuildDistanceVolume(256, 16, 3, clk)
	})
	if dvErr != nil {
		b.Fatal(dvErr)
	}
	return dv
}

// BenchmarkReadWarm is Table 1: a log entry read at search distance N^k
// with complete caching.
func BenchmarkReadWarm(b *testing.B) {
	v := sharedDV(b)
	for _, t := range v.Targets {
		// Warm pass.
		if _, err := v.MeasureLocate(t, false); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("distance=16^%d", t.K), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := v.MeasureLocate(t, false); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLocateCold is Figure 3: the same locates against an empty cache.
func BenchmarkLocateCold(b *testing.B) {
	v := sharedDV(b)
	for _, t := range v.Targets {
		b.Run(fmt.Sprintf("distance=16^%d", t.K), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := v.MeasureLocate(t, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery is Figure 4: full server initialization over a written
// volume, including the binary search for the end of the written portion.
func BenchmarkRecovery(b *testing.B) {
	for _, blocks := range []int{1000, 10_000} {
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			dev := wodev.NewMem(wodev.MemOptions{BlockSize: 256, Capacity: blocks + 64})
			opt := core.Options{BlockSize: 256, Degree: 16, CacheBlocks: -1, Now: benchNow()}
			svc, err := core.New(dev, opt)
			if err != nil {
				b.Fatal(err)
			}
			id, err := svc.CreateLog("/l", 0, "")
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 64)
			for svc.End() < blocks {
				if _, err := svc.Append(id, payload, core.AppendOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			if err := svc.Force(); err != nil {
				b.Fatal(err)
			}
			svc.Crash()
			dev.SetReportEnd(false)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s2, err := core.Open([]wodev.Device{dev}, opt)
				if err != nil {
					b.Fatal(err)
				}
				s2.Crash()
			}
		})
	}
}

// BenchmarkSpaceOverhead is §3.5: the login/logout workload; the reported
// metrics are the space-overhead figures.
func BenchmarkSpaceOverhead(b *testing.B) {
	svc := benchService(b, 1024, 16, core.NewMemNVRAM())
	tr := workload.NewLoginTrace(7, 8)
	ids := map[string]uint16{}
	for _, path := range tr.Logs() {
		if _, err := svc.CreateLog(path, 0, ""); err != nil {
			b.Fatal(err)
		}
		ids[path], _ = svc.Resolve(path)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := tr.Next()
		if _, err := svc.Append(ids[op.Log], op.Data, core.AppendOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := svc.Stats()
	if st.EntriesAppended > 0 {
		b.ReportMetric(float64(st.HeaderBytes)/float64(st.EntriesAppended), "hdrB/entry")
		b.ReportMetric(float64(st.EntrymapBytes)/float64(st.EntriesAppended), "emapB/entry")
	}
}

// BenchmarkForcedWrites is the §2.3.1 NVRAM ablation: forced 50-byte
// commits with and without the rewriteable tail.
func BenchmarkForcedWrites(b *testing.B) {
	for _, mode := range []struct {
		name  string
		nvram bool
	}{{"nvram", true}, {"no-nvram", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var nv core.NVRAM
			if mode.nvram {
				nv = core.NewMemNVRAM()
			}
			svc := benchService(b, 1024, 16, nv)
			id, err := svc.CreateLog("/txn", 0, "")
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 50)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := svc.Append(id, payload, core.AppendOptions{Forced: true}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if n := svc.Stats().EntriesAppended; n > 0 {
				b.ReportMetric(float64(svc.End())/float64(n)*1024, "devB/entry")
			}
		})
	}
}

// BenchmarkTailGrowth is the §1 motivation: appending one block to a large
// grown file, conventional FS vs log file.
func BenchmarkTailGrowth(b *testing.B) {
	const grown = 2200 // past the single-indirect region
	b.Run("rewritefs", func(b *testing.B) {
		store := rewritefs.NewStore(1024, 1<<26)
		fs := rewritefs.New(store)
		chunk := make([]byte, 1024)
		gen := 0
		newFile := func() string {
			gen++
			name := fmt.Sprintf("big%d", gen)
			if err := fs.Create(name); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < grown; i++ {
				if err := fs.Append(name, chunk); err != nil {
					b.Fatal(err)
				}
			}
			return name
		}
		name := newFile()
		limit := fs.MaxFileSize() - 64*1024
		b.SetBytes(1024)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if sz, _ := fs.Size(name); sz >= limit {
				b.StopTimer()
				name = newFile() // roll to a fresh grown file near the max
				b.StartTimer()
			}
			if err := fs.Append(name, chunk); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("logfile", func(b *testing.B) {
		svc := benchService(b, 1024, 16, core.NewMemNVRAM())
		id, err := svc.CreateLog("/big", 0, "")
		if err != nil {
			b.Fatal(err)
		}
		chunk := make([]byte, 960)
		for i := 0; i < grown; i++ {
			if _, err := svc.Append(id, chunk, core.AppendOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(1024)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := svc.Append(id, chunk, core.AppendOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCursorScan is sequential read throughput over a populated log.
func BenchmarkCursorScan(b *testing.B) {
	svc := benchService(b, 1024, 16, core.NewMemNVRAM())
	id, err := svc.CreateLog("/scan", 0, "")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 100)
	const entries = 20_000
	for i := 0; i < entries; i++ {
		if _, err := svc.Append(id, payload, core.AppendOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(100)
	b.ReportAllocs()
	b.ResetTimer()
	cur, err := svc.OpenCursor("/scan")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		e, err := cur.Next()
		if err == io.EOF {
			cur.SeekStart()
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
		_ = e
	}
}

// BenchmarkServerRoundTrip measures one append through the full protocol
// stack over a same-machine pipe (the paper's IPC path).
func BenchmarkServerRoundTrip(b *testing.B) {
	svc := benchService(b, 1024, 16, core.NewMemNVRAM())
	srv := server.New(svc)
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	cl := client.New(cConn)
	defer cl.Close()
	defer srv.Close()
	id, err := cl.CreateLog(context.Background(), "/rpc", 0, "")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 50)
	b.SetBytes(50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Append(context.Background(), id, payload, client.AppendOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileStore measures the file-backed append path end to end.
func BenchmarkFileStore(b *testing.B) {
	ctx := context.Background()
	dir := b.TempDir()
	st, err := clio.CreateStore(dir, clio.DirOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	id, err := st.CreateLog(ctx, "/f", 0, "")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 100)
	b.SetBytes(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Append(ctx, id, payload, clio.AppendOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSeekTime measures the locate-by-time search (§2.1's timestamp
// tree search) on a populated log.
func BenchmarkSeekTime(b *testing.B) {
	svc := benchService(b, 1024, 16, core.NewMemNVRAM())
	id, err := svc.CreateLog("/t", 0, "")
	if err != nil {
		b.Fatal(err)
	}
	var stamps []int64
	for i := 0; i < 20_000; i++ {
		ts, err := svc.Append(id, make([]byte, 60), core.AppendOptions{Timestamped: true})
		if err != nil {
			b.Fatal(err)
		}
		stamps = append(stamps, ts)
	}
	cur, err := svc.OpenCursor("/t")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cur.SeekTime(stamps[(i*7919)%len(stamps)]); err != nil {
			b.Fatal(err)
		}
		if _, err := cur.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScrub measures full-volume verification throughput.
func BenchmarkScrub(b *testing.B) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 1024, Capacity: 4096})
	svc, err := core.New(dev, core.Options{BlockSize: 1024, Degree: 16, Now: benchNow()})
	if err != nil {
		b.Fatal(err)
	}
	id, err := svc.CreateLog("/s", 0, "")
	if err != nil {
		b.Fatal(err)
	}
	for svc.End() < 2000 {
		if _, err := svc.Append(id, make([]byte, 200), core.AppendOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	if err := svc.SealTail(); err != nil {
		b.Fatal(err)
	}
	svc.Crash()
	b.SetBytes(int64(2000 * 1024))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := scrub.Volumes([]wodev.Device{dev}, scrub.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Clean() {
			b.Fatal("dirty volume")
		}
	}
}

// BenchmarkBackup measures the incremental-backup no-op path (everything
// already archived): the §1 "only the tail changed" property at work.
func BenchmarkBackup(b *testing.B) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 1024, Capacity: 4096})
	svc, err := core.New(dev, core.Options{BlockSize: 1024, Degree: 16, Now: benchNow()})
	if err != nil {
		b.Fatal(err)
	}
	id, err := svc.CreateLog("/a", 0, "")
	if err != nil {
		b.Fatal(err)
	}
	for svc.End() < 1000 {
		if _, err := svc.Append(id, make([]byte, 200), core.AppendOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	if err := svc.SealTail(); err != nil {
		b.Fatal(err)
	}
	svc.Crash()
	ctx := context.Background()
	be := archive.NewDir(b.TempDir())
	if _, err := archive.Backup(ctx, []wodev.Device{dev}, be); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := archive.Backup(ctx, []wodev.Device{dev}, be)
		if err != nil {
			b.Fatal(err)
		}
		if res.BlocksCopied != 0 {
			b.Fatal("incremental backup copied blocks")
		}
	}
}

// BenchmarkForcedAppendParallel measures group commit (§2.3.1 amortized
// across concurrent clients): g goroutines each issue forced 50-byte
// appends with no NVRAM tail, so every commit must seal a padded block —
// unless it shares the seal with queued neighbors. seals/force is the
// metric: ~1 at one goroutine, dropping toward 1/batch as concurrency
// grows. batched-frac is the fraction of forced appends that shared their
// commit.
func BenchmarkForcedAppendParallel(b *testing.B) {
	for _, g := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			svc := benchLatentService(b, 1024, 16, 200*time.Microsecond)
			id, err := svc.CreateLog("/gc", 0, "")
			if err != nil {
				b.Fatal(err)
			}
			payload := make([]byte, 50)
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per, extra := b.N/g, b.N%g
			for w := 0; w < g; w++ {
				n := per
				if w < extra {
					n++
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						if _, err := svc.Append(id, payload, core.AppendOptions{Forced: true}); err != nil {
							b.Error(err)
							return
						}
					}
				}(n)
			}
			wg.Wait()
			b.StopTimer()
			st := svc.Stats()
			if st.ForcedWrites > 0 {
				b.ReportMetric(float64(st.BlocksSealed)/float64(st.ForcedWrites), "seals/force")
				b.ReportMetric(float64(st.BatchedForces)/float64(st.ForcedWrites), "batched-frac")
			}
		})
	}
}

// BenchmarkForcedAppendParallelSharded is the scale-out counterpart of
// BenchmarkForcedAppendParallel: the same 64-goroutine forced 50-byte
// append workload against a 1-shard vs an 8-shard store over latent
// devices. Each shard is an independent volume sequence with its own
// group-commit queue and device, so the forced-append throughput ceiling
// (one seal at a time per sequence) multiplies with the shard count —
// the acceptance target is ≥3× ops/s at 8 shards.
func BenchmarkForcedAppendParallelSharded(b *testing.B) {
	const g = 64
	for _, n := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			svcs := make([]*core.Service, n)
			for i := range svcs {
				svcs[i] = benchLatentService(b, 1024, 16, 200*time.Microsecond)
			}
			st, err := shard.New(svcs)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			// One log per goroutine; the root segments spread across the
			// shards by the store's own partitioning hash.
			ids := make([]logapi.ID, g)
			for w := range ids {
				id, err := st.CreateLog(ctx, fmt.Sprintf("/w%02d", w), 0, "")
				if err != nil {
					b.Fatal(err)
				}
				ids[w] = id
			}
			payload := make([]byte, 50)
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			per, extra := b.N/g, b.N%g
			for w := 0; w < g; w++ {
				ops := per
				if w < extra {
					ops++
				}
				wg.Add(1)
				go func(w, ops int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						if _, err := st.Append(ctx, ids[w], payload, core.AppendOptions{Forced: true}); err != nil {
							b.Error(err)
							return
						}
					}
				}(w, ops)
			}
			wg.Wait()
			b.StopTimer()
			stats := st.Stats()
			if stats.ForcedWrites > 0 {
				b.ReportMetric(float64(stats.BlocksSealed)/float64(stats.ForcedWrites), "seals/force")
			}
		})
	}
}

// BenchmarkReadWhileAppend measures the lock-decomposed read path: cursors
// scan a log concurrently with a background appender. Before the writer
// lock was decomposed, every Next serialized against every append; now
// sealed-block reads run lock-free off the published tail snapshot.
func BenchmarkReadWhileAppend(b *testing.B) {
	svc := benchService(b, 1024, 16, core.NewMemNVRAM())
	id, err := svc.CreateLog("/rw", 0, "")
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 100)
	for i := 0; i < 5000; i++ {
		if _, err := svc.Append(id, payload, core.AppendOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := svc.Append(id, payload, core.AppendOptions{}); err != nil {
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		cur, err := svc.OpenCursor("/rw")
		if err != nil {
			b.Error(err)
			return
		}
		for pb.Next() {
			e, err := cur.Next()
			if err == io.EOF {
				cur.SeekStart()
				continue
			}
			if err != nil {
				b.Error(err)
				return
			}
			_ = e
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}
