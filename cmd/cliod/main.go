// Command cliod runs the Clio log server: it opens (or creates) a
// file-backed log store and serves the log-file protocol over TCP — the
// stand-alone deployment of the paper's extended file server.
//
// Usage:
//
//	cliod -store /var/lib/clio [-listen :7846] [-create] [-volume-blocks N]
//
// The store directory holds one file per log volume plus the NVRAM sidecar
// that stages the current partial block across restarts (§2.3.1).
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"clio"
	"clio/internal/server"
)

func main() {
	store := flag.String("store", "", "store directory (required)")
	listen := flag.String("listen", ":7846", "TCP listen address")
	create := flag.Bool("create", false, "create a new store instead of opening one")
	volBlocks := flag.Int("volume-blocks", 1<<20, "capacity of each volume file in blocks")
	blockSize := flag.Int("block-size", 1024, "block size in bytes")
	syncEvery := flag.Bool("sync", false, "fsync every sealed block")
	flag.Parse()
	if *store == "" {
		log.Fatal("cliod: -store is required")
	}

	opts := clio.DirOptions{VolumeBlocks: *volBlocks, SyncEvery: *syncEvery}
	opts.BlockSize = *blockSize
	var (
		svc *clio.Service
		err error
	)
	if *create {
		svc, err = clio.CreateDir(*store, opts)
	} else {
		svc, err = clio.OpenDir(*store, opts)
	}
	if err != nil {
		log.Fatalf("cliod: %v", err)
	}
	rep := svc.LastRecovery()
	log.Printf("cliod: store %s open: %d data blocks, %d catalog records, tail restored=%v",
		*store, rep.SealedBlocks, rep.CatalogEntries, rep.TailRestored)

	srv := server.New(svc)
	srv.Logf = log.Printf
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("cliod: listen: %v", err)
	}
	log.Printf("cliod: serving on %s", ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("cliod: shutting down")
		srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		log.Printf("cliod: serve: %v", err)
	}
	if err := svc.Close(); err != nil {
		log.Printf("cliod: close: %v", err)
	}
}
