package client

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"

	"clio/internal/core"
	"clio/internal/server"
	"clio/internal/wodev"
)

var bg = context.Background()

// pipePair returns a client connected to a fresh in-memory service through
// a net.Pipe (the paper's same-machine IPC case).
func pipePair(t *testing.T) (*Client, *core.Service) {
	t.Helper()
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	now := int64(0)
	svc, err := core.New(dev, core.Options{
		BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(svc)
	cConn, sConn := net.Pipe()
	go srv.ServeConn(sConn)
	cl := New(cConn)
	t.Cleanup(func() { cl.Close(); srv.Close(); svc.Close() })
	return cl, svc
}

func TestClientBasicFlow(t *testing.T) {
	cl, _ := pipePair(t)
	if err := cl.Ping(bg); err != nil {
		t.Fatal(err)
	}
	id, err := cl.CreateLog(bg, "/audit", 0o640, "ops")
	if err != nil {
		t.Fatal(err)
	}
	ts1, err := cl.Append(bg, id, []byte("hello"), AppendOptions{Timestamped: true})
	if err != nil || ts1 == 0 {
		t.Fatalf("Append: %d, %v", ts1, err)
	}
	ts2, err := cl.Append(bg, id, []byte("world"), AppendOptions{Forced: true})
	if err != nil || ts2 <= ts1 {
		t.Fatalf("Append 2: %d, %v", ts2, err)
	}
	cur, err := cl.OpenCursor(bg, "/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	var got []string
	for {
		e, err := cur.Next(bg)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(e.Data))
	}
	if fmt.Sprint(got) != "[hello world]" {
		t.Errorf("entries: %v", got)
	}
	// Prev walks back.
	e, err := cur.Prev(bg)
	if err != nil || string(e.Data) != "world" {
		t.Fatalf("Prev: %v", err)
	}
	// ReadAt round-trips the position.
	e2, err := cl.ReadAt(bg, e.Shard, e.Block, e.Index)
	if err != nil || string(e2.Data) != "world" {
		t.Fatalf("ReadAt: %v", err)
	}
}

func TestClientCatalogOps(t *testing.T) {
	cl, _ := pipePair(t)
	if _, err := cl.CreateLog(bg, "/mail", 0o644, "root"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.CreateLog(bg, "/mail/smith", 0o600, "smith"); err != nil {
		t.Fatal(err)
	}
	names, err := cl.List(bg, "/mail")
	if err != nil || fmt.Sprint(names) != "[smith]" {
		t.Fatalf("List: %v, %v", names, err)
	}
	st, err := cl.Stat(bg, "/mail/smith")
	if err != nil || st.Owner != "smith" || st.Perms != 0o600 {
		t.Fatalf("Stat: %+v, %v", st, err)
	}
	if err := cl.SetPerms(bg, "/mail/smith", 0o644); err != nil {
		t.Fatal(err)
	}
	if st, _ := cl.Stat(bg, "/mail/smith"); st.Perms != 0o644 {
		t.Errorf("perms after SetPerms: %o", st.Perms)
	}
	if err := cl.Retire(bg, "/mail/smith"); err != nil {
		t.Fatal(err)
	}
	if st, _ := cl.Stat(bg, "/mail/smith"); !st.Retired {
		t.Error("not retired")
	}
	if id, err := cl.Resolve(bg, "/mail"); err != nil || id == 0 {
		t.Errorf("Resolve: %d, %v", id, err)
	}
}

func TestClientErrorsSurface(t *testing.T) {
	cl, _ := pipePair(t)
	if _, err := cl.Resolve(bg, "/nope"); err == nil || !strings.Contains(err.Error(), "not found") {
		t.Errorf("Resolve missing: %v", err)
	}
	if _, err := cl.Append(bg, 999, []byte("x"), AppendOptions{}); err == nil {
		t.Error("append to unknown id accepted")
	}
	if _, err := cl.OpenCursor(bg, "/nope"); err == nil {
		t.Error("cursor on missing path accepted")
	}
}

func TestClientSeekTime(t *testing.T) {
	cl, _ := pipePair(t)
	id, _ := cl.CreateLog(bg, "/t", 0, "")
	var stamps []int64
	for i := 0; i < 20; i++ {
		ts, err := cl.Append(bg, id, []byte(fmt.Sprintf("e%d", i)), AppendOptions{Timestamped: true})
		if err != nil {
			t.Fatal(err)
		}
		stamps = append(stamps, ts)
	}
	cur, _ := cl.OpenCursor(bg, "/t")
	if err := cur.SeekTime(bg, stamps[7]); err != nil {
		t.Fatal(err)
	}
	e, err := cur.Next(bg)
	if err != nil || string(e.Data) != "e7" {
		t.Fatalf("SeekTime: %v %q", err, e.Data)
	}
	if err := cur.SeekEnd(bg); err != nil {
		t.Fatal(err)
	}
	if _, err := cur.Next(bg); err != io.EOF {
		t.Fatalf("Next after SeekEnd: %v", err)
	}
	if err := cur.SeekStart(bg); err != nil {
		t.Fatal(err)
	}
	if e, err := cur.Next(bg); err != nil || string(e.Data) != "e0" {
		t.Fatalf("after SeekStart: %v", err)
	}
}

func TestClientOverTCP(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 12})
	now := int64(0)
	svc, err := core.New(dev, core.Options{
		BlockSize: 512, Degree: 8,
		Now: func() int64 { now += 1000; return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := server.New(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	id, err := cl.CreateLog(bg, "/tcp", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := cl.Append(bg, id, []byte(fmt.Sprintf("m%d", i)), AppendOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cl.Stats(bg)
	if err != nil || st.EntriesAppended != 10 {
		t.Fatalf("Stats: %+v, %v", st, err)
	}
	cur, _ := cl.OpenCursor(bg, "/tcp")
	count := 0
	for {
		if _, err := cur.Next(bg); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 10 {
		t.Errorf("read %d entries over TCP", count)
	}
}

func TestConcurrentClients(t *testing.T) {
	dev := wodev.NewMem(wodev.MemOptions{BlockSize: 512, Capacity: 1 << 14})
	now := int64(0)
	var nowMu sync.Mutex
	svc, err := core.New(dev, core.Options{
		BlockSize: 512, Degree: 8,
		Now: func() int64 { nowMu.Lock(); defer nowMu.Unlock(); now += 1000; return now },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	srv := server.New(svc)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	const clients = 4
	const per = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			cl, err := Dial(ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			id, err := cl.CreateLog(bg, fmt.Sprintf("/c%d", n), 0, "")
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < per; j++ {
				if _, err := cl.Append(bg, id, []byte(fmt.Sprintf("c%d-%d", n, j)), AppendOptions{}); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Each client's log reads back intact and ordered.
	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < clients; i++ {
		cur, err := cl.OpenCursor(bg, fmt.Sprintf("/c%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < per; j++ {
			e, err := cur.Next(bg)
			if err != nil {
				t.Fatalf("client %d entry %d: %v", i, j, err)
			}
			if want := fmt.Sprintf("c%d-%d", i, j); string(e.Data) != want {
				t.Fatalf("client %d entry %d: %q want %q", i, j, e.Data, want)
			}
		}
		if _, err := cur.Next(bg); err != io.EOF {
			t.Fatalf("client %d has extra entries", i)
		}
		cur.Close()
	}
}

func TestUIOReaderWriter(t *testing.T) {
	cl, _ := pipePair(t)
	id, _ := cl.CreateLog(bg, "/lines", 0, "")
	w := NewWriter(bg, cl, id, AppendOptions{})
	for _, line := range []string{"first", "second", "third"} {
		if _, err := w.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	cur, _ := cl.OpenCursor(bg, "/lines")
	r := bufio.NewScanner(NewReader(bg, cur, []byte("\n")))
	var got []string
	for r.Scan() {
		got = append(got, r.Text())
	}
	if fmt.Sprint(got) != "[first second third]" {
		t.Errorf("UIO read: %v", got)
	}
}

func TestClientAppendMulti(t *testing.T) {
	cl, _ := pipePair(t)
	a, err := cl.CreateLog(bg, "/a", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.CreateLog(bg, "/b", 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.AppendMulti(bg, []ID{a, b}, []byte("both"), AppendOptions{}); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/a", "/b"} {
		cur, err := cl.OpenCursor(bg, path)
		if err != nil {
			t.Fatal(err)
		}
		e, err := cur.Next(bg)
		if err != nil || string(e.Data) != "both" {
			t.Fatalf("%s: %v", path, err)
		}
		cur.Close()
	}
	if _, err := cl.AppendMulti(bg, nil, []byte("x"), AppendOptions{}); err == nil {
		t.Error("empty id list accepted over the wire")
	}
}

func TestClientSeekPos(t *testing.T) {
	cl, _ := pipePair(t)
	id, _ := cl.CreateLog(bg, "/sp", 0, "")
	for i := 0; i < 10; i++ {
		if _, err := cl.Append(bg, id, []byte(fmt.Sprintf("e%d", i)), AppendOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	cur, _ := cl.OpenCursor(bg, "/sp")
	var mark *Entry
	for i := 0; i < 5; i++ {
		e, err := cur.Next(bg)
		if err != nil {
			t.Fatal(err)
		}
		mark = e
	}
	cur2, _ := cl.OpenCursor(bg, "/sp")
	if err := cur2.SeekPos(bg, mark.Block, mark.Index+1); err != nil {
		t.Fatal(err)
	}
	e, err := cur2.Next(bg)
	if err != nil || string(e.Data) != "e5" {
		t.Fatalf("resume over wire: %v %q", err, e.Data)
	}
}
