package wire

import "testing"

// FuzzReplDecode throws arbitrary bytes at every replication payload decoder.
// A malformed frame from a confused peer must produce an error, never a
// panic or an oversized allocation.
func FuzzReplDecode(f *testing.F) {
	f.Add(byte(OpReplHello), (&ReplHello{Term: 1, Epoch: 2, LeaderAddr: "127.0.0.1:9000", Shards: 2, BlockSize: 512}).Encode(nil))
	f.Add(byte(OpReplWrite), (&ReplWrite{Shard: 1, Dev: 0, Index: 7, Data: []byte("payload")}).Encode(nil))
	f.Add(byte(OpReplInvalidate), (&ReplInvalidate{Shard: 0, Dev: 1, Index: 3}).Encode(nil))
	f.Add(byte(OpReplTail), (&ReplTail{Shard: 0, Global: 11, Image: []byte{0xAA, 0xBB}}).Encode(nil))
	f.Add(byte(OpReplTailClear), (&ReplTailClear{Shard: 3}).Encode(nil))
	f.Add(byte(OpReplAck), (&ReplAck{Session: 9, Seq: 4, Status: 1, Resp: []byte("err")}).Encode(nil))
	f.Add(byte(OpReplSessions), (&ReplSessions{Sessions: []ReplSession{{ID: 1, MaxSeq: 3, Resps: []ReplResp{{Seq: 3, Status: 0, Resp: []byte("ok")}}}}}).Encode(nil))
	f.Add(byte(OpReplBase), (&ReplBase{Pos: 99}).Encode(nil))
	f.Add(byte(OpReplReset), (&ReplReset{Shard: 1, Dev: 2}).Encode(nil))
	f.Add(byte(OpPromote), []byte{})
	f.Add(byte(0x00), []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, op byte, payload []byte) {
		v, err := DecodeRepl(op, payload)
		if err != nil {
			return
		}
		// Whatever decoded must re-encode without panicking; this also keeps
		// the encoders honest about accepting any decoder-produced value.
		switch m := v.(type) {
		case *ReplHello:
			m.Encode(nil)
		case *ReplWrite:
			m.Encode(nil)
		case *ReplInvalidate:
			m.Encode(nil)
		case *ReplTail:
			m.Encode(nil)
		case *ReplTailClear:
			m.Encode(nil)
		case *ReplAck:
			m.Encode(nil)
		case *ReplSessions:
			m.Encode(nil)
		case *ReplBase:
			m.Encode(nil)
		case *ReplReset:
			m.Encode(nil)
		}
		// Decoders for hello responses and status reports are exercised via
		// their own seeds below the op dispatch: feed the same payload in.
		if r, err := DecodeReplHelloResp(payload); err == nil {
			r.Encode(nil)
		}
		if s, err := DecodeReplStatusResp(payload); err == nil {
			s.Encode(nil)
		}
	})
}
