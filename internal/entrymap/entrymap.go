// Package entrymap implements the entrymap log file of §2.1 — the sparse,
// hierarchical bitmap index that lets the Clio service locate the blocks
// containing a given log file's entries with O(log_N d) block reads.
//
// A level-1 entrymap log entry appears every N blocks and carries, for each
// active log file with entries in the previous N blocks, an N-bit bitmap of
// which of those blocks contain such entries. A level-2 entry appears every
// N² blocks and marks which N-block groups contain entries, and so on: the
// entries form a search tree of degree N (Figure 2). The entrymap is pure
// redundancy — the same information is recoverable by scanning every block —
// which is what makes the displaced/missing-entry fallbacks of §2.3.2 sound.
//
// The package has three parts:
//
//   - Entry: the wire format of one entrymap log entry;
//   - Accumulator: the writer-side state that collects bitmaps for the
//     in-progress span of each level and emits the entries due at each
//     block boundary;
//   - Locator: the read-side search (FindPrev/FindNext/FindByTime) over an
//     abstract Source, counting the entrymap entries it examines so the
//     experiments can reproduce Figure 3 and Table 1.
//
// Block indices in this package are *data-block* indices: volume-relative
// indices with the volume header block excluded, so the first data block of
// a volume is index 0.
package entrymap

import (
	"errors"
	"sort"

	"clio/internal/wire"
)

// Reserved local log-file ids (§2.1's special log files).
const (
	// VolumeSeqID denotes the volume sequence log file: the sequence of all
	// entries ever written to the volume. It is implicit and never carried
	// in entrymap bitmaps (footnote 6).
	VolumeSeqID = 0
	// EntrymapID is the log file holding entrymap entries themselves, also
	// excluded from its own bitmaps (footnote 6).
	EntrymapID = 1
	// CatalogID is the catalog log file of §2.2.
	CatalogID = 2
	// BadBlockID is the log file recording corrupted unwritten blocks
	// (§2.3.2).
	BadBlockID = 3
	// FirstClientID is the first id available to client log files.
	FirstClientID = 4
	// CheckpointID is the log file holding recovery checkpoint records:
	// periodic snapshots of the server's volatile recovery state (§2.3.1)
	// written as ordinary log entries so reopen can replay only the blocks
	// after the newest valid checkpoint. It sits at the top of the 12-bit
	// id space, far from the client range, and — unlike the volume
	// sequence and the entrymap itself — it IS carried in entrymap
	// bitmaps, so recovery can find checkpoint blocks with the ordinary
	// locator search.
	CheckpointID = wire.MaxLogID
	// CompactID is the log file recording compaction commits: one entry
	// per relocated volume, appended after that volume's live entries have
	// been copied forward. Like CheckpointID it lives at the top of the id
	// space and is carried in entrymap bitmaps. Its entries also reset the
	// running block timestamp after a batch of relocated copies (which
	// carry their original, older timestamps).
	CompactID = wire.MaxLogID - 1
)

// Errors.
var (
	// ErrBadEntry indicates an undecodable entrymap entry.
	ErrBadEntry = errors.New("entrymap: malformed entry")
	// ErrDegree indicates an unsupported tree degree N.
	ErrDegree = errors.New("entrymap: unsupported degree")
)

// MinDegree and MaxDegree bound the tree degree N. The paper evaluates
// N ∈ {4..128} and recommends 16–32.
const (
	MinDegree = 2
	MaxDegree = 256
)

// DefaultDegree is the paper's measured configuration (N = 16).
const DefaultDegree = 16

// IDMap is one (log file, bitmap) pair within an entrymap entry.
type IDMap struct {
	ID   uint16
	Bits wire.Bitmap
}

// Entry is a decoded entrymap log entry.
type Entry struct {
	// Level is the entry's tree level, 1-based.
	Level int
	// Boundary is the nominal data-block index this entry was due at; the
	// entry covers the span [Boundary-N^Level, Boundary). Recording the
	// boundary in the entry makes displaced entries (§2.3.2)
	// self-identifying.
	Boundary int
	// N is the tree degree, recorded for self-description.
	N int
	// Maps holds the per-log-file bitmaps, sorted by ID.
	Maps []IDMap
}

// Get returns the bitmap for id, or nil if id has no entries in the span.
func (e *Entry) Get(id uint16) wire.Bitmap {
	i := sort.Search(len(e.Maps), func(i int) bool { return e.Maps[i].ID >= id })
	if i < len(e.Maps) && e.Maps[i].ID == id {
		return e.Maps[i].Bits
	}
	return nil
}

// Encode appends the entry's wire form to dst.
//
// Layout: level(1) boundary(u32) n(u16) count(uvarint) then per map:
// id(uvarint) bitmap((N+7)/8 bytes).
func (e *Entry) Encode(dst []byte) []byte {
	dst = append(dst, byte(e.Level))
	dst = wire.PutUint32(dst, uint32(e.Boundary))
	dst = wire.PutUint16(dst, uint16(e.N))
	dst = wire.PutUvarint(dst, uint64(len(e.Maps)))
	for _, m := range e.Maps {
		dst = wire.PutUvarint(dst, uint64(m.ID))
		dst = append(dst, m.Bits...)
	}
	return dst
}

// EncodedSize returns the byte length Encode would append.
func (e *Entry) EncodedSize() int {
	n := 1 + 4 + 2 + uvarintLen(uint64(len(e.Maps)))
	mapBytes := (e.N + 7) / 8
	for _, m := range e.Maps {
		n += uvarintLen(uint64(m.ID)) + mapBytes
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Decode parses an entrymap entry from data.
func Decode(data []byte) (*Entry, error) {
	if len(data) < 7 {
		return nil, ErrBadEntry
	}
	e := &Entry{Level: int(data[0])}
	b32, err := wire.Uint32(data[1:])
	if err != nil {
		return nil, ErrBadEntry
	}
	e.Boundary = int(b32)
	n16, err := wire.Uint16(data[5:])
	if err != nil {
		return nil, ErrBadEntry
	}
	e.N = int(n16)
	if e.N < MinDegree || e.N > MaxDegree || e.Level < 1 || e.Level > 16 {
		return nil, ErrBadEntry
	}
	rest := data[7:]
	count, used, err := wire.Uvarint(rest)
	if err != nil {
		return nil, ErrBadEntry
	}
	rest = rest[used:]
	mapBytes := (e.N + 7) / 8
	// The count is attacker-controlled on damaged media: bound the
	// preallocation by what the remaining bytes could possibly hold.
	if count > uint64(len(rest)) {
		return nil, ErrBadEntry
	}
	e.Maps = make([]IDMap, 0, count)
	for i := uint64(0); i < count; i++ {
		id, used, err := wire.Uvarint(rest)
		if err != nil || id > wire.MaxLogID {
			return nil, ErrBadEntry
		}
		rest = rest[used:]
		if len(rest) < mapBytes {
			return nil, ErrBadEntry
		}
		bits := make(wire.Bitmap, mapBytes)
		copy(bits, rest[:mapBytes])
		rest = rest[mapBytes:]
		e.Maps = append(e.Maps, IDMap{ID: uint16(id), Bits: bits})
	}
	if !sort.SliceIsSorted(e.Maps, func(i, j int) bool { return e.Maps[i].ID < e.Maps[j].ID }) {
		return nil, ErrBadEntry
	}
	return e, nil
}

// pow returns n^i, saturating well above any real volume size.
func pow(n, i int) int {
	out := 1
	for ; i > 0; i-- {
		if out > 1<<40 {
			return 1 << 40
		}
		out *= n
	}
	return out
}

// SpanSize returns N^level, the number of data blocks a level's entry covers.
func SpanSize(n, level int) int { return pow(n, level) }

// MaxLevel returns the highest level whose span fits within blocks data
// blocks, minimum 1.
func MaxLevel(n, blocks int) int {
	level := 1
	for pow(n, level+1) <= blocks {
		level++
	}
	return level
}

// tracked reports whether an id participates in entrymap bitmaps.
func tracked(id uint16) bool { return id != VolumeSeqID && id != EntrymapID }
