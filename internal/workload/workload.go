// Package workload provides seeded, deterministic workload generators for
// the benchmark harness — synthetic stand-ins for the traces the paper
// measured, calibrated to the parameters it reports.
//
//   - LoginTrace reproduces the §3.5 measurement: the V-System login/logout
//     log file system with c ≈ 1/15 (the average entry occupies about 1/15
//     of a 1 KiB block) and a ≈ 8 (about eight log files are referenced in
//     an average entrymap entry).
//   - MailTrace drives the §4.2 mail design: deliveries to per-user
//     mailboxes with bursty arrivals and larger bodies.
//   - TxnTrace models the transaction-commit logging of §2.3.1: small
//     records, every one forced.
//   - GrowthTrace grows one large file for the §1 motivation experiment.
//
// Generators are pure: the same seed yields the same op sequence.
package workload

import (
	"fmt"
	"math/rand"
)

// Op is one append operation against a named log file.
type Op struct {
	// Log is the absolute log-file path the entry goes to.
	Log string
	// Data is the entry payload.
	Data []byte
	// Forced requests a synchronous write.
	Forced bool
	// Timestamped requests the full header form.
	Timestamped bool
}

// Trace is a deterministic op stream.
type Trace interface {
	// Next returns the next op.
	Next() Op
	// Logs returns every log-file path the trace may reference, so callers
	// can create them up front.
	Logs() []string
}

// LoginTrace generates login/logout audit entries across a set of per-user
// sublogs plus the shared session log.
type LoginTrace struct {
	rng   *rand.Rand
	users []string
	hosts []string
	seq   int
}

// NewLoginTrace returns a login/logout trace over `users` user sublogs.
// With 16 users uniformly active and ~66-byte entries on 1 KiB blocks, the
// measured c and a land near the paper's 1/15 and 8.
func NewLoginTrace(seed int64, users int) *LoginTrace {
	rng := rand.New(rand.NewSource(seed))
	t := &LoginTrace{rng: rng}
	for i := 0; i < users; i++ {
		t.users = append(t.users, fmt.Sprintf("user%02d", i))
	}
	for i := 0; i < 8; i++ {
		t.hosts = append(t.hosts, fmt.Sprintf("sun3-%02d.stanford", i))
	}
	return t
}

// Logs implements Trace.
func (t *LoginTrace) Logs() []string {
	out := []string{"/sessions"}
	for _, u := range t.users {
		out = append(out, "/sessions/"+u)
	}
	return out
}

// Next implements Trace.
func (t *LoginTrace) Next() Op {
	t.seq++
	u := t.users[t.rng.Intn(len(t.users))]
	h := t.hosts[t.rng.Intn(len(t.hosts))]
	kind := "login"
	if t.rng.Intn(2) == 1 {
		kind = "logout"
	}
	// ~60 bytes of client data: with the 4-byte minimal header this gives
	// c = 64/1024 ≈ 1/16 on 1 KiB blocks.
	payload := fmt.Sprintf("%-6s %-8s tty%02d %s pid=%05d", kind, u,
		t.rng.Intn(64), h, t.rng.Intn(100000))
	for len(payload) < 60 {
		payload += " "
	}
	return Op{Log: "/sessions/" + u, Data: []byte(payload[:60])}
}

// MailTrace generates mail deliveries.
type MailTrace struct {
	rng   *rand.Rand
	users []string
}

// NewMailTrace returns a mail trace over the given number of mailboxes.
func NewMailTrace(seed int64, users int) *MailTrace {
	t := &MailTrace{rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < users; i++ {
		t.users = append(t.users, fmt.Sprintf("mbox%02d", i))
	}
	return t
}

// Logs implements Trace.
func (t *MailTrace) Logs() []string {
	out := []string{"/mail"}
	for _, u := range t.users {
		out = append(out, "/mail/"+u)
	}
	return out
}

// Next implements Trace.
func (t *MailTrace) Next() Op {
	u := t.users[t.rng.Intn(len(t.users))]
	body := make([]byte, 200+t.rng.Intn(1800))
	for i := range body {
		body[i] = byte('a' + t.rng.Intn(26))
	}
	return Op{Log: "/mail/" + u, Data: body, Forced: true, Timestamped: true}
}

// TxnTrace generates small forced transaction-commit records.
type TxnTrace struct {
	rng  *rand.Rand
	size int
	seq  int
}

// NewTxnTrace returns a commit-record trace with the given record size.
func NewTxnTrace(seed int64, recordSize int) *TxnTrace {
	if recordSize <= 0 {
		recordSize = 50
	}
	return &TxnTrace{rng: rand.New(rand.NewSource(seed)), size: recordSize}
}

// Logs implements Trace.
func (t *TxnTrace) Logs() []string { return []string{"/txnlog"} }

// Next implements Trace.
func (t *TxnTrace) Next() Op {
	t.seq++
	data := make([]byte, t.size)
	copy(data, fmt.Sprintf("commit txid=%08d", t.seq))
	return Op{Log: "/txnlog", Data: data, Forced: true, Timestamped: true}
}

// GrowthTrace appends fixed-size chunks to one ever-growing log.
type GrowthTrace struct {
	chunk int
}

// NewGrowthTrace returns a trace appending chunkSize-byte entries.
func NewGrowthTrace(chunkSize int) *GrowthTrace { return &GrowthTrace{chunk: chunkSize} }

// Logs implements Trace.
func (t *GrowthTrace) Logs() []string { return []string{"/growing"} }

// Next implements Trace.
func (t *GrowthTrace) Next() Op {
	return Op{Log: "/growing", Data: make([]byte, t.chunk)}
}

// MixedTrace interleaves several traces with weights.
type MixedTrace struct {
	rng     *rand.Rand
	traces  []Trace
	weights []int
	total   int
}

// NewMixedTrace composes traces; weights give relative op frequencies.
func NewMixedTrace(seed int64, traces []Trace, weights []int) *MixedTrace {
	m := &MixedTrace{rng: rand.New(rand.NewSource(seed)), traces: traces, weights: weights}
	for _, w := range weights {
		m.total += w
	}
	return m
}

// Logs implements Trace.
func (m *MixedTrace) Logs() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range m.traces {
		for _, l := range t.Logs() {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// Next implements Trace.
func (m *MixedTrace) Next() Op {
	r := m.rng.Intn(m.total)
	for i, w := range m.weights {
		if r < w {
			return m.traces[i].Next()
		}
		r -= w
	}
	return m.traces[len(m.traces)-1].Next()
}
