package baseline

import (
	"math/rand"
	"testing"
)

func occEvery(step, end int) Occurrences {
	var o Occurrences
	for b := 0; b < end; b += step {
		o = append(o, b)
	}
	return o
}

func TestLinearLocator(t *testing.T) {
	occ := Occurrences{0, 10, 20}
	l := &LinearLocator{End: 30}
	block, reads := l.FindPrev(occ, 25)
	if block != 20 || reads != 5 {
		t.Errorf("FindPrev(25) = %d, %d", block, reads)
	}
	block, reads = l.FindPrev(occ, 30)
	if block != 20 || reads != 10 {
		t.Errorf("FindPrev(30) = %d, %d", block, reads)
	}
	// A miss scans all the way back.
	block, reads = l.FindPrev(Occurrences{}, 30)
	if block != -1 || reads != 30 {
		t.Errorf("miss = %d, %d", block, reads)
	}
}

func TestChainLocator(t *testing.T) {
	occ := occEvery(2, 100) // 50 entries
	c := &ChainLocator{End: 100}
	block, reads := c.FindKthPrev(occ, 1)
	if block != 98 || reads != 1 {
		t.Errorf("newest = %d, %d", block, reads)
	}
	block, reads = c.FindKthPrev(occ, 50)
	if block != 0 || reads != 50 {
		t.Errorf("oldest = %d, %d", block, reads)
	}
	if got := c.ForwardScanReads(10); got != 90 {
		t.Errorf("forward scan = %d", got)
	}
}

func TestBinaryTreeLocatorCorrectAndLogarithmic(t *testing.T) {
	occ := occEvery(1, 1<<16)
	b := &BinaryTreeLocator{End: 1 << 16}
	bound := 17 // ceil(log2(65536)) + 1
	for _, before := range []int{1, 2, 100, 1 << 10, 1 << 16} {
		block, reads := b.FindPrev(occ, before)
		if block != before-1 {
			t.Errorf("FindPrev(%d) block = %d", before, block)
		}
		if reads > bound || reads < 1 {
			t.Errorf("FindPrev(%d): %d reads outside (0, %d]", before, reads, bound)
		}
	}
}

func TestBinaryTreeBeatsLinearLosesToEntrymapShape(t *testing.T) {
	// The §5 claim's shape: for distant entries, linear >> binary tree >
	// Clio's ~2·log_N. Binary-tree reads ≈ log2(m) for m = 5000 entries is
	// ~12 reads, versus Clio's 5 entrymap entries at distance 16^3
	// (asserted in the entrymap tests).
	occ := occEvery(1, 5000)
	b := &BinaryTreeLocator{End: 5000}
	_, reads := b.FindPrev(occ, 5000-4095)
	if reads < 8 || reads > 14 {
		t.Errorf("binary tree reads for distance 4095 = %d, want ~log2(m)", reads)
	}
	l := &LinearLocator{End: 5000}
	_, lr := l.FindPrev(occ, 5000-4096)
	if lr != 1 { // occurrences are dense: last block < before is adjacent
		t.Errorf("dense linear = %d", lr)
	}
	// Sparse target: one entry at block 0, search from far away.
	sparse := Occurrences{0}
	_, lr = l.FindPrev(sparse, 4097)
	if lr != 4097 {
		t.Errorf("sparse linear = %d, want distance", lr)
	}
	_, br := b.FindPrev(sparse, 4097)
	if br != 1 {
		t.Errorf("sparse binary = %d (single entry is the newest)", br)
	}
}

func TestBSTDepthProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		m := 1 + rng.Intn(100000)
		r := rng.Intn(m)
		d := bstDepth(m, r)
		// Depth is positive and at most ceil(log2(m))+1.
		bound := 1
		for v := 1; v < m; v *= 2 {
			bound++
		}
		if d < 1 || d > bound {
			t.Fatalf("bstDepth(%d,%d) = %d, bound %d", m, r, d, bound)
		}
	}
	if bstDepth(0, 0) != 0 {
		t.Error("empty tree depth != 0")
	}
	if bstDepth(1, 0) != 1 {
		t.Error("singleton depth != 1")
	}
}
